"""Data-redundancy sweeps: Figures 4, 5 and 6 (Section 6.3.1).

Protocol from the paper: "we vary the data redundancy r, where for each
specific r, we randomly select r out of the answers collected for each
task ... We repeat each experiment 30 times and the average quality is
reported."
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, Sequence

import numpy as np

from ..core.registry import methods_for_task_type
from ..datasets.schema import Dataset
from .runner import average_scores, repeat_with_seeds, run_method


@dataclasses.dataclass
class RedundancySweep:
    """Result of one dataset's sweep: metric series per method."""

    dataset: str
    redundancies: list[int]
    #: series[metric][method] -> list of values parallel to redundancies
    series: dict[str, dict[str, list[float]]]

    def series_for(self, metric: str) -> dict[str, list[float]]:
        return self.series[metric]


def sweep_redundancy(
    dataset: Dataset,
    redundancies: Sequence[int] | None = None,
    methods: Iterable[str] | None = None,
    n_repeats: int = 5,
    base_seed: int = 0,
) -> RedundancySweep:
    """Run the redundancy sweep for one dataset.

    ``n_repeats`` controls the subsample-and-average repetitions (the
    paper uses 30; the benchmarks default lower to keep wall-clock sane
    — the variance over repeats is small for these dataset sizes).
    """
    if redundancies is None:
        max_r = int(round(dataset.answers.redundancy))
        redundancies = list(range(1, max(max_r, 1) + 1))
    method_names = (list(methods) if methods is not None
                    else methods_for_task_type(dataset.task_type))

    metric_names: list[str] | None = None
    series: dict[str, dict[str, list[float]]] = {}
    for r in redundancies:
        def one_repeat(seed: int, r=r) -> dict[str, dict[str, float]]:
            rng = np.random.default_rng(seed)
            subsampled = dataset.subsample_redundancy(r, rng)
            out = {}
            for name in method_names:
                run = run_method(name, subsampled, seed=seed)
                out[name] = run.scores
            return out

        repeats = repeat_with_seeds(one_repeat, n_repeats, base_seed)
        for name in method_names:
            averaged = average_scores([
                _as_run(name, dataset.name, rep[name]) for rep in repeats
            ])
            if metric_names is None:
                metric_names = list(averaged)
                for metric in metric_names:
                    series[metric] = {m: [] for m in method_names}
            for metric, value in averaged.items():
                series[metric][name].append(value)

    return RedundancySweep(
        dataset=dataset.name,
        redundancies=list(redundancies),
        series=series,
    )


def _as_run(method: str, dataset: str, scores: dict[str, float]):
    from .runner import MethodRun

    return MethodRun(method=method, dataset=dataset, scores=scores,
                     elapsed_seconds=0.0, n_iterations=0, converged=True)
