"""Plain-text table and series formatting for benchmark output.

The benchmarks print the same rows/series the paper's tables and figures
report; these helpers render them in aligned monospace (no plotting
dependency needed offline).
"""

from __future__ import annotations

from typing import Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence],
                 title: str | None = None) -> str:
    """Render rows as an aligned monospace table."""
    cells = [[_fmt(value) for value in row] for row in rows]
    widths = [
        max(len(str(headers[col])),
            max((len(row[col]) for row in cells), default=0))
        for col in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(x_label: str, x_values: Sequence,
                  series: dict[str, Sequence[float]],
                  title: str | None = None) -> str:
    """Render figure data as one row per x value, one column per line.

    This is the textual equivalent of the paper's line plots: the
    crossing/ordering of methods is readable directly from the columns.
    """
    headers = [x_label] + list(series)
    rows = []
    for idx, x in enumerate(x_values):
        row = [x] + [values[idx] for values in series.values()]
        rows.append(row)
    return format_table(headers, rows, title=title)


def _fmt(value) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        return f"{value:.4g}" if abs(value) < 1000 else f"{value:.1f}"
    return str(value)


def percentage(value: float) -> str:
    """Format a [0, 1] fraction the way the paper's tables do (xx.xx%)."""
    return f"{100.0 * value:.2f}%"
