"""Plain-text line charts — the paper's figures without matplotlib.

The benchmarks run offline with no plotting stack; this renderer turns
metric-vs-x series into a monospace chart whose crossings and plateaus
read like the paper's plots.  One character column per x value band,
one letter per series (legend printed below).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

#: Plot glyphs assigned to series in order.
GLYPHS = "ABCDEFGHIJKLMNOPQRSTUVWXYZ"


def ascii_chart(
    x_values: Sequence[float],
    series: dict[str, Sequence[float]],
    height: int = 12,
    width: int = 60,
    title: str | None = None,
    y_label: str = "",
) -> str:
    """Render series as a monospace line chart.

    Multiple series landing in the same cell print ``*``.  Returns the
    chart plus an aligned legend.
    """
    if not series:
        raise ValueError("need at least one series")
    if len(series) > len(GLYPHS):
        raise ValueError(f"too many series (max {len(GLYPHS)})")
    x = np.asarray(list(x_values), dtype=np.float64)
    if len(x) < 2:
        raise ValueError("need at least two x values")

    matrix = np.array([list(values) for values in series.values()],
                      dtype=np.float64)
    if matrix.shape[1] != len(x):
        raise ValueError("every series must be parallel to x_values")

    finite = matrix[np.isfinite(matrix)]
    if len(finite) == 0:
        raise ValueError("series contain no finite values")
    y_min, y_max = float(finite.min()), float(finite.max())
    if np.isclose(y_min, y_max):
        y_min -= 0.5
        y_max += 0.5

    # Map x to columns and y to rows.
    x_min, x_max = float(x.min()), float(x.max())
    columns = np.round(
        (x - x_min) / (x_max - x_min) * (width - 1)).astype(int)
    grid = [[" "] * width for _ in range(height)]

    for glyph, values in zip(GLYPHS, matrix):
        for col_from, col_to, v_from, v_to in zip(
                columns, columns[1:], values, values[1:]):
            if not (np.isfinite(v_from) and np.isfinite(v_to)):
                continue
            steps = max(col_to - col_from, 1)
            for step in range(steps + 1):
                col = col_from + step
                value = v_from + (v_to - v_from) * step / steps
                row = (height - 1) - int(round(
                    (value - y_min) / (y_max - y_min) * (height - 1)))
                row = min(max(row, 0), height - 1)
                cell = grid[row][col]
                grid[row][col] = glyph if cell in (" ", glyph) else "*"

    lines = []
    if title:
        lines.append(title)
    top_label = f"{y_max:.3g}"
    bottom_label = f"{y_min:.3g}"
    pad = max(len(top_label), len(bottom_label))
    for row_index, row in enumerate(grid):
        if row_index == 0:
            label = top_label.rjust(pad)
        elif row_index == height - 1:
            label = bottom_label.rjust(pad)
        else:
            label = " " * pad
        lines.append(f"{label} |{''.join(row)}")
    axis = f"{' ' * pad} +{'-' * width}"
    lines.append(axis)
    lines.append(f"{' ' * pad}  {x_min:<10.4g}{y_label:^38}{x_max:>10.4g}")
    legend = "   ".join(f"{glyph}={name}"
                        for glyph, name in zip(GLYPHS, series))
    lines.append(f"{' ' * pad}  {legend}")
    return "\n".join(lines)


def sparkline(values: Sequence[float]) -> str:
    """One-line trend summary using block glyphs."""
    blocks = "▁▂▃▄▅▆▇█"
    values = np.asarray(list(values), dtype=np.float64)
    finite = values[np.isfinite(values)]
    if len(finite) == 0:
        return ""
    lo, hi = float(finite.min()), float(finite.max())
    if np.isclose(lo, hi):
        return blocks[3] * len(values)
    out = []
    for value in values:
        if not np.isfinite(value):
            out.append(" ")
            continue
        level = int(round((value - lo) / (hi - lo) * (len(blocks) - 1)))
        out.append(blocks[level])
    return "".join(out)
