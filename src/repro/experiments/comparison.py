"""Table 6: quality and running time of every method on complete data.

For each dataset, runs all applicable methods on the full answer set and
records the task-type-appropriate metrics plus wall-clock time — the
exact column structure of the paper's Table 6.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from ..core.registry import methods_for_task_type
from ..datasets.schema import Dataset
from .runner import MethodRun, run_method

#: The method ordering of the paper's Table 6.
TABLE6_ORDER = (
    "MV", "ZC", "GLAD", "D&S", "Minimax", "BCC", "CBCC", "LFC",
    "CATD", "PM", "Multi", "KOS", "VI-BP", "VI-MF", "LFC_N",
    "Mean", "Median",
)


def table6(
    datasets: Mapping[str, Dataset],
    methods: Iterable[str] | None = None,
    seed: int = 0,
) -> list[MethodRun]:
    """All (method, dataset) runs of Table 6, in the paper's order."""
    selected = list(methods) if methods is not None else list(TABLE6_ORDER)
    runs: list[MethodRun] = []
    for name in selected:
        for dataset in datasets.values():
            if name not in methods_for_task_type(dataset.task_type):
                continue  # the paper's "×" cells
            runs.append(run_method(name, dataset, seed=seed))
    return runs


def table6_rows(runs: list[MethodRun],
                dataset_order: Iterable[str]) -> list[list]:
    """Pivot runs into printable Table 6 rows (one per method).

    Cells show metric values plus time; missing combinations render as
    '×' like the paper.
    """
    by_key = {(run.method, run.dataset): run for run in runs}
    methods = []
    for run in runs:
        if run.method not in methods:
            methods.append(run.method)

    rows = []
    for method in methods:
        row: list = [method]
        for dataset in dataset_order:
            run = by_key.get((method, dataset))
            if run is None:
                row.extend(["×", "×"])
                continue
            metrics = "/".join(
                f"{value:.4f}" for value in run.scores.values()
            )
            row.extend([metrics, f"{run.elapsed_seconds:.2f}s"])
        rows.append(row)
    return rows
