"""Exception hierarchy for the ``repro`` package.

All errors raised by the library derive from :class:`ReproError`, so
callers can catch a single type at API boundaries.
"""


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class InvalidAnswerSetError(ReproError):
    """Raised when an answer set is malformed (bad shapes, bad labels)."""


class TaskTypeMismatchError(ReproError):
    """Raised when a method is applied to a task type it does not support."""


class ConvergenceError(ReproError):
    """Raised when an iterative method fails in a non-recoverable way.

    Note that simply hitting the iteration cap is *not* an error — the
    paper's framework (Algorithm 1) returns the current estimate in that
    case — but numerical blow-ups (NaN parameters) are.
    """


class DatasetError(ReproError):
    """Raised when a dataset cannot be built, loaded, or validated."""


class UnknownMethodError(ReproError, KeyError):
    """Raised when the registry is asked for a method name it doesn't know."""
