"""Exception hierarchy for the ``repro`` package.

All errors raised by the library derive from :class:`ReproError`, so
callers can catch a single type at API boundaries.
"""


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class InvalidAnswerSetError(ReproError):
    """Raised when an answer set is malformed (bad shapes, bad labels)."""


class TaskTypeMismatchError(ReproError):
    """Raised when a method is applied to a task type it does not support."""


class ConvergenceError(ReproError):
    """Raised when an iterative method fails in a non-recoverable way.

    Note that simply hitting the iteration cap is *not* an error — the
    paper's framework (Algorithm 1) returns the current estimate in that
    case — but numerical blow-ups (NaN parameters) are.
    """


class DatasetError(ReproError):
    """Raised when a dataset cannot be built, loaded, or validated."""


class AnswerSourceError(ReproError, ValueError):
    """Raised when an answer source cannot produce records.

    Covers unreadable/empty/header-only inputs and streams whose
    malformed-line budget is exhausted.  Messages name the file (or
    stream) and, where applicable, the offending row.  Also a
    :class:`ValueError` so call sites that predate the dedicated type
    keep catching it.
    """


class EngineError(ReproError, ValueError):
    """Raised when an engine-layer component is misconfigured or misused.

    Covers the streaming/batch/sharded engines and the persistent shard
    runtime: bad construction arguments, conflicting legacy kwargs, and
    fits requested on methods that cannot honour them.  Also a
    :class:`ValueError` so call sites that predate the dedicated type
    keep catching it.
    """


class WorkerCrashError(EngineError):
    """Raised when a shard worker died and recovery was exhausted.

    The self-healing dispatch path respawns dead pools and re-dispatches
    the failed shard's phase under the :class:`~repro.core.policy.
    FaultPolicy` retry budget first; this error means every retry died
    too and degradation to the in-process serial path was disabled.
    """


class PhaseTimeoutError(EngineError):
    """Raised when a shard phase blew its per-phase deadline.

    Like :class:`WorkerCrashError`, only raised once the retry budget
    and (if enabled) serial degradation cannot complete the phase — a
    hung worker is killed and respawned, never waited on unboundedly.
    """


class InferenceError(ReproError, ValueError):
    """Raised when the inference layer is handed inconsistent state.

    Covers the sharded-EM drivers and kernels: mismatched sufficient
    statistics, delta-refit layouts diverging from their cached state,
    missing warm-start parameters, and malformed operator indices.
    Also a :class:`ValueError` for pre-existing call sites.
    """


class ProtocolError(ReproError, RuntimeError):
    """Raised when the runtime lease protocol is violated.

    The persistent shard runtime hands out exclusive leases
    (acquire -> dispatch* -> release); dispatching without a live
    lease, releasing twice, leasing a closed runtime, or extending a
    stream that broke the append-only contract are all protocol
    violations, not recoverable input errors.  Also a
    :class:`RuntimeError` for pre-existing call sites.
    """


class StoreError(ReproError):
    """Raised when the durable answer store cannot be opened or written."""


class RecoveryError(StoreError):
    """Raised when a store cannot be replayed into a consistent engine.

    Recovery is *verified*: after replay the stream's version and
    replacement counters must match the log's record of them, so a
    corrupted or policy-mismatched log fails loudly instead of serving
    silently divergent truth.
    """


class UnknownMethodError(ReproError, KeyError):
    """Raised when the registry is asked for a method name it doesn't know."""
