"""Gibbs-sampling scaffolding for BCC and CBCC.

Both methods run a collapsed-ish Gibbs chain over (truth labels, worker
confusion matrices, class prior).  This module provides the chain
runner — burn-in, thinning, posterior label tallies — so the method
modules implement only the conditional-sampling step.
"""

from __future__ import annotations

import dataclasses
from typing import Callable

import numpy as np

from ..exceptions import InferenceError


@dataclasses.dataclass
class GibbsResult:
    """Tally of sampled truth labels after burn-in.

    ``label_counts[i, j]`` counts how many retained samples assigned
    label ``j`` to task ``i``; the posterior estimate is the normalised
    tally and the point estimate its argmax.
    """

    label_counts: np.ndarray
    n_samples: int

    @property
    def posterior(self) -> np.ndarray:
        """Normalised per-task label frequencies over retained samples."""
        totals = self.label_counts.sum(axis=1, keepdims=True)
        totals = np.where(totals > 0, totals, 1.0)
        return self.label_counts / totals


def run_gibbs(
    initial_labels: np.ndarray,
    n_choices: int,
    sample_step: Callable[[np.ndarray], np.ndarray],
    n_samples: int = 60,
    burn_in: int = 20,
    thinning: int = 1,
) -> GibbsResult:
    """Run a Gibbs chain over task labels.

    ``sample_step(labels) -> labels`` performs one full sweep: given the
    current truth assignment it resamples all other latent variables and
    then returns a fresh truth assignment.  The runner discards
    ``burn_in`` sweeps, then retains every ``thinning``-th of the next
    ``n_samples * thinning`` sweeps.
    """
    if n_samples < 1:
        raise InferenceError(f"n_samples must be >= 1, got {n_samples}")
    if burn_in < 0:
        raise InferenceError(f"burn_in must be >= 0, got {burn_in}")
    if thinning < 1:
        raise InferenceError(f"thinning must be >= 1, got {thinning}")

    labels = np.asarray(initial_labels, dtype=np.int64).copy()
    counts = np.zeros((len(labels), n_choices), dtype=np.float64)

    for _ in range(burn_in):
        labels = sample_step(labels)

    retained = 0
    sweep = 0
    while retained < n_samples:
        labels = sample_step(labels)
        sweep += 1
        if sweep % thinning == 0:
            counts[np.arange(len(labels)), labels] += 1.0
            retained += 1

    return GibbsResult(label_counts=counts, n_samples=retained)
