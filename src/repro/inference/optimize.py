"""Lightweight optimisers for the optimisation-based methods.

GLAD's M-step and Multi's MAP estimation need gradient ascent; Minimax
needs coordinate updates with a few inner gradient steps.  scipy's
general-purpose optimisers are overkill inside an EM loop (and dominate
runtime, as the paper's Table 6 notes for GLAD), so we provide a simple
fixed-step gradient ascent with optional step-size backoff.
"""

from __future__ import annotations

from typing import Callable

import numpy as np


def gradient_ascent(
    objective_and_grad: Callable[[np.ndarray], tuple[float, np.ndarray]],
    x0: np.ndarray,
    learning_rate: float = 0.1,
    max_steps: int = 25,
    tolerance: float = 1e-6,
) -> np.ndarray:
    """Maximise a differentiable objective with backtracking steps.

    ``objective_and_grad(x)`` returns ``(value, gradient)``.  The step
    size halves whenever a step would decrease the objective, which is
    robust enough for the well-conditioned inner problems the methods
    pose, while staying deterministic and dependency-free.
    """
    x = np.array(x0, dtype=np.float64)
    value, grad = objective_and_grad(x)
    step = learning_rate
    for _ in range(max_steps):
        if not np.all(np.isfinite(grad)):
            break
        candidate = x + step * grad
        new_value, new_grad = objective_and_grad(candidate)
        if new_value >= value:
            improvement = new_value - value
            x, value, grad = candidate, new_value, new_grad
            if improvement < tolerance:
                break
        else:
            step *= 0.5
            if step < 1e-8:
                break
    return x


def projected_simplex(v: np.ndarray) -> np.ndarray:
    """Euclidean projection of each row of ``v`` onto the simplex.

    Used by Minimax when turning unconstrained scores back into the
    per-task label distributions its objective is defined over.
    """
    v = np.asarray(v, dtype=np.float64)
    if v.ndim == 1:
        v = v[None, :]
        squeeze = True
    else:
        squeeze = False
    n_rows, n_cols = v.shape
    sorted_v = -np.sort(-v, axis=1)
    cumulative = sorted_v.cumsum(axis=1)
    arange = np.arange(1, n_cols + 1)
    candidate = sorted_v - (cumulative - 1.0) / arange
    rho = (candidate > 0).sum(axis=1)
    rho = np.maximum(rho, 1)
    theta = (cumulative[np.arange(n_rows), rho - 1] - 1.0) / rho
    out = np.maximum(v - theta[:, None], 0.0)
    return out[0] if squeeze else out
