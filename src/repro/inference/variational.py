"""Variational-inference helpers for VI-MF and VI-BP (Liu et al., 2012).

Liu, Peng & Ihler model each worker with a two-coin confusion model —
sensitivity (probability of answering T when the truth is T) and
specificity (probability of answering F when the truth is F) — with Beta
priors, and approximate the Bayesian posterior over truths either by
mean-field (VI-MF) or belief propagation (VI-BP).  The message algebra
shared by the two is implemented here.
"""

from __future__ import annotations

import dataclasses

import numpy as np
from scipy import special

from ..exceptions import InferenceError


@dataclasses.dataclass
class BetaPrior:
    """Beta(a, b) prior over a worker's per-class accuracy."""

    a: float = 2.0
    b: float = 1.0

    def validate(self) -> None:
        if self.a <= 0 or self.b <= 0:
            raise InferenceError(
                f"Beta parameters must be positive: a={self.a}, b={self.b}")


def expected_log_beta_counts(correct: np.ndarray, incorrect: np.ndarray,
                             prior: BetaPrior) -> tuple[np.ndarray, np.ndarray]:
    """Mean-field expectations E[log p], E[log(1-p)] given soft counts.

    ``correct``/``incorrect`` are expected per-worker counts of correct
    and incorrect answers for one truth class; the variational posterior
    is Beta(prior.a + correct, prior.b + incorrect).
    """
    a = prior.a + np.asarray(correct, dtype=np.float64)
    b = prior.b + np.asarray(incorrect, dtype=np.float64)
    total = special.digamma(a + b)
    return special.digamma(a) - total, special.digamma(b) - total


def posterior_mean_accuracy(correct: np.ndarray, incorrect: np.ndarray,
                            prior: BetaPrior) -> np.ndarray:
    """Posterior-mean accuracy (a + c) / (a + b + c + ic) per worker."""
    a = prior.a + np.asarray(correct, dtype=np.float64)
    b = prior.b + np.asarray(incorrect, dtype=np.float64)
    return a / (a + b)


def log_beta_moment_messages(correct: np.ndarray, incorrect: np.ndarray,
                             prior: BetaPrior) -> tuple[np.ndarray, np.ndarray]:
    """BP-style messages: posterior-mean log-odds of a correct answer.

    Belief propagation on the Liu et al. factor graph integrates worker
    reliability out of each worker-to-task message using the Beta
    posterior built from the *other* tasks' beliefs.  The first moment of
    the Beta posterior is exactly ``posterior_mean_accuracy``; we return
    ``log`` of the mean correct/incorrect probabilities, floored away
    from log(0).
    """
    mean_correct = posterior_mean_accuracy(correct, incorrect, prior)
    mean_correct = np.clip(mean_correct, 1e-10, 1.0 - 1e-10)
    return np.log(mean_correct), np.log1p(-mean_correct)
