"""Reusable inference machinery shared by the method implementations.

These are the "substrates" the paper's algorithms are built on: an EM
loop, a Gibbs-chain runner, mean-field/BP message helpers, gradient
ascent, and distribution utilities.
"""

from .distributions import (
    beta_expected_log,
    chi_square_confidence,
    dirichlet_expected_log,
    sample_categorical_rows,
    sample_dirichlet_rows,
)
from .em import EMOutcome, run_em
from .gibbs import GibbsResult, run_gibbs
from .optimize import gradient_ascent, projected_simplex
from .segops import BasedScatterAdd, SegmentSum
from .sharded import (
    SerialShardRunner,
    ShardedEMSpec,
    SufficientStats,
    make_runner,
    run_em_sharded,
)
from .variational import BetaPrior, expected_log_beta_counts, posterior_mean_accuracy

__all__ = [
    "BasedScatterAdd",
    "BetaPrior",
    "EMOutcome",
    "GibbsResult",
    "SegmentSum",
    "SerialShardRunner",
    "ShardedEMSpec",
    "SufficientStats",
    "make_runner",
    "run_em_sharded",
    "beta_expected_log",
    "chi_square_confidence",
    "dirichlet_expected_log",
    "expected_log_beta_counts",
    "gradient_ascent",
    "posterior_mean_accuracy",
    "projected_simplex",
    "run_em",
    "run_gibbs",
    "sample_categorical_rows",
    "sample_dirichlet_rows",
]
