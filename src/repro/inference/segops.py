"""Bit-exact segmented-reduction operators for EM inner loops.

Every EM method in this library spends its iterations scattering
per-answer quantities into per-task or per-worker bins — historically
with ``np.add.at`` (slow: unbuffered generic ufunc inner loop) or
``np.bincount`` plus a fancy-index gather.  The scatter *pattern* is
fixed for the lifetime of a fit, so this module freezes it once into a
CSR "incidence matrix" and turns every later iteration into one sparse-
times-dense product.

The operators take an optional ``cols`` indirection: instead of one
weight per answer, the operand may be a small *table* (a posterior
block, a per-(worker, label) log-likelihood table, a per-worker
parameter vector) that answer ``k`` reads at row ``cols[k]``.  That
fuses the per-iteration gather into the sparse product — the kernel
reads the table directly, so no per-answer intermediate array is ever
materialised.

Exactness contract
------------------
The operators are drop-in replacements at the **bit level**, not merely
numerically close:

* SciPy's CSR row-times-dense kernels accumulate each output row
  strictly in stored order, and construction here stores entries in
  answer order, so per-bin partial sums are evaluated in exactly the
  same sequence as ``np.add.at`` / ``np.bincount`` over the same
  (possibly gathered) arrays.
* :class:`BasedScatterAdd` reproduces the common ``out = base.copy();
  np.add.at(out, rows, weights)`` idiom by storing one *base slot* as
  the first entry of every row, so accumulation starts from the base
  value just like the in-place original.
* All stored coefficients are exactly ``1.0``; ``1.0 * x`` is ``x`` in
  IEEE-754, so the matrix form introduces no rounding.

This is what lets the single-shard sharded EM path reduce to the
pre-refactor math bit-for-bit while running severalfold faster (the
parity tests in ``tests/properties/test_property_sharded.py`` pin it).
Without SciPy the operators fall back to gather + ``bincount`` /
``add.at`` forms that are bit-identical, only slower.
"""

from __future__ import annotations

import numpy as np

from ..core.framework import radix_argsort
from ..exceptions import InferenceError

try:  # SciPy is optional: the numpy fallbacks below are bit-identical.
    import scipy.sparse as sp
except ImportError:  # pragma: no cover - exercised only without scipy
    sp = None

__all__ = ["SegmentSum", "BasedScatterAdd", "HAVE_SPARSE"]

#: Whether the fast CSR backend is active (falls back to bincount/add.at).
HAVE_SPARSE = sp is not None


def _csr_rowgroups(rows: np.ndarray, indices: np.ndarray, n_rows: int,
                   n_cols: int):
    """CSR matrix of ones grouping ``indices`` by ``rows``.

    Entries are stored in input order within each row (stable sort on
    the row key only), which is the property the exactness contract
    rests on; column indices are deliberately *not* sorted.  Built
    directly in CSR form — no COO detour, no duplicate summing.
    """
    if sp is None:
        return None
    order = radix_argsort(rows)
    indptr = np.zeros(n_rows + 1, dtype=np.int64)
    np.cumsum(np.bincount(rows, minlength=n_rows), out=indptr[1:])
    matrix = sp.csr_matrix(
        (np.ones(len(indices), dtype=np.float64),
         indices[order].astype(np.int64, copy=False), indptr),
        shape=(n_rows, n_cols),
    )
    return matrix


def _validate_rows(rows: np.ndarray, n_rows: int) -> np.ndarray:
    rows = np.asarray(rows, dtype=np.int64)
    if rows.ndim != 1:
        raise InferenceError("rows must be a 1-D index array")
    if len(rows) and (rows.min() < 0 or rows.max() >= n_rows):
        raise InferenceError(f"row indices must lie in [0, {n_rows})")
    return rows


def _validate_cols(cols: np.ndarray, rows: np.ndarray,
                   n_cols: int | None) -> tuple[np.ndarray, int]:
    """Check the table indirection: SciPy's CSR kernels index the dense
    operand unchecked, so an out-of-range col would silently read
    out-of-bounds memory instead of raising."""
    cols = np.asarray(cols, dtype=np.int64)
    if cols.shape != rows.shape:
        raise InferenceError("cols must parallel rows")
    if n_cols is None:
        raise InferenceError("n_cols is required with cols")
    if len(cols) and (cols.min() < 0 or cols.max() >= n_cols):
        raise InferenceError(f"col indices must lie in [0, {n_cols})")
    return cols, int(n_cols)


class SegmentSum:
    """Frozen per-row accumulation of answer weights.

    Without ``cols`` this is ``np.bincount(rows, weights,
    minlength=n_rows)`` — ``weights`` may be 1-D (length ``n``) or 2-D
    ``(n, m)``, giving ``(n_rows,)`` or ``(n_rows, m)``.

    With ``cols`` (and the table height ``n_cols``) the operand is a
    table ``B`` and answer ``k`` contributes ``B[cols[k]]``:
    bit-identical to ``np.bincount(rows, weights=B[cols])`` per column,
    with the gather fused into the kernel.
    """

    __slots__ = ("n_rows", "_op", "_rows", "_cols")

    def __init__(self, rows: np.ndarray, n_rows: int,
                 cols: np.ndarray | None = None,
                 n_cols: int | None = None) -> None:
        rows = _validate_rows(rows, n_rows)
        self.n_rows = int(n_rows)
        self._rows = rows
        if cols is None:
            cols = np.arange(len(rows), dtype=np.int64)
            n_cols = len(rows)
        else:
            cols, n_cols = _validate_cols(cols, rows, n_cols)
        self._cols = cols
        self._op = _csr_rowgroups(rows, cols, self.n_rows, int(n_cols))

    def __call__(self, operand: np.ndarray) -> np.ndarray:
        if self._op is not None:
            return self._op @ operand
        operand = np.asarray(operand, dtype=np.float64)
        weights = operand[self._cols]
        if weights.ndim == 1:
            return np.bincount(self._rows, weights=weights,
                               minlength=self.n_rows)
        out = np.empty((self.n_rows, weights.shape[1]))
        for j in range(weights.shape[1]):
            out[:, j] = np.bincount(self._rows, weights=weights[:, j],
                                    minlength=self.n_rows)
        return out


class BasedScatterAdd:
    """Frozen ``out = base.copy(); np.add.at(out, rows, weights)``.

    Each output row's accumulation *starts from the base value* and adds
    the row's weights in input order — exactly the floating-point
    evaluation sequence of the in-place idiom it replaces.

    Without ``cols``, call with ``base`` broadcastable to ``(n_rows,)``
    / ``(n_rows, m)`` and per-answer ``weights`` of shape ``(n,)`` /
    ``(n, m)``.  With ``cols``/``n_cols``, the second operand is a
    table ``B`` of height ``n_cols`` and answer ``k`` adds
    ``B[cols[k]]`` — the gather is fused into the kernel.
    """

    __slots__ = ("n_rows", "n", "_op", "_rows", "_cols", "_buf")

    def __init__(self, rows: np.ndarray, n_rows: int,
                 cols: np.ndarray | None = None,
                 n_cols: int | None = None) -> None:
        rows = _validate_rows(rows, n_rows)
        self.n_rows = int(n_rows)
        self.n = len(rows)
        self._rows = rows
        if cols is None:
            cols = np.arange(self.n, dtype=np.int64)
            n_cols = self.n
        else:
            cols, n_cols = _validate_cols(cols, rows, n_cols)
        self._cols = cols
        # The operand buffer is [base (n_rows); table (n_cols)]: row r's
        # base slot is entry r (stored first within the row, so
        # accumulation starts from it), answers read slot n_rows+cols.
        aug_rows = np.concatenate([np.arange(self.n_rows, dtype=np.int64),
                                   rows])
        aug_cols = np.concatenate([np.arange(self.n_rows, dtype=np.int64),
                                   self.n_rows + cols])
        self._op = _csr_rowgroups(aug_rows, aug_cols, self.n_rows,
                                  self.n_rows + int(n_cols))
        self._buf: np.ndarray | None = None

    def _buffer(self, height: int, trailing: tuple[int, ...]) -> np.ndarray:
        shape = (height, *trailing)
        if self._buf is None or self._buf.shape != shape:
            self._buf = np.empty(shape, dtype=np.float64)
        return self._buf

    def __call__(self, base: np.ndarray, table: np.ndarray) -> np.ndarray:
        table = np.asarray(table, dtype=np.float64)
        buf = self._buffer(self.n_rows + table.shape[0], table.shape[1:])
        buf[: self.n_rows] = base
        buf[self.n_rows:] = table
        if self._op is not None:
            return self._op @ buf
        out = buf[: self.n_rows].copy()
        np.add.at(out, self._rows, buf[self.n_rows:][self._cols])
        return out
