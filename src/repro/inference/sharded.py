"""Sharded map-reduce EM: mergeable sufficient statistics over shards.

The generic loop of :func:`repro.inference.em.run_em` closes its two
steps over one global answer array.  This module is the partition-first
re-expression of that loop:

* the **E-step** maps over :class:`~repro.core.shards.AnswerShard`\\ s —
  each shard computes the posterior block of its own task range from its
  own answers (tasks are range-partitioned, so no cross-shard traffic);
* the **M-step** maps ``accumulate(shard, posterior_block)`` over shards
  to produce per-shard :class:`SufficientStats`, reduces them with
  :meth:`SufficientStats.merge` (plain field-wise addition), and calls
  ``finalize`` once on the merged totals to obtain global parameters.

A method participates by providing a :class:`ShardedEMSpec` describing
its statistics; :func:`run_em_sharded` supplies the control flow, warm
starts, golden-task clamping and convergence tracking with exactly the
semantics of :func:`~repro.inference.em.run_em`.  With one shard the
computation reduces to the unsharded math bit-for-bit (the shard is the
original arrays, and the :mod:`~repro.inference.segops` operators
reproduce the scalar kernels' accumulation order exactly); with many
shards only the merge order of worker-side partial sums differs, which
perturbs posteriors at the last-ulp level (~1e-15 per iteration).

Execution is pluggable: :class:`SerialShardRunner` runs shards in the
calling thread or fans them over a thread pool;
:class:`repro.engine.sharded.ProcessShardRunner` runs the same phases in
worker processes over shared-memory answer arrays.

Delta refits
------------
A *delta refit* is the incremental-EM mode (in the spirit of Neal &
Hinton's partial E-steps) a warm refit on a grown answer stream can run
instead of full E/M sweeps.  Two mechanisms make its cost scale with
what changed rather than with total history:

* **Dirty-shard priming** — the caller (usually
  :class:`~repro.engine.engine.InferenceEngine`) passes a
  :class:`DeltaPlan` naming the shards whose task range received new
  answers since the cached :class:`ShardState` was collected.  Only
  those shards run the priming E-step; clean shards reuse their cached
  posterior blocks (exact: their answers did not change) and their
  cached per-shard :class:`SufficientStats` (exact when the global
  sizes are unchanged, recomputed lazily otherwise).
* **Converged-shard freezing** — after each E-step, shards whose
  maximum posterior change fell below ``freeze_tol`` freeze: later
  M-steps merge their cached statistics without recomputation and later
  E-steps skip them entirely.  Every ``verify_every`` iterations — and
  always once before convergence is declared — a full-verify E-step
  recomputes the frozen shards' blocks and *thaws* any shard whose
  drift reached ``freeze_tol``, so a frozen shard can never silently
  diverge.  The final verify adopts the fresh blocks, so the returned
  posterior is a genuine E-step output at the final parameters, exactly
  like the full path's.

The delta refit is approximate by design: frozen shards lag the global
parameters by at most ``freeze_tol`` between verifies.  The default
``freeze_tol`` (the EM tolerance) keeps that lag inside the convergence
threshold; both paths stop only when a full E-step pass moves no
posterior entry by the tolerance, so their final states agree to well
below it in practice.  ``refit="full"`` (the default policy) never
enters this code path and stays bit-identical to the historical
behaviour.
"""

from __future__ import annotations

import abc
import dataclasses
import functools
import time
from typing import Any, Callable, Mapping, Sequence

import numpy as np

from ..core.framework import (
    DEFAULT_MAX_ITER,
    DEFAULT_TOLERANCE,
    ConvergenceTracker,
    clamp_golden_posterior,
)
from ..core.policy import DEFAULT_VERIFY_EVERY
from ..exceptions import ConvergenceError, InferenceError
from ..core.result import FitStats
from ..core.shards import AnswerShard, ShardedAnswerSet
from .em import EMOutcome

__all__ = [
    "SufficientStats",
    "ShardedEMSpec",
    "AlternatingSpec",
    "SerialShardRunner",
    "ShardState",
    "DeltaPlan",
    "GibbsOutcome",
    "check_delta_layout",
    "dirty_shards",
    "pad_rows",
    "majority_block",
    "make_runner",
    "run_em_sharded",
    "run_alternating_sharded",
    "run_gibbs_sharded",
]


class SufficientStats:
    """A bundle of mergeable M-step accumulators.

    Holds named arrays (or scalars); :meth:`merge` adds field-wise.
    Sufficiency is the method's contract: merging the per-shard bundles
    must yield the same totals the unsharded M-step would compute (up to
    float summation order).
    """

    __slots__ = ("fields",)

    def __init__(self, **fields) -> None:
        self.fields = fields

    def __getitem__(self, name):
        return self.fields[name]

    def merge(self, other: "SufficientStats") -> "SufficientStats":
        """Field-wise sum of two stats bundles (the reduce step)."""
        if set(self.fields) != set(other.fields):
            raise InferenceError(
                f"cannot merge stats with fields {sorted(self.fields)} "
                f"and {sorted(other.fields)}"
            )
        return SufficientStats(
            **{k: self.fields[k] + other.fields[k] for k in self.fields}
        )

    def __repr__(self) -> str:
        return f"SufficientStats({', '.join(sorted(self.fields))})"


class ShardedEMSpec(abc.ABC):
    """Method-specific shard computations for :func:`run_em_sharded`.

    Subclasses implement the four phase hooks; every hook receives the
    shard plus the per-shard static operators built (once) by
    :meth:`build_ops`.  Hooks must depend only on their arguments and
    the spec's construction-time configuration, so the same spec can be
    rebuilt inside worker processes.

    ``m_step`` has a default map-reduce implementation over
    ``accumulate``/``merge``/``finalize``; methods whose M-step is
    itself iterative (GLAD's gradient ascent) override it and use the
    runner for their inner map-reduce rounds.
    """

    #: Clamp applied to the assembled global state after every E-step
    #: (and to the initial state): posterior-style by default, numeric
    #: methods override with :func:`clamp_golden_values`.
    golden_clamp = staticmethod(clamp_golden_posterior)

    #: Whether the default map-reduce M-step over
    #: ``accumulate``/``merge``/``finalize`` is in use.  Delta refits
    #: manage a per-shard statistics cache through that path; specs that
    #: override :meth:`m_step` with their own iterated protocol (GLAD)
    #: set this False and implement :meth:`m_step_delta` instead.
    statistics_m_step = True

    #: Whether per-shard ``ops`` is *mutated* by the phase hooks (KOS
    #: stores its message vectors there).  The fault-tolerant runtime
    #: keeps a per-lease phase log for stateful specs and replays it
    #: into respawned workers (and onto the master's degraded path), so
    #: recovery stays bit-identical; stateless specs — ops built once
    #: from shard data, never written — skip the log entirely.
    stateful_ops = False

    def __init__(self) -> None:
        self._ops: dict[int, object] = {}

    # -- static per-shard state ----------------------------------------
    def shard_ops(self, shard: AnswerShard):
        """Cached static operators for ``shard`` (built on first use)."""
        ops = self._ops.get(shard.index)
        if ops is None:
            ops = self._ops[shard.index] = self.build_ops(shard)
        return ops

    def invalidate_shard(self, index: int) -> None:
        """Drop cached per-shard state for one shard (its answers
        changed — e.g. an appended stream epoch extended it).  Specs
        with extra per-shard caches extend this."""
        self._ops.pop(index, None)

    def resize(self, n_tasks: int, n_workers: int, n_choices: int) -> bool:
        """Adopt grown global sizes, keeping cached per-shard operators
        valid; returns whether the spec survived.

        The retention contract for a *clean* shard (unchanged answers):
        its answers reference only the previously known workers and
        tasks, so operators built at the old sizes remain usable when
        the hooks pad their worker-dimension outputs to the new global
        width (zeros for the new workers — exact, they have no answers
        there) and slice parameter tables down to the operator's baked
        width.  Specs that support this override ``resize`` to update
        their size fields and return True; the default declines any
        change, which makes the caller rebuild the spec (and thereby
        every operator) — always correct, never stale.
        """
        return (n_tasks, n_workers, n_choices) == (
            getattr(self, "n_tasks", n_tasks),
            getattr(self, "n_workers", n_workers),
            getattr(self, "n_choices", n_choices),
        )

    @abc.abstractmethod
    def build_ops(self, shard: AnswerShard):
        """Build the frozen scatter/reduce operators for one shard."""

    # -- phases --------------------------------------------------------
    @abc.abstractmethod
    def init_block(self, shard: AnswerShard, ops) -> np.ndarray:
        """Cold-start state block for the shard's task range (the
        method's default initialisation, e.g. majority voting)."""

    @abc.abstractmethod
    def accumulate(self, shard: AnswerShard, ops,
                   block: np.ndarray) -> SufficientStats:
        """Map phase of the M-step: this shard's sufficient statistics
        given its current posterior block."""

    @abc.abstractmethod
    def finalize(self, stats: SufficientStats):
        """Reduce epilogue: merged statistics -> global parameters."""

    @abc.abstractmethod
    def e_block(self, shard: AnswerShard, ops, params) -> np.ndarray:
        """E-step for one shard: global parameters -> posterior block
        covering ``[shard.task_start, shard.task_stop)``."""

    # -- control -------------------------------------------------------
    def m_step(self, runner: "SerialShardRunner", blocks: Sequence[np.ndarray],
               prev_params):
        """One M-step: map ``accumulate``, reduce ``merge``, ``finalize``.

        ``prev_params`` is the previous iteration's parameter object
        (``None`` on the first iteration); the default statistics path
        ignores it, iterative M-steps (GLAD) resume from it.
        """
        stats = runner.call("accumulate", per_shard=blocks)
        return self.finalize(functools.reduce(
            lambda a, b: a.merge(b), stats))

    def m_step_delta(self, runner: "SerialShardRunner",
                     blocks: Sequence[np.ndarray], prev_params,
                     frozen: set, stats_cache: list,
                     fit_stats: FitStats | None = None):
        """Frozen-aware M-step for delta refits.

        Only specs with ``statistics_m_step = False`` need this (the
        statistics path is handled generically by the delta loop, which
        recomputes ``accumulate`` for shards whose cache entry is
        ``None`` and merges the cache); iterated M-steps (GLAD) override
        it to fold frozen shards' cached partials into every round.
        """
        raise NotImplementedError(
            f"{type(self).__name__} overrides m_step but not m_step_delta"
        )


class AlternatingSpec(ShardedEMSpec):
    """Spec base for truth/weight *alternating* estimators (CATD, PM).

    These methods iterate E-then-M — a truth step from the current
    source weights, then a weight step from the per-worker losses — and
    track convergence on the **weights**, the reverse of the EM loop's
    M-then-E with convergence on the posterior.  They run under
    :func:`run_alternating_sharded` instead of :func:`run_em_sharded`;
    the statistics contract is unchanged (``accumulate`` maps over
    shards, ``merge`` reduces, ``finalize`` turns merged losses into
    weights), so the same spec also drives the generic delta-refit
    machinery (:class:`DeltaPlan`) and the process runtime.
    """

    #: Extra positional arguments appended to every ``accumulate`` call
    #: (master-computed constants such as a numeric distance scale);
    #: must pickle for the process tier.
    accumulate_shared: tuple = ()

    def prepare_accumulate(self, state: np.ndarray,
                           ranges: Sequence[tuple[int, int]],
                           rng, only: Sequence[int] | None = None) -> list:
        """Master-side hook: the assembled truth state -> per-shard
        ``accumulate`` inputs (aligned to ``only`` when given).

        The default passes each shard its state slice; specs whose
        M-step consumes *decoded* labels with random tie-breaks (PM)
        override this so all randomness stays on the master generator —
        shard phases themselves must remain deterministic.
        """
        indices = range(len(ranges)) if only is None else only
        return [state[ranges[k][0]:ranges[k][1]] for k in indices]

    def init_block(self, shard: AnswerShard, ops) -> np.ndarray:
        raise NotImplementedError(
            f"{type(self).__name__} always starts from initial weights; "
            f"it has no cold-start state block"
        )


class SerialShardRunner:
    """Executes spec phases over in-memory shards, serially or on a
    thread pool.

    The runner is the only component that knows *where* shards run; the
    EM loop and the specs are agnostic.  ``pool`` may be any object with
    an :meth:`~concurrent.futures.Executor.map`-compatible ``map``
    (e.g. a ``ThreadPoolExecutor``); ``None`` runs in the calling
    thread.  NumPy/SciPy hold the GIL through most of these kernels, so
    threads mainly help when shards are large enough for the released
    sections to overlap — the process runner in
    :mod:`repro.engine.sharded` is the true multi-core path.
    """

    def __init__(self, spec: ShardedEMSpec, shards: Sequence[AnswerShard],
                 pool=None) -> None:
        self.spec = spec
        self.shards = list(shards)
        self.pool = pool
        #: Fault-recovery counters, zero on the in-process tiers; the
        #: process-tier lease fills its own (same keys), and the
        #: drivers fold whichever runner they got into ``FitStats``.
        self.fault_events = {"respawns": 0, "retries": 0, "timeouts": 0,
                             "crashes": 0, "degraded": 0}

    @property
    def n_shards(self) -> int:
        return len(self.shards)

    @property
    def task_ranges(self) -> list[tuple[int, int]]:
        """Global ``(task_start, task_stop)`` of every shard, in order."""
        return [(s.task_start, s.task_stop) for s in self.shards]

    def m_step(self, state: np.ndarray, prev_params=None):
        """Run the spec's M-step on the global state (blocks sliced
        here), returning the new global parameters."""
        return self.spec.m_step(self, _split_blocks_ranges(
            state, self.task_ranges), prev_params)

    def call(self, phase: str, per_shard: Sequence | None = None,
             shared: tuple = (), only: Sequence[int] | None = None) -> list:
        """Run ``spec.<phase>(shard, ops, *per_shard[i], *shared)`` for
        every shard, returning results in shard order.

        ``per_shard`` entries may be a tuple of positional arguments or
        a single array (wrapped automatically).  With ``only`` (a
        sequence of shard indices) the phase runs on exactly those
        shards — the others get no call at all (in the process runner,
        not even a message) — with ``per_shard`` and the result list
        aligned to ``only``.  This is how delta refits skip clean and
        frozen shards.
        """
        fn = getattr(self.spec, phase)
        indices = (list(only) if only is not None
                   else list(range(self.n_shards)))

        def one(pos: int):
            shard = self.shards[indices[pos]]
            args = ()
            if per_shard is not None:
                entry = per_shard[pos]
                args = entry if isinstance(entry, tuple) else (entry,)
            return fn(shard, self.spec.shard_ops(shard), *args, *shared)

        positions = range(len(indices))
        if self.pool is not None and len(indices) > 1:
            return list(self.pool.map(one, positions))
        return [one(pos) for pos in positions]

    def close(self) -> None:
        """Release executor resources (no-op for the serial runner)."""


def pad_rows(array: np.ndarray, n_rows: int) -> np.ndarray:
    """Zero-pad axis 0 of ``array`` up to ``n_rows`` (no-op if wide
    enough) — the worker-dimension padding behind
    :meth:`ShardedEMSpec.resize`."""
    if array.shape[0] >= n_rows:
        return array
    pad = np.zeros((n_rows - array.shape[0],) + array.shape[1:],
                   dtype=array.dtype)
    return np.concatenate([array, pad])


def _split_blocks_ranges(state: np.ndarray,
                         ranges: Sequence[tuple[int, int]]
                         ) -> list[np.ndarray]:
    """Slice a global state array into per-shard task-range views."""
    return [state[start:stop] for start, stop in ranges]


def majority_block(shard: AnswerShard) -> np.ndarray:
    """Per-shard majority-vote posterior (normalised local vote counts).

    Vote counts are integral, so per-shard accumulation equals the
    global ``vote_counts`` rows exactly — majority initialisation is
    bit-identical at any shard count.
    """
    from ..core.framework import normalize_rows

    votes = np.bincount(
        shard.local_tasks * shard.n_choices + shard.values,
        minlength=shard.n_local_tasks * shard.n_choices,
    ).astype(np.float64).reshape(shard.n_local_tasks, shard.n_choices)
    return normalize_rows(votes)


# ----------------------------------------------------------------------
# Delta refits: dirty-shard priming + converged-shard freezing
# ----------------------------------------------------------------------

@dataclasses.dataclass
class ShardState:
    """Per-shard cache a fit leaves behind for the next *delta* refit.

    ``blocks`` are copies of the final per-shard posterior blocks;
    ``stats`` holds each shard's cacheable M-step contribution — the
    :class:`SufficientStats` of ``accumulate`` at that block for
    statistics specs, a spec-defined partial (GLAD's per-worker
    ability-gradient sum) otherwise, or ``None`` when nothing valid was
    captured (the next delta refit recomputes lazily).  A stats entry
    may lag its block by less than the freeze tolerance when the final
    verify polished the block; the lag is inside the error budget the
    freeze protocol already grants.

    ``task_cuts`` pin the shard layout: a delta refit is only valid
    over the *same* cuts (the last cut may grow with new tasks).
    ``n_answers`` records the answers the state was fitted on (the
    dirtiness boundary); ``base_answers`` the answers when the cuts
    were computed (engines re-place and refit full once the stream has
    doubled, mirroring the runtime's rebalance rule).

    ``session`` is an opaque per-family payload for methods whose
    incremental contract carries more than posterior blocks and
    statistics: KOS caches its per-shard message state, the Gibbs
    samplers their chain state (tally, generator state, closure
    payload).  It must pickle (it rides the engine's fit snapshots
    through :class:`~repro.store.snapshots.SnapshotStore`) and is
    interpreted only by the method that wrote it.
    """

    task_cuts: tuple[int, ...]
    sizes: tuple[int, int, int]
    blocks: list[np.ndarray]
    stats: list
    n_answers: int = 0
    base_answers: int = 0
    session: Any = None

    @property
    def n_shards(self) -> int:
        return len(self.task_cuts) - 1

    def extended_cuts(self, n_tasks: int) -> list[int]:
        """The pinned cuts with the last range grown to ``n_tasks``
        (new tasks are always appended, so they extend the last
        shard)."""
        if n_tasks < self.task_cuts[-1]:
            raise InferenceError(
                f"cached shard state covers {self.task_cuts[-1]} tasks "
                f"but the answer set has {n_tasks}; delta refits require "
                f"an append-only stream"
            )
        return list(self.task_cuts[:-1]) + [int(n_tasks)]


@dataclasses.dataclass
class DeltaPlan:
    """What :func:`run_em_sharded` needs to run one delta refit.

    ``prev=None`` asks for a *collecting full fit*: the normal full
    E/M sweep, plus a :class:`ShardState` on the way out (the seed of
    the first real delta refit).  With ``prev`` set, ``dirty`` must
    flag every shard whose task range received new answers since
    ``prev`` was collected — see :func:`dirty_shards`.
    """

    prev: ShardState | None = None
    dirty: Sequence[bool] | None = None
    freeze_tol: float | None = None
    verify_every: int = DEFAULT_VERIFY_EVERY

    def collect_only(self) -> "DeltaPlan":
        """This plan demoted to a collecting full fit (methods fall
        back to it when the warm parameters a delta refit needs are
        missing)."""
        return DeltaPlan(prev=None, freeze_tol=self.freeze_tol,
                         verify_every=self.verify_every)


def dirty_shards(task_cuts: Sequence[int], new_tasks: np.ndarray,
                 n_tasks: int | None = None) -> np.ndarray:
    """Boolean dirty flag per shard for a batch of new answers.

    A shard is dirty when any new answer's task index falls in its
    ``[cut_k, cut_{k+1})`` range; task indices at or beyond the cached
    last cut (newly appended tasks) dirty the last shard, as does any
    growth of ``n_tasks`` itself (a new task always arrives with at
    least one answer, but the flag must hold even for adversarial
    inputs where it does not).
    """
    cuts = np.asarray(task_cuts, dtype=np.int64)
    n_shards = len(cuts) - 1
    dirty = np.zeros(n_shards, dtype=bool)
    new_tasks = np.asarray(new_tasks, dtype=np.int64)
    if new_tasks.size:
        owners = np.searchsorted(cuts, new_tasks, side="right") - 1
        dirty[np.clip(owners, 0, n_shards - 1)] = True
    if n_tasks is not None and n_tasks > int(cuts[-1]):
        dirty[-1] = True
    return dirty


def check_delta_layout(ranges: Sequence[tuple[int, int]], prev: ShardState,
                       dirty: np.ndarray) -> None:
    """Validate a delta refit's pinned shard layout against the cached
    state: same shard count, same cuts (the last range may grow), and
    every clean shard's cached block still covering its task range.
    Raises ``ValueError`` on any mismatch — the caller must refit full
    to re-place."""
    n_shards = len(ranges)
    if prev.n_shards != n_shards or len(dirty) != n_shards:
        raise InferenceError(
            f"delta refit over {n_shards} shards got a cached state for "
            f"{prev.n_shards} (dirty flags: {len(dirty)}); the shard "
            f"layout must be pinned across delta refits"
        )
    for k, (start, stop) in enumerate(ranges):
        if start != prev.task_cuts[k] or (k < n_shards - 1
                                          and stop != prev.task_cuts[k + 1]):
            raise InferenceError(
                "delta refit shard cuts diverged from the cached state; "
                "refit full to re-place"
            )
        if not dirty[k] and len(prev.blocks[k]) != stop - start:
            raise InferenceError(
                f"shard {k} is flagged clean but its task range changed "
                f"({len(prev.blocks[k])} cached rows vs {stop - start})"
            )


def _block_delta(a: np.ndarray, b: np.ndarray) -> float:
    """Max absolute difference between two blocks (0 for empty ones)."""
    return float(np.max(np.abs(a - b))) if a.size else 0.0


def _m_step_cached(runner: SerialShardRunner, state: np.ndarray,
                   prev_params, frozen: set, stats_cache: list,
                   fit_stats: FitStats):
    """One M-step reusing cached per-shard statistics where valid.

    Statistics specs: ``accumulate`` runs only for shards whose cache
    entry is ``None`` (active shards after an E-step, plus frozen
    shards whose cached stats were dropped); the merge covers all
    shards in shard order.  Other specs delegate to
    :meth:`ShardedEMSpec.m_step_delta`.
    """
    spec = runner.spec
    ranges = runner.task_ranges
    blocks = _split_blocks_ranges(state, ranges)
    if not spec.statistics_m_step:
        return spec.m_step_delta(runner, blocks, prev_params, frozen,
                                 stats_cache, fit_stats)
    need = [k for k in range(len(blocks)) if stats_cache[k] is None]
    if need:
        computed = runner.call("accumulate",
                               per_shard=[blocks[k] for k in need],
                               only=need)
        for k, stats in zip(need, computed):
            stats_cache[k] = stats
        fit_stats.accumulate_calls += len(need)
    return spec.finalize(functools.reduce(
        lambda a, b: a.merge(b), stats_cache))


def _collect_state(runner: SerialShardRunner, state: np.ndarray,
                   stats_cache: list | None, fit_stats: FitStats,
                   base_answers: int = 0) -> ShardState:
    """Capture the per-shard cache a finished fit leaves behind.

    For statistics specs, shards with no valid cached stats get one
    ``accumulate`` at their final block so the next delta refit's first
    M-step is pure cache reuse; other specs keep whatever partials the
    loop cached (missing ones are recomputed lazily next time).
    """
    spec = runner.spec
    ranges = runner.task_ranges
    blocks = [np.array(state[start:stop]) for start, stop in ranges]
    if stats_cache is None or not spec.statistics_m_step:
        # Non-statistics specs (GLAD) hold their cacheable M-step state
        # worker-side, which does not outlive the fit's runner: the
        # next delta refit re-seeds it lazily.
        stats_cache = [None] * len(ranges)
    if spec.statistics_m_step:
        need = [k for k in range(len(ranges)) if stats_cache[k] is None]
        if need:
            computed = runner.call("accumulate",
                                   per_shard=[blocks[k] for k in need],
                                   only=need)
            for k, stats in zip(need, computed):
                stats_cache[k] = stats
            fit_stats.accumulate_calls += len(need)
    cuts = [ranges[0][0]] + [stop for _, stop in ranges]
    return ShardState(
        task_cuts=tuple(int(c) for c in cuts),
        sizes=(getattr(spec, "n_tasks", 0), getattr(spec, "n_workers", 0),
               getattr(spec, "n_choices", 0)),
        blocks=blocks,
        stats=list(stats_cache),
        base_answers=base_answers,
    )


def _verify_frozen(runner: SerialShardRunner, state: np.ndarray,
                   parameters, frozen: set, stats_cache: list,
                   golden, freeze_tol: float, thaw_tol: float,
                   adopt_all: bool,
                   fit_stats: FitStats) -> tuple[bool, float]:
    """Full-verify E-step over the frozen set.

    Recomputes every frozen shard's block at the current parameters and
    grades the drift since the shard was last updated:

    * ``drift >= thaw_tol`` — the shard *thaws*: the fresh block is
      adopted, its cached stats dropped, and it rejoins the active set.
    * ``freeze_tol <= drift < thaw_tol`` — the shard is *refreshed in
      place*: the fresh block is adopted and its stats recomputed at
      the next M-step, but it stays frozen (a Neal–Hinton partial
      E-step — the drift accumulated over ``verify_every`` iterations,
      so its per-iteration rate is still below the freeze threshold
      and batched verify updates lose nothing).
    * ``drift < freeze_tol`` — nothing to do; the cached block and
      stats stay exactly consistent (``adopt_all``, the verify before
      declaring convergence, adopts even these so the returned
      posterior is an E-step output at the final parameters
      everywhere).

    Returns ``(drifted, adopted)``: whether any drift reached
    ``freeze_tol`` (the signal that convergence must not be declared
    yet) and the largest adopted state change (which the next
    convergence check must account for).
    """
    spec = runner.spec
    ranges = runner.task_ranges
    idx = sorted(frozen)
    if not idx:
        return False, 0.0
    fresh = runner.call("e_block", shared=(parameters,), only=idx)
    fit_stats.e_block_calls += len(idx)
    fit_stats.verify_passes += 1
    if golden:
        # Golden rows are clamped constants: compare post-clamp so a
        # clamped row's raw E-step output never reads as drift.
        scratch = state.copy()
        for k, block in zip(idx, fresh):
            start, stop = ranges[k]
            scratch[start:stop] = block
        scratch = spec.golden_clamp(scratch, golden)
        fresh = [scratch[ranges[k][0]:ranges[k][1]] for k in idx]
    drifted = False
    adopted = 0.0
    for k, block in zip(idx, fresh):
        start, stop = ranges[k]
        block = np.asarray(block, dtype=np.float64)
        if not np.all(np.isfinite(block)):
            raise ConvergenceError(
                f"non-finite posterior in verify E-step of shard {k}"
            )
        drift = _block_delta(block, state[start:stop])
        if drift >= freeze_tol:
            state[start:stop] = block
            stats_cache[k] = None
            drifted = True
            adopted = max(adopted, drift)
            if drift >= thaw_tol:
                frozen.discard(k)
                fit_stats.thaws += 1
        elif adopt_all:
            state[start:stop] = block
            adopted = max(adopted, drift)
    return drifted, adopted


def _run_em_delta(runner: SerialShardRunner, plan: DeltaPlan, *,
                  tolerance: float, max_iter: int, golden,
                  initial_parameters, fit_stats: FitStats) -> EMOutcome:
    """The delta-refit loop (see the module docstring)."""
    spec = runner.spec
    ranges = runner.task_ranges
    n_shards = len(ranges)
    prev = plan.prev
    freeze_tol = (plan.freeze_tol if plan.freeze_tol is not None
                  else tolerance)
    verify_every = max(1, int(plan.verify_every))
    dirty = np.asarray(plan.dirty, dtype=bool)
    check_delta_layout(ranges, prev, dirty)

    # --- prime: E-step over dirty shards only; clean blocks are exact.
    dirty_idx = [k for k in range(n_shards) if dirty[k]]
    clean_idx = [k for k in range(n_shards) if not dirty[k]]
    fit_stats.dirty_shards = len(dirty_idx)
    primed = runner.call("e_block", shared=(initial_parameters,),
                         only=dirty_idx) if dirty_idx else []
    fit_stats.e_block_calls += len(dirty_idx)
    primed_blocks = dict(zip(dirty_idx, primed))
    state = np.concatenate(
        [np.asarray(primed_blocks.get(k, prev.blocks[k]), dtype=np.float64)
         for k in range(n_shards)], axis=0)
    state = spec.golden_clamp(state, golden)

    stats_cache: list = [None] * n_shards
    sizes = (getattr(spec, "n_tasks", 0), getattr(spec, "n_workers", 0),
             getattr(spec, "n_choices", 0))
    if prev.stats is not None and tuple(prev.sizes) == sizes:
        for k in clean_idx:
            stats_cache[k] = prev.stats[k]
    frozen = set(clean_idx)

    # Convergence accounting mirrors ConvergenceTracker on the global
    # state, but assembled from the per-shard deltas the loop measures
    # anyway: frozen shards contribute zero between verifies, active
    # shards their E-step movement, verify refreshes the drift they
    # adopted — so no full-state copy/compare per iteration.
    parameters = initial_parameters
    iteration = 1  # the priming E-step, counted as in the full warm path
    converged = False
    pending = 0.0  # state change adopted by verifies since the last check
    # Per-iteration movement scale of the active frontier, feeding the
    # thaw threshold: a frozen shard rejoins the active set only when
    # its accumulated verify drift outpaces what the active shards
    # moved over the same window — anything slower is delivered more
    # cheaply as batched verify refreshes (Neal–Hinton scheduling).
    active_scale = float("inf")

    def thaw_threshold() -> float:
        return verify_every * max(freeze_tol, active_scale)

    while True:
        if converged:
            if not frozen:
                break
            # Never declare convergence over unverified frozen shards:
            # one full verify; any drift at or above the freeze
            # tolerance means the iteration must continue.  Drifted
            # shards are refreshed in place (an incremental partial
            # E-step), not thawed: the continuation loop alternates
            # cheap cached M-steps with these verify refreshes — full
            # EM restricted to what still moves — until a verify pass
            # finds everything settled.
            drifted, adopted = _verify_frozen(
                runner, state, parameters, frozen, stats_cache, golden,
                freeze_tol, float("inf"), adopt_all=True,
                fit_stats=fit_stats)
            if not drifted:
                break
            pending = max(pending, adopted)
            converged = False
        elif iteration >= max_iter:
            if frozen:
                # Iteration cap: adopt fresh frozen blocks for an
                # honest (if unconverged) final state, then stop.
                _verify_frozen(runner, state, parameters, frozen,
                               stats_cache, golden, freeze_tol,
                               float("inf"), adopt_all=True,
                               fit_stats=fit_stats)
            break
        active = [k for k in range(n_shards) if k not in frozen]
        fit_stats.active_shards.append(len(active))
        fit_stats.frozen_shards.append(n_shards - len(active))
        parameters = _m_step_cached(runner, state, parameters, frozen,
                                    stats_cache, fit_stats)
        previous = {k: state[ranges[k][0]:ranges[k][1]].copy()
                    for k in active}
        if active:
            fresh = runner.call("e_block", shared=(parameters,),
                                only=active)
            fit_stats.e_block_calls += len(active)
            for k, block in zip(active, fresh):
                start, stop = ranges[k]
                block = np.asarray(block, dtype=np.float64)
                if not np.all(np.isfinite(block)):
                    raise ConvergenceError(
                        f"non-finite posterior in E-step of shard {k} "
                        f"at iteration {iteration}"
                    )
                state[start:stop] = block
                stats_cache[k] = None
        state = spec.golden_clamp(state, golden)
        active_scale = 0.0
        for k in active:
            start, stop = ranges[k]
            moved = _block_delta(state[start:stop], previous[k])
            active_scale = max(active_scale, moved)
            if moved < freeze_tol:
                frozen.add(k)
        iteration += 1
        converged = max(active_scale, pending) < tolerance
        pending = 0.0
        if not converged and iteration < max_iter and frozen \
                and iteration % verify_every == 0:
            _, adopted = _verify_frozen(
                runner, state, parameters, frozen, stats_cache, golden,
                freeze_tol, thaw_threshold(), adopt_all=False,
                fit_stats=fit_stats)
            pending = max(pending, adopted)

    shard_state = _collect_state(runner, state, stats_cache, fit_stats,
                                 base_answers=prev.base_answers)
    fit_stats.iterations = iteration
    return EMOutcome(
        posterior=state,
        parameters=parameters,
        n_iterations=iteration,
        converged=converged,
        fit_stats=fit_stats,
        shard_state=shard_state,
    )


def run_em_sharded(
    runner: SerialShardRunner,
    *,
    tolerance: float = DEFAULT_TOLERANCE,
    max_iter: int = DEFAULT_MAX_ITER,
    golden: Mapping[int, float] | None = None,
    initial_posterior: np.ndarray | None = None,
    initial_parameters: object | None = None,
    delta: DeltaPlan | None = None,
) -> EMOutcome:
    """Sharded analogue of :func:`repro.inference.em.run_em`.

    Per iteration: one ``m_step`` (map ``accumulate`` over shards, merge,
    finalize — or the spec's own inner map-reduce), one mapped E-step,
    reassembly of the global state by concatenating the task-range
    blocks, golden clamping, and a convergence check on the global
    state.  Warm-start semantics mirror ``run_em`` exactly: with
    ``initial_parameters`` the loop opens with a priming E-step that is
    counted as an iteration; ``initial_posterior`` starts the loop
    without counting.  ``initial_parameters`` wins when both are given.

    ``delta`` opts into the incremental path (module docstring):
    ``DeltaPlan(prev=None)`` runs the normal full sweep but collects a
    :class:`ShardState` for the next refit; a plan with a cached
    ``prev`` runs the dirty-shard/freezing loop and **requires**
    ``initial_parameters`` (delta refits are warm by definition).
    Without ``delta`` the computation is untouched — bit-identical to
    the historical full path — and only the :class:`FitStats` counters
    are recorded.
    """
    spec = runner.spec
    started = time.perf_counter()
    fit_stats = FitStats(mode="full", n_shards=runner.n_shards)

    if delta is not None and delta.prev is not None:
        if initial_parameters is None:
            raise InferenceError(
                "a delta refit resumes a previous fit; pass "
                "initial_parameters (warm start)"
            )
        fit_stats.mode = "delta"
        outcome = _run_em_delta(runner, delta, tolerance=tolerance,
                                max_iter=max_iter, golden=golden,
                                initial_parameters=initial_parameters,
                                fit_stats=fit_stats)
        fit_stats.em_seconds = time.perf_counter() - started
        fit_stats.record_faults(getattr(runner, "fault_events", None))
        return outcome

    def assemble(blocks: list[np.ndarray]) -> np.ndarray:
        # Recovery re-dispatches and degraded executions must hand back
        # one block per shard like an uninterrupted dispatch (phases
        # are idempotent pure maps; a partial set means the runner's
        # recovery contract broke).
        if len(blocks) != runner.n_shards:
            raise InferenceError(
                f"e_block returned {len(blocks)} blocks for "
                f"{runner.n_shards} shards; phase dispatch must be "
                f"idempotent and complete")
        state = np.concatenate(blocks, axis=0)
        return spec.golden_clamp(state, golden)

    if initial_parameters is not None:
        state = assemble(runner.call("e_block", shared=(initial_parameters,)))
        fit_stats.e_block_calls += runner.n_shards
    elif initial_posterior is not None:
        state = spec.golden_clamp(
            np.array(initial_posterior, dtype=np.float64), golden)
    else:
        state = assemble(runner.call("init_block"))

    tracker = ConvergenceTracker(tolerance=tolerance, max_iter=max_iter)
    # As in run_em, the priming E-step of a warm start is real work:
    # count it so warm and cold iteration totals compare honestly.
    done = initial_parameters is not None and tracker.update(state)
    parameters = initial_parameters
    while not done:
        fit_stats.active_shards.append(runner.n_shards)
        fit_stats.frozen_shards.append(0)
        parameters = runner.m_step(state, parameters)
        if spec.statistics_m_step:
            fit_stats.accumulate_calls += runner.n_shards
        state = assemble(runner.call("e_block", shared=(parameters,)))
        fit_stats.e_block_calls += runner.n_shards
        if tracker.update(state):
            break
    shard_state = None
    if delta is not None:
        shard_state = _collect_state(runner, state, None, fit_stats)
    fit_stats.iterations = tracker.iteration
    fit_stats.em_seconds = time.perf_counter() - started
    fit_stats.record_faults(getattr(runner, "fault_events", None))
    return EMOutcome(
        posterior=state,
        parameters=parameters,
        n_iterations=tracker.iteration,
        converged=tracker.converged,
        fit_stats=fit_stats,
        shard_state=shard_state,
    )


# ----------------------------------------------------------------------
# Alternating truth/weight estimation (CATD, PM)
# ----------------------------------------------------------------------

def _accumulate_alternating(runner: SerialShardRunner, state: np.ndarray,
                            stats_cache: list, rng,
                            fit_stats: FitStats) -> None:
    """Fill every ``None`` entry of ``stats_cache`` with a fresh
    ``accumulate`` at the current state (the alternating analogue of the
    recompute half of :func:`_m_step_cached`)."""
    spec = runner.spec
    ranges = runner.task_ranges
    need = [k for k in range(len(ranges)) if stats_cache[k] is None]
    if need:
        per_shard = spec.prepare_accumulate(state, ranges, rng, only=need)
        computed = runner.call("accumulate", per_shard=per_shard,
                               shared=tuple(spec.accumulate_shared),
                               only=need)
        if len(computed) != len(need):
            raise InferenceError(
                f"accumulate returned {len(computed)} results for "
                f"{len(need)} requested shards; phase dispatch must be "
                f"idempotent and complete")
        for k, stats in zip(need, computed):
            stats_cache[k] = stats
        fit_stats.accumulate_calls += len(need)


def _collect_alternating_state(runner: SerialShardRunner, state: np.ndarray,
                               stats_cache: list, rng, fit_stats: FitStats,
                               base_answers: int = 0) -> ShardState:
    """Alternating analogue of :func:`_collect_state` (the accumulate
    inputs go through ``prepare_accumulate``, so the generic collector
    cannot recompute them)."""
    spec = runner.spec
    ranges = runner.task_ranges
    blocks = [np.array(state[start:stop]) for start, stop in ranges]
    _accumulate_alternating(runner, state, stats_cache, rng, fit_stats)
    cuts = [ranges[0][0]] + [stop for _, stop in ranges]
    return ShardState(
        task_cuts=tuple(int(c) for c in cuts),
        sizes=(getattr(spec, "n_tasks", 0), getattr(spec, "n_workers", 0),
               getattr(spec, "n_choices", 0)),
        blocks=blocks,
        stats=list(stats_cache),
        base_answers=base_answers,
    )


def _run_alternating_delta(runner: SerialShardRunner, plan: DeltaPlan, *,
                           tolerance: float, max_iter: int, golden,
                           initial_parameters, rng,
                           fit_stats: FitStats) -> EMOutcome:
    """Dirty-shard/freezing loop for alternating specs.

    Convergence is tracked on the (small) weight vector with a plain
    :class:`~repro.core.framework.ConvergenceTracker` — no per-shard
    delta bookkeeping needed for it — while freezing and verification
    still grade per-shard *truth-block* movement exactly as
    :func:`_run_em_delta` does (:func:`_verify_frozen` is shared: it
    only needs ``e_block`` and the golden clamp).
    """
    spec = runner.spec
    ranges = runner.task_ranges
    n_shards = len(ranges)
    prev = plan.prev
    freeze_tol = (plan.freeze_tol if plan.freeze_tol is not None
                  else tolerance)
    verify_every = max(1, int(plan.verify_every))
    dirty = np.asarray(plan.dirty, dtype=bool)
    check_delta_layout(ranges, prev, dirty)

    # --- prime: truth step over dirty shards only at the warm weights.
    dirty_idx = [k for k in range(n_shards) if dirty[k]]
    clean_idx = [k for k in range(n_shards) if not dirty[k]]
    fit_stats.dirty_shards = len(dirty_idx)
    parameters = initial_parameters
    primed = runner.call("e_block", shared=(parameters,),
                         only=dirty_idx) if dirty_idx else []
    fit_stats.e_block_calls += len(dirty_idx)
    primed_blocks = dict(zip(dirty_idx, primed))
    state = np.concatenate(
        [np.asarray(primed_blocks.get(k, prev.blocks[k]), dtype=np.float64)
         for k in range(n_shards)], axis=0)
    state = spec.golden_clamp(state, golden)

    stats_cache: list = [None] * n_shards
    sizes = (getattr(spec, "n_tasks", 0), getattr(spec, "n_workers", 0),
             getattr(spec, "n_choices", 0))
    if prev.stats is not None and tuple(prev.sizes) == sizes:
        for k in clean_idx:
            stats_cache[k] = prev.stats[k]
    frozen = set(clean_idx)

    tracker = ConvergenceTracker(tolerance=tolerance, max_iter=max_iter)
    # The warm weights prime the tracker (counted, as in the full warm
    # path): the refit may then converge after a single weight step.
    tracker.update(parameters)
    converged = False
    active_scale = float("inf")

    def thaw_threshold() -> float:
        return verify_every * max(freeze_tol, active_scale)

    while True:
        active = [k for k in range(n_shards) if k not in frozen]
        fit_stats.active_shards.append(len(active))
        fit_stats.frozen_shards.append(n_shards - len(active))
        _accumulate_alternating(runner, state, stats_cache, rng, fit_stats)
        parameters = spec.finalize(functools.reduce(
            lambda a, b: a.merge(b), stats_cache))
        done = tracker.update(parameters)
        if done and tracker.converged:
            if not frozen:
                converged = True
                break
            # Never declare convergence over unverified frozen shards
            # (see _run_em_delta): drifted blocks are refreshed in
            # place, their stats dropped, and the weight step re-runs.
            drifted, _ = _verify_frozen(
                runner, state, parameters, frozen, stats_cache, golden,
                freeze_tol, float("inf"), adopt_all=True,
                fit_stats=fit_stats)
            if not drifted:
                converged = True
                break
            continue
        if done:
            if frozen:
                _verify_frozen(runner, state, parameters, frozen,
                               stats_cache, golden, freeze_tol,
                               float("inf"), adopt_all=True,
                               fit_stats=fit_stats)
            break
        previous = {k: state[ranges[k][0]:ranges[k][1]].copy()
                    for k in active}
        if active:
            fresh = runner.call("e_block", shared=(parameters,),
                                only=active)
            fit_stats.e_block_calls += len(active)
            for k, block in zip(active, fresh):
                start, stop = ranges[k]
                block = np.asarray(block, dtype=np.float64)
                if not np.all(np.isfinite(block)):
                    raise ConvergenceError(
                        f"non-finite truth state in shard {k} at "
                        f"iteration {tracker.iteration}"
                    )
                state[start:stop] = block
                stats_cache[k] = None
        state = spec.golden_clamp(state, golden)
        active_scale = 0.0
        for k in active:
            start, stop = ranges[k]
            moved = _block_delta(state[start:stop], previous[k])
            active_scale = max(active_scale, moved)
            if moved < freeze_tol:
                frozen.add(k)
        if frozen and tracker.iteration % verify_every == 0:
            _verify_frozen(runner, state, parameters, frozen, stats_cache,
                           golden, freeze_tol, thaw_threshold(),
                           adopt_all=False, fit_stats=fit_stats)

    shard_state = _collect_alternating_state(
        runner, state, stats_cache, rng, fit_stats,
        base_answers=prev.base_answers)
    fit_stats.iterations = tracker.iteration
    return EMOutcome(
        posterior=state,
        parameters=parameters,
        n_iterations=tracker.iteration,
        converged=converged,
        fit_stats=fit_stats,
        shard_state=shard_state,
    )


def run_alternating_sharded(
    runner: SerialShardRunner,
    *,
    tolerance: float = DEFAULT_TOLERANCE,
    max_iter: int = DEFAULT_MAX_ITER,
    golden: Mapping[int, float] | None = None,
    initial_parameters: np.ndarray | None = None,
    rng=None,
    count_prime: bool = False,
    delta: DeltaPlan | None = None,
) -> EMOutcome:
    """Sharded driver for alternating truth/weight estimators.

    Per iteration: a mapped truth step (``e_block`` at the current
    weights, reassembled and golden-clamped), then a weight step (map
    ``accumulate`` over the ``prepare_accumulate`` inputs, merge,
    ``finalize``), then a convergence check **on the weights** — exactly
    the unsharded CATD/PM loop shape, bit-identical at one shard.

    ``initial_parameters`` (the starting weights) is required; with
    ``count_prime=True`` it also primes the convergence tracker (a warm
    refit may then stop after one weight step, mirroring
    :func:`run_em_sharded`'s counted warm prime).  ``rng`` feeds only
    master-side ``prepare_accumulate`` (random tie-breaking); ``delta``
    has :func:`run_em_sharded`'s semantics.
    """
    if initial_parameters is None:
        raise InferenceError("alternating estimation starts from weights; "
                         "pass initial_parameters")
    spec = runner.spec
    started = time.perf_counter()
    fit_stats = FitStats(mode="full", n_shards=runner.n_shards)

    if delta is not None and delta.prev is not None:
        fit_stats.mode = "delta"
        outcome = _run_alternating_delta(
            runner, delta, tolerance=tolerance, max_iter=max_iter,
            golden=golden, initial_parameters=initial_parameters,
            rng=rng, fit_stats=fit_stats)
        fit_stats.em_seconds = time.perf_counter() - started
        fit_stats.record_faults(getattr(runner, "fault_events", None))
        return outcome

    ranges = runner.task_ranges
    shared = tuple(spec.accumulate_shared)
    tracker = ConvergenceTracker(tolerance=tolerance, max_iter=max_iter)
    if count_prime:
        tracker.update(initial_parameters)
    parameters = initial_parameters
    state = None
    stats = None
    while True:
        fit_stats.active_shards.append(runner.n_shards)
        fit_stats.frozen_shards.append(0)
        state = spec.golden_clamp(np.concatenate(
            runner.call("e_block", shared=(parameters,)), axis=0), golden)
        fit_stats.e_block_calls += runner.n_shards
        stats = runner.call(
            "accumulate",
            per_shard=spec.prepare_accumulate(state, ranges, rng),
            shared=shared)
        fit_stats.accumulate_calls += runner.n_shards
        parameters = spec.finalize(functools.reduce(
            lambda a, b: a.merge(b), stats))
        if tracker.update(parameters):
            break
    shard_state = None
    if delta is not None:
        # The loop broke right after a weight step, so ``stats`` is the
        # full per-shard statistics list at the final truth state.
        shard_state = _collect_alternating_state(
            runner, state, list(stats), rng, fit_stats)
    fit_stats.iterations = tracker.iteration
    fit_stats.em_seconds = time.perf_counter() - started
    fit_stats.record_faults(getattr(runner, "fault_events", None))
    return EMOutcome(
        posterior=state,
        parameters=parameters,
        n_iterations=tracker.iteration,
        converged=tracker.converged,
        fit_stats=fit_stats,
        shard_state=shard_state,
    )


# ----------------------------------------------------------------------
# Gibbs sweeps (BCC, CBCC): a third phase kind
# ----------------------------------------------------------------------

@dataclasses.dataclass
class GibbsOutcome:
    """Result of :func:`run_gibbs_sharded`: the retained-sweep tally
    plus the last sweep's state and the usual telemetry."""

    tally: np.ndarray
    retained: int
    state: np.ndarray
    fit_stats: FitStats


def run_gibbs_sharded(
    runner: SerialShardRunner,
    *,
    n_sweeps: int,
    burn_in: int,
    sample: Callable[[SufficientStats, int], object],
    golden: Mapping[int, float] | None = None,
    initial_state: np.ndarray,
    tally: np.ndarray | None = None,
    retained: int = 0,
    mode: str = "gibbs",
    dirty: int = 0,
) -> GibbsOutcome:
    """Sharded collapsed-Gibbs driver (BCC/CBCC's phase kind).

    Per sweep: map ``accumulate`` over the current per-shard assignment
    blocks and merge (the conditional's sufficient statistics), hand the
    merged totals to the **master-side** ``sample(merged, sweep)``
    closure — which holds the method's generator and draws the global
    parameters (confusion matrices, class prior, community memberships)
    — then map ``e_block`` at the sampled parameters to resample every
    shard's task-assignment block, reassemble and golden-clamp.  Sweeps
    past ``burn_in`` are tallied.

    Keeping every random draw on the master generator makes a run
    **bit-identical to the legacy sampler at one shard** and exactly
    reproducible at any fixed shard count (the shard phases are
    deterministic).  Across *different* shard counts only the float
    merge order of the statistics changes; the last-ulp differences
    steer the rejection samplers onto different (equally valid) draws,
    so multi-shard runs are statistically, not numerically, equivalent
    — the same caveat Gibbs has under any summation-order change.

    *Chain continuation* (the Gibbs delta contract): a delta refit
    passes the cached chain's lifetime ``tally``/``retained`` (grown to
    the current task count by the caller), the restored assignment
    state as ``initial_state``, ``burn_in=0`` (the chain is already
    mixed) and ``mode="delta"``; the continued sweeps keep accumulating
    into the same tally, so the posterior is the running average over
    the whole chain history rather than a fresh window.
    """
    spec = runner.spec
    started = time.perf_counter()
    fit_stats = FitStats(mode=mode, n_shards=runner.n_shards,
                         dirty_shards=dirty)
    ranges = runner.task_ranges
    state = spec.golden_clamp(
        np.array(initial_state, dtype=np.float64), golden)
    tally = (np.zeros_like(state) if tally is None
             else np.array(tally, dtype=np.float64))
    retained = int(retained)
    for sweep in range(n_sweeps):
        fit_stats.active_shards.append(runner.n_shards)
        fit_stats.frozen_shards.append(0)
        stats = runner.call("accumulate",
                            per_shard=_split_blocks_ranges(state, ranges))
        fit_stats.accumulate_calls += runner.n_shards
        parameters = sample(functools.reduce(
            lambda a, b: a.merge(b), stats), sweep)
        state = spec.golden_clamp(np.concatenate(
            runner.call("e_block", shared=(parameters,)), axis=0), golden)
        fit_stats.e_block_calls += runner.n_shards
        if sweep >= burn_in:
            tally += state
            retained += 1
    fit_stats.iterations = n_sweeps
    fit_stats.em_seconds = time.perf_counter() - started
    fit_stats.record_faults(getattr(runner, "fault_events", None))
    return GibbsOutcome(tally=tally, retained=retained, state=state,
                        fit_stats=fit_stats)


def make_runner(answers_or_sharded, spec: ShardedEMSpec, n_shards: int = 1,
                pool=None) -> SerialShardRunner:
    """Convenience: build a :class:`SerialShardRunner` from an
    :class:`~repro.core.answers.AnswerSet` (sharded here) or an existing
    :class:`~repro.core.shards.ShardedAnswerSet`."""
    if isinstance(answers_or_sharded, ShardedAnswerSet):
        sharded = answers_or_sharded
    else:
        sharded = ShardedAnswerSet(answers_or_sharded, n_shards)
    return SerialShardRunner(spec, sharded.shards, pool=pool)
