"""Sharded map-reduce EM: mergeable sufficient statistics over shards.

The generic loop of :func:`repro.inference.em.run_em` closes its two
steps over one global answer array.  This module is the partition-first
re-expression of that loop:

* the **E-step** maps over :class:`~repro.core.shards.AnswerShard`\\ s —
  each shard computes the posterior block of its own task range from its
  own answers (tasks are range-partitioned, so no cross-shard traffic);
* the **M-step** maps ``accumulate(shard, posterior_block)`` over shards
  to produce per-shard :class:`SufficientStats`, reduces them with
  :meth:`SufficientStats.merge` (plain field-wise addition), and calls
  ``finalize`` once on the merged totals to obtain global parameters.

A method participates by providing a :class:`ShardedEMSpec` describing
its statistics; :func:`run_em_sharded` supplies the control flow, warm
starts, golden-task clamping and convergence tracking with exactly the
semantics of :func:`~repro.inference.em.run_em`.  With one shard the
computation reduces to the unsharded math bit-for-bit (the shard is the
original arrays, and the :mod:`~repro.inference.segops` operators
reproduce the scalar kernels' accumulation order exactly); with many
shards only the merge order of worker-side partial sums differs, which
perturbs posteriors at the last-ulp level (~1e-15 per iteration).

Execution is pluggable: :class:`SerialShardRunner` runs shards in the
calling thread or fans them over a thread pool;
:class:`repro.engine.sharded.ProcessShardRunner` runs the same phases in
worker processes over shared-memory answer arrays.
"""

from __future__ import annotations

import abc
import functools
from typing import Callable, Mapping, Sequence

import numpy as np

from ..core.framework import (
    DEFAULT_MAX_ITER,
    DEFAULT_TOLERANCE,
    ConvergenceTracker,
    clamp_golden_posterior,
)
from ..core.shards import AnswerShard, ShardedAnswerSet
from .em import EMOutcome

__all__ = [
    "SufficientStats",
    "ShardedEMSpec",
    "SerialShardRunner",
    "majority_block",
    "make_runner",
    "run_em_sharded",
]


class SufficientStats:
    """A bundle of mergeable M-step accumulators.

    Holds named arrays (or scalars); :meth:`merge` adds field-wise.
    Sufficiency is the method's contract: merging the per-shard bundles
    must yield the same totals the unsharded M-step would compute (up to
    float summation order).
    """

    __slots__ = ("fields",)

    def __init__(self, **fields) -> None:
        self.fields = fields

    def __getitem__(self, name):
        return self.fields[name]

    def merge(self, other: "SufficientStats") -> "SufficientStats":
        """Field-wise sum of two stats bundles (the reduce step)."""
        if set(self.fields) != set(other.fields):
            raise ValueError(
                f"cannot merge stats with fields {sorted(self.fields)} "
                f"and {sorted(other.fields)}"
            )
        return SufficientStats(
            **{k: self.fields[k] + other.fields[k] for k in self.fields}
        )

    def __repr__(self) -> str:
        return f"SufficientStats({', '.join(sorted(self.fields))})"


class ShardedEMSpec(abc.ABC):
    """Method-specific shard computations for :func:`run_em_sharded`.

    Subclasses implement the four phase hooks; every hook receives the
    shard plus the per-shard static operators built (once) by
    :meth:`build_ops`.  Hooks must depend only on their arguments and
    the spec's construction-time configuration, so the same spec can be
    rebuilt inside worker processes.

    ``m_step`` has a default map-reduce implementation over
    ``accumulate``/``merge``/``finalize``; methods whose M-step is
    itself iterative (GLAD's gradient ascent) override it and use the
    runner for their inner map-reduce rounds.
    """

    #: Clamp applied to the assembled global state after every E-step
    #: (and to the initial state): posterior-style by default, numeric
    #: methods override with :func:`clamp_golden_values`.
    golden_clamp = staticmethod(clamp_golden_posterior)

    def __init__(self) -> None:
        self._ops: dict[int, object] = {}

    # -- static per-shard state ----------------------------------------
    def shard_ops(self, shard: AnswerShard):
        """Cached static operators for ``shard`` (built on first use)."""
        ops = self._ops.get(shard.index)
        if ops is None:
            ops = self._ops[shard.index] = self.build_ops(shard)
        return ops

    @abc.abstractmethod
    def build_ops(self, shard: AnswerShard):
        """Build the frozen scatter/reduce operators for one shard."""

    # -- phases --------------------------------------------------------
    @abc.abstractmethod
    def init_block(self, shard: AnswerShard, ops) -> np.ndarray:
        """Cold-start state block for the shard's task range (the
        method's default initialisation, e.g. majority voting)."""

    @abc.abstractmethod
    def accumulate(self, shard: AnswerShard, ops,
                   block: np.ndarray) -> SufficientStats:
        """Map phase of the M-step: this shard's sufficient statistics
        given its current posterior block."""

    @abc.abstractmethod
    def finalize(self, stats: SufficientStats):
        """Reduce epilogue: merged statistics -> global parameters."""

    @abc.abstractmethod
    def e_block(self, shard: AnswerShard, ops, params) -> np.ndarray:
        """E-step for one shard: global parameters -> posterior block
        covering ``[shard.task_start, shard.task_stop)``."""

    # -- control -------------------------------------------------------
    def m_step(self, runner: "SerialShardRunner", blocks: Sequence[np.ndarray],
               prev_params):
        """One M-step: map ``accumulate``, reduce ``merge``, ``finalize``.

        ``prev_params`` is the previous iteration's parameter object
        (``None`` on the first iteration); the default statistics path
        ignores it, iterative M-steps (GLAD) resume from it.
        """
        stats = runner.call("accumulate", per_shard=blocks)
        return self.finalize(functools.reduce(
            lambda a, b: a.merge(b), stats))


class SerialShardRunner:
    """Executes spec phases over in-memory shards, serially or on a
    thread pool.

    The runner is the only component that knows *where* shards run; the
    EM loop and the specs are agnostic.  ``pool`` may be any object with
    an :meth:`~concurrent.futures.Executor.map`-compatible ``map``
    (e.g. a ``ThreadPoolExecutor``); ``None`` runs in the calling
    thread.  NumPy/SciPy hold the GIL through most of these kernels, so
    threads mainly help when shards are large enough for the released
    sections to overlap — the process runner in
    :mod:`repro.engine.sharded` is the true multi-core path.
    """

    def __init__(self, spec: ShardedEMSpec, shards: Sequence[AnswerShard],
                 pool=None) -> None:
        self.spec = spec
        self.shards = list(shards)
        self.pool = pool

    @property
    def n_shards(self) -> int:
        return len(self.shards)

    @property
    def task_ranges(self) -> list[tuple[int, int]]:
        """Global ``(task_start, task_stop)`` of every shard, in order."""
        return [(s.task_start, s.task_stop) for s in self.shards]

    def m_step(self, state: np.ndarray, prev_params=None):
        """Run the spec's M-step on the global state (blocks sliced
        here), returning the new global parameters."""
        return self.spec.m_step(self, _split_blocks_ranges(
            state, self.task_ranges), prev_params)

    def call(self, phase: str, per_shard: Sequence | None = None,
             shared: tuple = ()) -> list:
        """Run ``spec.<phase>(shard, ops, *per_shard[i], *shared)`` for
        every shard, returning results in shard order.

        ``per_shard`` entries may be a tuple of positional arguments or
        a single array (wrapped automatically).
        """
        fn = getattr(self.spec, phase)

        def one(i: int):
            shard = self.shards[i]
            args = ()
            if per_shard is not None:
                entry = per_shard[i]
                args = entry if isinstance(entry, tuple) else (entry,)
            return fn(shard, self.spec.shard_ops(shard), *args, *shared)

        indices = range(self.n_shards)
        if self.pool is not None and self.n_shards > 1:
            return list(self.pool.map(one, indices))
        return [one(i) for i in indices]

    def close(self) -> None:
        """Release executor resources (no-op for the serial runner)."""


def _split_blocks_ranges(state: np.ndarray,
                         ranges: Sequence[tuple[int, int]]
                         ) -> list[np.ndarray]:
    """Slice a global state array into per-shard task-range views."""
    return [state[start:stop] for start, stop in ranges]


def majority_block(shard: AnswerShard) -> np.ndarray:
    """Per-shard majority-vote posterior (normalised local vote counts).

    Vote counts are integral, so per-shard accumulation equals the
    global ``vote_counts`` rows exactly — majority initialisation is
    bit-identical at any shard count.
    """
    from ..core.framework import normalize_rows

    votes = np.bincount(
        shard.local_tasks * shard.n_choices + shard.values,
        minlength=shard.n_local_tasks * shard.n_choices,
    ).astype(np.float64).reshape(shard.n_local_tasks, shard.n_choices)
    return normalize_rows(votes)


def run_em_sharded(
    runner: SerialShardRunner,
    *,
    tolerance: float = DEFAULT_TOLERANCE,
    max_iter: int = DEFAULT_MAX_ITER,
    golden: Mapping[int, float] | None = None,
    initial_posterior: np.ndarray | None = None,
    initial_parameters: object | None = None,
) -> EMOutcome:
    """Sharded analogue of :func:`repro.inference.em.run_em`.

    Per iteration: one ``m_step`` (map ``accumulate`` over shards, merge,
    finalize — or the spec's own inner map-reduce), one mapped E-step,
    reassembly of the global state by concatenating the task-range
    blocks, golden clamping, and a convergence check on the global
    state.  Warm-start semantics mirror ``run_em`` exactly: with
    ``initial_parameters`` the loop opens with a priming E-step that is
    counted as an iteration; ``initial_posterior`` starts the loop
    without counting.  ``initial_parameters`` wins when both are given.
    """
    spec = runner.spec

    def assemble(blocks: list[np.ndarray]) -> np.ndarray:
        state = np.concatenate(blocks, axis=0)
        return spec.golden_clamp(state, golden)

    if initial_parameters is not None:
        state = assemble(runner.call("e_block", shared=(initial_parameters,)))
    elif initial_posterior is not None:
        state = spec.golden_clamp(
            np.array(initial_posterior, dtype=np.float64), golden)
    else:
        state = assemble(runner.call("init_block"))

    tracker = ConvergenceTracker(tolerance=tolerance, max_iter=max_iter)
    # As in run_em, the priming E-step of a warm start is real work:
    # count it so warm and cold iteration totals compare honestly.
    done = initial_parameters is not None and tracker.update(state)
    parameters = initial_parameters
    while not done:
        parameters = runner.m_step(state, parameters)
        state = assemble(runner.call("e_block", shared=(parameters,)))
        if tracker.update(state):
            break
    return EMOutcome(
        posterior=state,
        parameters=parameters,
        n_iterations=tracker.iteration,
        converged=tracker.converged,
    )


def make_runner(answers_or_sharded, spec: ShardedEMSpec, n_shards: int = 1,
                pool=None) -> SerialShardRunner:
    """Convenience: build a :class:`SerialShardRunner` from an
    :class:`~repro.core.answers.AnswerSet` (sharded here) or an existing
    :class:`~repro.core.shards.ShardedAnswerSet`."""
    if isinstance(answers_or_sharded, ShardedAnswerSet):
        sharded = answers_or_sharded
    else:
        sharded = ShardedAnswerSet(answers_or_sharded, n_shards)
    return SerialShardRunner(spec, sharded.shards, pool=pool)
