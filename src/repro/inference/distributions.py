"""Small distribution helpers used by the PGM-based methods.

Centralising these keeps the per-method modules focused on the model
structure rather than numerics: Dirichlet/Beta expectations and samples,
categorical sampling for Gibbs chains, and the chi-square confidence
coefficient CATD scales worker weights with (Section 4.2.4).
"""

from __future__ import annotations

import numpy as np
from scipy import special, stats


def dirichlet_expected_log(alpha: np.ndarray) -> np.ndarray:
    """E[log p] under Dirichlet(alpha), row-wise over the last axis.

    Used by the mean-field updates of VI-MF: for q(p) = Dir(alpha),
    E[log p_k] = digamma(alpha_k) - digamma(sum alpha).
    """
    alpha = np.asarray(alpha, dtype=np.float64)
    return special.digamma(alpha) - special.digamma(
        alpha.sum(axis=-1, keepdims=True)
    )


def beta_expected_log(a: np.ndarray, b: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """(E[log p], E[log (1-p)]) under Beta(a, b), elementwise."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    total = special.digamma(a + b)
    return special.digamma(a) - total, special.digamma(b) - total


def sample_dirichlet_rows(alpha: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """Sample one probability vector per row of ``alpha``.

    Accepts any array whose last axis holds Dirichlet parameters; returns
    samples with the same shape.  Gamma-based so it vectorises.
    """
    alpha = np.asarray(alpha, dtype=np.float64)
    gammas = rng.gamma(shape=np.maximum(alpha, 1e-12))
    sums = gammas.sum(axis=-1, keepdims=True)
    sums = np.where(sums > 0, sums, 1.0)
    return gammas / sums


def sample_categorical_rows(probabilities: np.ndarray,
                            rng: np.random.Generator) -> np.ndarray:
    """Draw one category per row from a (rows, K) probability matrix.

    Vectorised inverse-CDF sampling; the workhorse of the Gibbs chains
    in BCC and CBCC.
    """
    probabilities = np.asarray(probabilities, dtype=np.float64)
    cdf = probabilities.cumsum(axis=1)
    # Guard against rows that do not sum exactly to one.
    cdf /= cdf[:, -1:]
    draws = rng.random((len(probabilities), 1))
    return (draws > cdf).sum(axis=1)


def chi_square_confidence(counts: np.ndarray, confidence: float = 0.975
                          ) -> np.ndarray:
    """CATD's confidence coefficient X^2_(0.975, |T^w|) per worker.

    ``counts`` holds the number of tasks each worker answered.  The
    coefficient grows with the count, scaling up qualities of workers who
    answered many tasks (Section 4.2.4).  Workers with zero answers get
    coefficient 0 (their weight never matters — they answered nothing).
    """
    counts = np.asarray(counts, dtype=np.float64)
    out = np.zeros_like(counts)
    positive = counts > 0
    out[positive] = stats.chi2.ppf(confidence, df=counts[positive])
    return out
