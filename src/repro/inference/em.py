"""Generic Expectation–Maximisation loop.

ZC, GLAD, D&S, LFC and LFC_N all instantiate the same control flow: start
from a truth estimate, alternate an M-step (worker/task parameters from
the current truth posterior) and an E-step (truth posterior from the
parameters), and stop when the posterior stabilises.  This module
implements that control flow once so the method modules only provide the
two steps.

Warm starts
-----------
:func:`run_em` can resume a previous run instead of starting cold.  Two
entry points exist, matching the two halves of the EM state:

* ``initial_posterior`` — a truth posterior to start from (cold fits pass
  normalised vote counts here; warm fits may pass the previous run's
  posterior, expanded with majority-vote rows for newly arrived tasks);
* ``initial_parameters`` — previous model parameters (confusion matrices,
  worker probabilities, …).  When given, the loop opens with an E-step
  from those parameters, so the starting posterior covers *all* current
  tasks automatically — the natural resume path when an answer set has
  grown since the parameters were fitted.

``initial_parameters`` takes precedence when both are supplied.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Mapping

import numpy as np

from ..core.framework import (
    DEFAULT_MAX_ITER,
    DEFAULT_TOLERANCE,
    ConvergenceTracker,
    clamp_golden_posterior,
)
from ..exceptions import InferenceError


@dataclasses.dataclass
class EMOutcome:
    """Result of :func:`run_em`: the final posterior plus diagnostics.

    ``fit_stats`` and ``shard_state`` are filled by the sharded loop
    (:func:`repro.inference.sharded.run_em_sharded`): EM telemetry for
    every fit, and — when a delta plan asked for it — the per-shard
    posterior/statistics cache seeding the next delta refit.
    """

    posterior: np.ndarray
    parameters: object
    n_iterations: int
    converged: bool
    fit_stats: object | None = None
    shard_state: object | None = None


def run_em(
    initial_posterior: np.ndarray | None = None,
    *,
    m_step: Callable[[np.ndarray], object],
    e_step: Callable[[object], np.ndarray],
    tolerance: float = DEFAULT_TOLERANCE,
    max_iter: int = DEFAULT_MAX_ITER,
    golden: Mapping[int, int] | None = None,
    initial_parameters: object | None = None,
) -> EMOutcome:
    """Alternate ``m_step``/``e_step`` until the posterior stabilises.

    Parameters
    ----------
    initial_posterior:
        (n_tasks, n_choices) starting truth estimate (usually normalised
        vote counts).  May be omitted when ``initial_parameters`` is
        given.
    m_step:
        Maps the current posterior to model parameters (any object).
    e_step:
        Maps parameters back to a fresh posterior.
    golden:
        Hidden-test truths clamped into the posterior after every E-step
        *and* into the initial posterior, so the very first M-step
        already benefits from them.
    initial_parameters:
        Previously fitted model parameters to warm-start from.  The loop
        then begins with ``e_step(initial_parameters)`` instead of the
        ``initial_posterior``, which lets a converged model resume on a
        grown answer set in a handful of iterations.
    """
    if initial_parameters is not None:
        posterior = clamp_golden_posterior(
            np.asarray(e_step(initial_parameters), dtype=np.float64), golden
        )
    elif initial_posterior is not None:
        posterior = clamp_golden_posterior(
            np.array(initial_posterior, dtype=np.float64), golden
        )
    else:
        raise InferenceError(
            "run_em needs initial_posterior or initial_parameters"
        )
    tracker = ConvergenceTracker(tolerance=tolerance, max_iter=max_iter)
    # The priming E-step of a warm start is real work: count it as an
    # iteration (and let it seed the convergence baseline) so warm and
    # cold iteration counts compare honestly.
    done = initial_parameters is not None and tracker.update(posterior)
    parameters = initial_parameters if done else None
    while not done:
        parameters = m_step(posterior)
        posterior = clamp_golden_posterior(
            np.asarray(e_step(parameters), dtype=np.float64), golden
        )
        if tracker.update(posterior):
            break
    return EMOutcome(
        posterior=posterior,
        parameters=parameters,
        n_iterations=tracker.iteration,
        converged=tracker.converged,
    )
