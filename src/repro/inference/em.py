"""Generic Expectation–Maximisation loop.

ZC, GLAD, D&S, LFC and LFC_N all instantiate the same control flow: start
from a truth estimate, alternate an M-step (worker/task parameters from
the current truth posterior) and an E-step (truth posterior from the
parameters), and stop when the posterior stabilises.  This module
implements that control flow once so the method modules only provide the
two steps.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Mapping

import numpy as np

from ..core.framework import ConvergenceTracker, clamp_golden_posterior


@dataclasses.dataclass
class EMOutcome:
    """Result of :func:`run_em`: the final posterior plus diagnostics."""

    posterior: np.ndarray
    parameters: object
    n_iterations: int
    converged: bool


def run_em(
    initial_posterior: np.ndarray,
    m_step: Callable[[np.ndarray], object],
    e_step: Callable[[object], np.ndarray],
    tolerance: float,
    max_iter: int,
    golden: Mapping[int, int] | None = None,
) -> EMOutcome:
    """Alternate ``m_step``/``e_step`` until the posterior stabilises.

    Parameters
    ----------
    initial_posterior:
        (n_tasks, n_choices) starting truth estimate (usually normalised
        vote counts).
    m_step:
        Maps the current posterior to model parameters (any object).
    e_step:
        Maps parameters back to a fresh posterior.
    golden:
        Hidden-test truths clamped into the posterior after every E-step
        *and* into the initial posterior, so the very first M-step
        already benefits from them.
    """
    posterior = clamp_golden_posterior(np.array(initial_posterior, dtype=np.float64),
                                       golden)
    tracker = ConvergenceTracker(tolerance=tolerance, max_iter=max_iter)
    parameters = None
    while True:
        parameters = m_step(posterior)
        posterior = clamp_golden_posterior(
            np.asarray(e_step(parameters), dtype=np.float64), golden
        )
        if tracker.update(posterior):
            break
    return EMOutcome(
        posterior=posterior,
        parameters=parameters,
        n_iterations=tracker.iteration,
        converged=tracker.converged,
    )
