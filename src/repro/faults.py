"""Deterministic fault injection and the shared backoff helper.

The fault plane is the chaos counterpart of the PR-9 lease-protocol
verifier: an opt-in hook surface the runtime, store and sources consult
at their failure-prone edges, costing one ``is None`` test when
unarmed.  A :class:`FaultPlan` is a *seeded, counted* script — "kill
worker 1 on its 2nd dispatch", "fail the next sqlite commit", "garble
the 5th line read" — so a chaos test is exactly reproducible: the same
plan over the same stream injects the same faults at the same events.

Arming
------
- In-process: ``arm(plan)`` / ``disarm()``, or pass the plan through
  ``ExecutionPolicy(faults=...)`` so only that policy's fits see it.
- Across a process boundary (subprocess tests, CI chaos runs): set
  ``REPRO_FAULTS`` to the :meth:`FaultPlan.parse` spec, e.g.
  ``REPRO_FAULTS='kill:shard=1,on=2;commit:count=3'``.

Triggers are counted per *matching event*, 1-based: ``on=2,count=3``
fires on the 2nd, 3rd and 4th matching events.  Kill/delay triggers
match dispatch events ``(shard, phase)``; commit and garble triggers
match store commits and line-source reads.

:class:`Backoff` is the one retry/backoff implementation in the tree —
capped exponential with seeded jitter.  Lint rule R007 bans ad-hoc
``time.sleep`` retry loops everywhere else, so every retry path
(dispatch re-tries, sqlite busy commits, tcp reconnects) shares these
delays and stays deterministic under a fixed seed.
"""

from __future__ import annotations

import dataclasses
import os
import random
import time
from typing import Iterable

__all__ = ["Backoff", "FaultPlan", "FaultTrigger", "arm", "disarm",
           "get_plan"]

_ENV_FLAG = "REPRO_FAULTS"

#: Trigger kinds and the event stream each one matches.
KINDS = ("kill", "delay", "commit", "garble")


@dataclasses.dataclass
class FaultTrigger:
    """One scripted fault.

    ``shard``/``phase`` restrict dispatch-event triggers (``kill``,
    ``delay``); ``None`` matches everything.  ``on`` is the 1-based
    index of the first matching event that fires; ``count`` is how many
    consecutive matching events fire after that.  ``seconds`` is the
    delay magnitude for ``delay`` triggers.
    """

    kind: str
    shard: int | None = None
    phase: str | None = None
    on: int = 1
    count: int = 1
    seconds: float = 0.05

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; "
                             f"expected one of {KINDS}")
        if self.on < 1 or self.count < 1:
            raise ValueError("fault trigger on/count are 1-based and "
                             "must be >= 1")

    def matches(self, shard: int | None, phase: str | None) -> bool:
        return ((self.shard is None or self.shard == shard)
                and (self.phase is None or self.phase == phase))


class FaultPlan:
    """A counted script of deterministic faults.

    The plan is consumed by the hook sites (the runtime's dispatch
    loop, the store's commit path, the line sources); each hook asks
    the plan whether the *current* event should fault.  Counters are
    per-trigger, so a plan is single-use per fit — build a fresh one
    (or :meth:`reset`) to replay the same script.
    """

    def __init__(self, triggers: Iterable[FaultTrigger] = ()) -> None:
        self.triggers = list(triggers)
        self._seen = [0] * len(self.triggers)
        #: Fired-fault counters by kind, for tests and FitStats.
        self.fired: dict[str, int] = {kind: 0 for kind in KINDS}
        #: Chronological ledger of fired faults (kind, event detail).
        self.log: list[tuple[str, tuple]] = []

    # -- construction --------------------------------------------------
    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Parse the ``REPRO_FAULTS`` spec string.

        Format: ``;``-separated triggers, each
        ``kind[:key=value,...]`` — e.g.
        ``'kill:shard=1,on=2;delay:phase=e_block,seconds=0.5;commit'``.
        """
        triggers = []
        for chunk in spec.split(";"):
            chunk = chunk.strip()
            if not chunk:
                continue
            kind, _, rest = chunk.partition(":")
            kwargs: dict = {}
            for pair in filter(None, rest.split(",")):
                key, sep, value = pair.partition("=")
                if not sep:
                    raise ValueError(
                        f"malformed fault spec field {pair!r} in "
                        f"{chunk!r} (expected key=value)")
                key = key.strip()
                if key == "seconds":
                    kwargs[key] = float(value)
                elif key in ("shard", "on", "count"):
                    kwargs[key] = int(value)
                else:
                    kwargs[key] = value.strip()
            triggers.append(FaultTrigger(kind=kind.strip(), **kwargs))
        return cls(triggers)

    def reset(self) -> None:
        """Rewind every trigger counter (replay the same script)."""
        self._seen = [0] * len(self.triggers)
        self.fired = {kind: 0 for kind in KINDS}
        self.log = []

    # -- hook sites ----------------------------------------------------
    def _fire(self, kinds: tuple[str, ...], shard: int | None,
              phase: str | None, detail: tuple) -> FaultTrigger | None:
        """Count this event against matching triggers; return the first
        trigger whose firing window covers it."""
        hit = None
        for i, trigger in enumerate(self.triggers):
            if trigger.kind not in kinds:
                continue
            if not trigger.matches(shard, phase):
                continue
            self._seen[i] += 1
            n = self._seen[i]
            if hit is None and trigger.on <= n < trigger.on + trigger.count:
                hit = trigger
        if hit is not None:
            self.fired[hit.kind] += 1
            self.log.append((hit.kind, detail))
        return hit

    def on_dispatch(self, shard: int, phase: str) -> tuple | None:
        """Consult kill/delay triggers for one phase dispatch.

        Returns ``None`` (no fault), ``("kill",)`` — SIGKILL the
        worker before this dispatch — or ``("delay", seconds)`` —
        stall the worker's reply by that long.
        """
        hit = self._fire(("kill", "delay"), shard, phase, (shard, phase))
        if hit is None:
            return None
        if hit.kind == "kill":
            return ("kill",)
        return ("delay", hit.seconds)

    def on_commit(self) -> bool:
        """``True`` when the next store commit should fail locked."""
        return self._fire(("commit",), None, None, ()) is not None

    def on_source_line(self) -> bool:
        """``True`` when the next line-source read should be garbled."""
        return self._fire(("garble",), None, None, ()) is not None

    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        return f"FaultPlan({self.triggers!r})"


class Backoff:
    """Capped exponential backoff with seeded jitter.

    The one sanctioned retry-delay implementation (lint rule R007):
    ``delay(attempt)`` for attempt 0, 1, 2, ... is
    ``min(cap, base * 2**attempt)`` scaled by a jitter factor drawn
    from a seeded :class:`random.Random` — deterministic per seed, so
    chaos tests and recovery timings replay exactly.
    """

    def __init__(self, base: float = 0.05, cap: float = 2.0,
                 seed: int = 0) -> None:
        if base < 0 or cap < 0:
            raise ValueError("backoff base/cap must be >= 0")
        self.base = base
        self.cap = cap
        self._rng = random.Random(seed)

    def delay(self, attempt: int) -> float:
        """Jittered delay for the given 0-based attempt number."""
        raw = min(self.cap, self.base * (2.0 ** attempt))
        return raw * (0.5 + 0.5 * self._rng.random())

    def sleep(self, attempt: int) -> float:
        """Sleep for :meth:`delay`, returning the slept duration."""
        # checks: allow-adhoc-retry(this is the shared backoff helper
        # every retry loop is required to route through)
        duration = self.delay(attempt)
        if duration > 0.0:
            time.sleep(duration)
        return duration


_PLAN: FaultPlan | None = None
_ENV_PARSED = False


def arm(plan: FaultPlan | None) -> None:
    """Arm ``plan`` process-wide (``None`` disarms)."""
    global _PLAN, _ENV_PARSED
    _PLAN = plan
    _ENV_PARSED = True


def disarm() -> None:
    """Disarm the process-wide plan (env spec stays consumed)."""
    arm(None)


def get_plan() -> FaultPlan | None:
    """The armed plan, or ``None`` when the plane is cold.

    ``REPRO_FAULTS`` is parsed lazily on the first call so subprocess
    tests can arm workers through the environment; an explicit
    :func:`arm`/:func:`disarm` takes precedence over the env spec.
    """
    global _PLAN, _ENV_PARSED
    if not _ENV_PARSED:
        _ENV_PARSED = True
        spec = os.environ.get(_ENV_FLAG, "")
        if spec:
            _PLAN = FaultPlan.parse(spec)
    return _PLAN
