"""Repo-native static analysis: the ``repro check`` subsystem.

Three layers, one CLI gate:

- :mod:`repro.checks.lint` — an AST-walking rule engine enforcing the
  repo-specific invariants (rules R001-R007 in
  :mod:`repro.checks.rules`) over the source tree, with a per-line
  pragma escape hatch (``# checks: allow-<slug>(reason)``).
- :mod:`repro.checks.contracts` — cross-checks every registry method's
  declared :class:`~repro.core.registry.Capabilities` against what its
  implementation actually supports, so the capability table is a
  derived artifact instead of a parallel truth.
- :mod:`repro.checks.protocol` — opt-in (``REPRO_CHECKS=1``) debug
  instrumentation of the persistent shard runtime: a lease state
  machine plus segment/pool leak ledgers.

Named ``checks`` (not ``analysis``) because ``repro.analysis`` is the
worker-quality analytics package.
"""

from .findings import Finding
from .lint import LintReport, run_lint
from .contracts import check_contracts, derive_capabilities, derived_table

__all__ = [
    "Finding",
    "LintReport",
    "run_lint",
    "check_contracts",
    "derive_capabilities",
    "derived_table",
]
