"""Lease-protocol verifier: opt-in runtime instrumentation.

Set ``REPRO_CHECKS=1`` and the persistent shard runtime
(:mod:`repro.engine.runtime`) reports its lifecycle events here; the
verifier enforces the lease state machine and keeps leak ledgers:

- **Lease legality** — acquire → dispatch* → release.  Dispatching
  without the live lease, releasing a lease twice, or a second lease
  appearing while one is live on the same runtime raise
  :class:`~repro.exceptions.ProtocolError` at the violation site.
- **Leak ledgers** — every ``/dev/shm`` segment, worker pool and lease
  is recorded on creation and crossed off on release;
  :meth:`LeaseProtocolVerifier.assert_clean` fails if anything is
  outstanding (the pytest session gate under ``REPRO_CHECKS=1``).
- **Lock discipline** — runtime lease-lock holds are timed, and
  acquiring the registry lock while holding a runtime lock raises
  (the fabric's lock order is registry → runtime; the reverse is a
  deadlock waiting for contention).

The verifier observes the *master* process only: worker-side segment
attachments are guarded by their own atexit detach hooks.
Master-process overhead when disabled is one ``is None`` test per
event.
"""

from __future__ import annotations

import dataclasses
import os
import threading
import time

from ..exceptions import ProtocolError

_ENV_FLAG = "REPRO_CHECKS"


def enabled() -> bool:
    """Whether ``REPRO_CHECKS=1`` opts the process in."""
    return os.environ.get(_ENV_FLAG, "") == "1"


@dataclasses.dataclass
class LockHold:
    """One completed runtime lease-lock hold (the contention ledger)."""

    name: str
    key: int
    held_seconds: float


class _ThreadHeldLocks(threading.local):
    """Per-thread stack of held lock names (the ordering assertion)."""

    def __init__(self) -> None:
        self.stack: list[tuple[str, int]] = []


class LeaseProtocolVerifier:
    """State machine + ledgers for the runtime lease protocol.

    Thread-safe: every transition runs under one internal mutex, so
    ledgers stay consistent when fits lease from a thread pool.
    """

    def __init__(self) -> None:
        self._mutex = threading.Lock()
        #: segment name -> creation timestamp.
        self.segments: dict[str, float] = {}
        #: pool key -> creation timestamp.
        self.pools: dict[int, float] = {}
        #: runtime key -> {"lease": lease key, "since": t, "dispatches": n}.
        self.leases: dict[int, dict] = {}
        #: (lock name, key) -> (thread id, acquire timestamp).
        self.held_locks: dict[tuple[str, int], tuple[int, float]] = {}
        #: Completed holds, for hold-time assertions in tests/benchmarks.
        self.lock_holds: list[LockHold] = []
        self._thread_held = _ThreadHeldLocks()
        #: Fault-recovery event counters (respawn/retry/degrade), for
        #: chaos-test assertions.
        self.respawn_count = 0
        self.retry_count = 0
        self.degrade_count = 0

    # -- segments ------------------------------------------------------
    def segment_created(self, name: str) -> None:
        with self._mutex:
            if name in self.segments:
                raise ProtocolError(
                    f"segment {name!r} created twice without release")
            self.segments[name] = time.monotonic()

    def segment_released(self, name: str) -> None:
        with self._mutex:
            if name not in self.segments:
                raise ProtocolError(
                    f"segment {name!r} released twice (or never created)")
            del self.segments[name]

    # -- pools ---------------------------------------------------------
    def pool_spawned(self, key: int) -> None:
        with self._mutex:
            self.pools[key] = time.monotonic()

    def pool_shutdown(self, key: int) -> None:
        with self._mutex:
            if key not in self.pools:
                raise ProtocolError(
                    f"pool {key} shut down twice (or never spawned)")
            del self.pools[key]

    def pool_respawned(self, old_key: int, new_key: int) -> None:
        """A dead/hung pool was replaced: cross the old one off the
        ledger and record its replacement atomically (respawn is a
        single recovery event, not an unmatched shutdown + spawn)."""
        with self._mutex:
            if old_key not in self.pools:
                raise ProtocolError(
                    f"pool {old_key} respawned but was never spawned "
                    f"(or already shut down)")
            del self.pools[old_key]
            self.pools[new_key] = time.monotonic()
            self.respawn_count += 1

    # -- leases --------------------------------------------------------
    def lease_acquired(self, runtime_key: int, lease_key: int) -> None:
        with self._mutex:
            live = self.leases.get(runtime_key)
            if live is not None:
                raise ProtocolError(
                    f"runtime {runtime_key} handed out a second lease "
                    f"while one is live (leases are exclusive)")
            self.leases[runtime_key] = {
                "lease": lease_key,
                "since": time.monotonic(),
                "dispatches": 0,
            }

    def lease_dispatch(self, runtime_key: int, lease_key: int) -> None:
        with self._mutex:
            live = self.leases.get(runtime_key)
            if live is None:
                raise ProtocolError(
                    f"phase dispatched on runtime {runtime_key} with "
                    f"no live lease")
            if live["lease"] != lease_key:
                raise ProtocolError(
                    f"phase dispatched on runtime {runtime_key} by a "
                    f"stale lease (not the current holder)")
            live["dispatches"] += 1

    def _live_lease(self, runtime_key: int, lease_key: int,
                    event: str) -> dict:
        """The live lease entry, or a :class:`ProtocolError` — recovery
        events are only legal while the recovering fit holds the lease."""
        live = self.leases.get(runtime_key)
        if live is None:
            raise ProtocolError(
                f"{event} on runtime {runtime_key} with no live lease")
        if live["lease"] != lease_key:
            raise ProtocolError(
                f"{event} on runtime {runtime_key} by a stale lease "
                f"(not the current holder)")
        return live

    def phase_retry(self, runtime_key: int, lease_key: int) -> None:
        """A failed phase dispatch is being re-tried under a respawned
        pool (legal only under the live lease)."""
        with self._mutex:
            live = self._live_lease(runtime_key, lease_key, "phase retry")
            live["retries"] = live.get("retries", 0) + 1
            self.retry_count += 1

    def phase_degraded(self, runtime_key: int, lease_key: int,
                       shard: int) -> None:
        """A shard's phase degraded to the master's serial path after
        the retry budget (legal only under the live lease)."""
        with self._mutex:
            live = self._live_lease(runtime_key, lease_key,
                                    f"degraded shard {shard} phase")
            live["degraded"] = live.get("degraded", 0) + 1
            self.degrade_count += 1

    def lease_released(self, runtime_key: int) -> None:
        with self._mutex:
            if runtime_key not in self.leases:
                raise ProtocolError(
                    f"lease on runtime {runtime_key} released twice "
                    f"(or never acquired)")
            del self.leases[runtime_key]

    # -- locks ---------------------------------------------------------
    def lock_acquired(self, name: str, key: int) -> None:
        stack = self._thread_held.stack
        if name == "registry" and any(n == "runtime" for n, _ in stack):
            raise ProtocolError(
                "registry lock acquired while holding a runtime lock; "
                "the lock order is registry -> runtime")
        stack.append((name, key))
        with self._mutex:
            self.held_locks[(name, key)] = (
                threading.get_ident(), time.monotonic())

    def lock_released(self, name: str, key: int) -> None:
        stack = self._thread_held.stack
        if (name, key) in stack:
            stack.remove((name, key))
        with self._mutex:
            held = self.held_locks.pop((name, key), None)
            if held is not None:
                self.lock_holds.append(LockHold(
                    name=name, key=key,
                    held_seconds=time.monotonic() - held[1]))

    def registry_checkpoint(self) -> None:
        """Ordering assertion for the registry-lock acquisition path
        (the registry uses ``with``-scoped locks, so only the order is
        checked, not the hold)."""
        if any(n == "runtime" for n, _ in self._thread_held.stack):
            raise ProtocolError(
                "registry lock acquired while holding a runtime lock; "
                "the lock order is registry -> runtime")

    # -- reporting -----------------------------------------------------
    def outstanding(self) -> dict:
        """Snapshot of everything still live (the leak ledgers)."""
        with self._mutex:
            return {
                "segments": sorted(self.segments),
                "pools": sorted(self.pools),
                "leases": sorted(self.leases),
                "locks": sorted(self.held_locks),
            }

    def max_lock_hold(self) -> float:
        """Longest completed runtime-lock hold in seconds."""
        with self._mutex:
            return max((h.held_seconds for h in self.lock_holds),
                       default=0.0)

    def report(self) -> str:
        out = self.outstanding()
        lines = [f"lease-protocol ledger: "
                 f"{len(out['segments'])} segments, "
                 f"{len(out['pools'])} pools, "
                 f"{len(out['leases'])} leases, "
                 f"{len(out['locks'])} locks outstanding"]
        for kind in ("segments", "pools", "leases", "locks"):
            for item in out[kind]:
                lines.append(f"  leaked {kind[:-1]}: {item}")
        return "\n".join(lines)

    def assert_clean(self) -> None:
        """Raise :class:`ProtocolError` unless every ledger is empty."""
        out = self.outstanding()
        if any(out.values()):
            raise ProtocolError(self.report())


_VERIFIER: LeaseProtocolVerifier | None = None
_VERIFIER_LOCK = threading.Lock()


def get_verifier() -> LeaseProtocolVerifier | None:
    """The process-wide verifier, or ``None`` unless ``REPRO_CHECKS=1``."""
    global _VERIFIER
    if not enabled():
        return None
    with _VERIFIER_LOCK:
        if _VERIFIER is None:
            _VERIFIER = LeaseProtocolVerifier()
        return _VERIFIER
