"""The unit of static-analysis output shared by every check layer."""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass(frozen=True)
class Finding:
    """One rule violation at one source location.

    ``path`` is relative to the linted root (``engine/runtime.py``),
    so findings are stable across checkouts; contract findings use the
    pseudo-path ``<registry>`` since they concern classes, not lines.
    """

    rule: str
    path: str
    line: int
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.rule} {self.message}"
