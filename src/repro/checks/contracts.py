"""Capability contract checker: declared ``Capabilities`` vs reality.

Every registry method declares ``supports_*`` ClassVars that
:class:`~repro.core.registry.Capabilities` mirrors.  This module
derives what each class *actually* supports from its implementation
and cross-checks the declaration, so the capability table is a derived
artifact instead of a hand-maintained parallel truth:

- ``warm_start`` / ``seed_posterior`` / ``sharding`` — the base class
  forwards the keyword exactly when the flag is set, so ``_fit`` must
  accept ``warm_start`` / ``seed_posterior`` / ``shard_runner``.
- ``sharding`` additionally requires the sharded-spec hook: the class
  must override
  :meth:`~repro.core.base.TruthInferenceMethod.make_em_spec`.
- ``golden`` / ``initial_quality`` — ``_fit`` always receives both
  (masked to ``None`` when the flag is off), so an honest flag means
  the body actually *reads* the parameter.
- ``delta`` — the delta-refit keyword is forwarded to every sharding
  method, so ``delta=True`` means sharding plus a body that reads it.

``task_types`` and ``is_extension`` are declarations of paper
semantics with no implementation signal to check; they pass through.
"""

from __future__ import annotations

import ast
import inspect
import textwrap
from typing import TYPE_CHECKING, Any, Iterable

from .findings import Finding

if TYPE_CHECKING:
    from ..core.registry import Capabilities

#: Declared-but-unread flags that are documented, deliberate debt.
#: Keyed ``(method name, capability field)``; the declaration wins.
KNOWN_EXEMPTIONS = {
    ("LFC_N", "initial_quality"):
        "documented in lfc.py: initial_quality is accepted but has "
        "never influenced the numeric fit",
}

#: Capability field -> `_fit` parameter the base class forwards for it.
_SIGNATURE_FLAGS = {
    "warm_start": "warm_start",
    "seed_posterior": "seed_posterior",
    "sharding": "shard_runner",
}

#: Capability field -> `_fit` parameter whose *body read* backs it.
_BODY_FLAGS = {
    "golden": "golden",
    "initial_quality": "initial_quality",
}


def _fit_params(cls: Any) -> tuple[frozenset, bool]:
    params = inspect.signature(cls._fit).parameters
    accepts_kwargs = any(p.kind is inspect.Parameter.VAR_KEYWORD
                         for p in params.values())
    return frozenset(params), accepts_kwargs


def _fit_body(cls: Any) -> list[ast.stmt]:
    source = textwrap.dedent(inspect.getsource(cls._fit))
    func = ast.parse(source).body[0]
    assert isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef))
    return func.body


def _body_reads(cls: Any, name: str) -> bool:
    """Whether the resolved ``_fit`` body loads ``name`` anywhere
    (direct reads and forwarding both count; ``kwargs.get("name")``
    style reads are caught via the string constant)."""
    for stmt in _fit_body(cls):
        for node in ast.walk(stmt):
            if (isinstance(node, ast.Name) and node.id == name
                    and isinstance(node.ctx, ast.Load)):
                return True
            if isinstance(node, ast.Constant) and node.value == name:
                return True
    return False


def _overrides_em_spec(cls: Any) -> bool:
    from ..core.base import TruthInferenceMethod

    return cls.make_em_spec is not TruthInferenceMethod.make_em_spec


def _derive_flags(name: str, cls: Any) -> dict[str, bool]:
    params, accepts_kwargs = _fit_params(cls)
    derived: dict[str, bool] = {}
    for field, parameter in _SIGNATURE_FLAGS.items():
        derived[field] = parameter in params or accepts_kwargs
    # The spec hook is the second half of the sharding contract; a
    # `shard_runner` parameter without it can never run a phase.
    derived["sharding"] = derived["sharding"] and _overrides_em_spec(cls)
    for field, parameter in _BODY_FLAGS.items():
        derived[field] = _body_reads(cls, parameter)
    derived["delta"] = derived["sharding"] and _body_reads(cls, "delta")
    for (exempt_name, field), _reason in KNOWN_EXEMPTIONS.items():
        if exempt_name == name:
            derived[field] = bool(getattr(cls, f"supports_{field}"))
    return derived


def derive_capabilities(name: str) -> "Capabilities":
    """The :class:`~repro.core.registry.Capabilities` the
    implementation itself implies (``task_types`` / ``is_extension``
    carried over from the declaration — they are paper semantics, not
    implementation facts)."""
    from ..core.registry import Capabilities, method_class

    cls = method_class(name)
    declared = Capabilities.of(cls)
    return Capabilities(
        task_types=declared.task_types,
        is_extension=declared.is_extension,
        **_derive_flags(name, cls),
    )


def derived_table() -> dict:
    """``{method name: derived Capabilities}`` for the whole registry."""
    from ..core.registry import available_methods

    return {name: derive_capabilities(name)
            for name in available_methods()}


def check_contracts(names: Iterable[str] | None = None) -> list[Finding]:
    """Findings for every declared/derived capability mismatch.

    Declarations are read off the classes (not the registry's frozen
    cache), so a drifted ClassVar is caught even mid-process.
    """
    from ..core.registry import Capabilities, available_methods, method_class

    findings = []
    for name in sorted(names if names is not None else available_methods()):
        cls = method_class(name)
        declared = Capabilities.of(cls)
        derived = _derive_flags(name, cls)
        for field, implied in sorted(derived.items()):
            stated = getattr(declared, field)
            if stated == implied:
                continue
            findings.append(Finding(
                rule="C001", path="<registry>", line=0,
                message=(
                    f"{name}: declared Capabilities.{field}={stated} "
                    f"but the implementation implies {implied} "
                    f"(class {cls.__name__})"
                ),
            ))
    return findings
