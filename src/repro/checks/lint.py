"""AST-walking rule engine behind ``repro check``.

The engine parses every ``*.py`` file under a root, hands each to the
registered rules (:data:`repro.checks.rules.ALL_RULES`) and filters the
raw findings through the pragma escape hatch::

    risky_call()  # checks: allow-broad-except(worker teardown is best-effort)

A pragma suppresses matching findings on its own line or the line
directly below it (so it can sit above a multi-line statement).  The
reason string is mandatory under ``--strict``: a reasonless pragma
still suppresses, but is reported separately so CI can reject it.
"""

from __future__ import annotations

import ast
import dataclasses
import re
from pathlib import Path
from typing import Iterable, Sequence

from .findings import Finding

#: ``# checks: allow-<slug>(reason)`` — the only suppression syntax.
PRAGMA_RE = re.compile(r"#\s*checks:\s*allow-([a-z0-9-]+)\(([^()]*)\)")


@dataclasses.dataclass(frozen=True)
class Pragma:
    """One parsed suppression comment."""

    slug: str
    reason: str
    line: int

    @property
    def has_reason(self) -> bool:
        return bool(self.reason.strip())


@dataclasses.dataclass
class SourceFile:
    """A parsed source file as the rules see it.

    ``rel`` is the path relative to the linted root with ``/``
    separators — the path-scoped rules (crash paths, capability
    probes) key off it.
    """

    path: Path
    rel: str
    text: str
    tree: ast.Module
    pragmas: list[Pragma]

    @classmethod
    def load(cls, path: Path, rel: str) -> "SourceFile":
        text = path.read_text()
        pragmas = [
            Pragma(slug=m.group(1), reason=m.group(2), line=lineno)
            for lineno, line in enumerate(text.splitlines(), start=1)
            for m in PRAGMA_RE.finditer(line)
        ]
        return cls(path=path, rel=rel, text=text,
                   tree=ast.parse(text, filename=str(path)),
                   pragmas=pragmas)

    def parent_map(self) -> dict[ast.AST, ast.AST]:
        """Child -> parent links for ancestry-sensitive rules."""
        parents: dict[ast.AST, ast.AST] = {}
        for node in ast.walk(self.tree):
            for child in ast.iter_child_nodes(node):
                parents[child] = node
        return parents


@dataclasses.dataclass
class LintReport:
    """Everything ``repro check`` needs to render and gate on."""

    findings: list[Finding]
    suppressed: list[tuple[Finding, Pragma]]
    reasonless: list[tuple[str, Pragma]]

    def ok(self, strict: bool = False) -> bool:
        if self.findings:
            return False
        return not (strict and self.reasonless)


def iter_source_files(root: Path) -> list[SourceFile]:
    """All parseable ``*.py`` files under ``root``, sorted by path."""
    files = []
    for path in sorted(root.rglob("*.py")):
        rel = path.relative_to(root).as_posix()
        files.append(SourceFile.load(path, rel))
    return files


def lint_file(src: SourceFile, rules: Sequence) -> list[Finding]:
    """Raw findings for one file, before pragma filtering."""
    findings: list[Finding] = []
    for rule in rules:
        findings.extend(rule.check(src))
    return sorted(findings, key=lambda f: (f.line, f.rule))


def _apply_pragmas(
    src: SourceFile, findings: Iterable[Finding],
) -> tuple[list[Finding], list[tuple[Finding, Pragma]]]:
    by_slot = {}
    for pragma in src.pragmas:
        # A pragma covers its own line and the line below it.
        by_slot.setdefault((pragma.slug, pragma.line), pragma)
        by_slot.setdefault((pragma.slug, pragma.line + 1), pragma)
    from .rules import slug_of

    kept, suppressed = [], []
    for finding in findings:
        pragma = by_slot.get((slug_of(finding.rule), finding.line))
        if pragma is not None:
            suppressed.append((finding, pragma))
        else:
            kept.append(finding)
    return kept, suppressed


def run_lint(root: Path, rules: Sequence | None = None) -> LintReport:
    """Lint every source file under ``root`` with ``rules``.

    ``root`` is the package directory (``src/repro``); findings carry
    paths relative to it.
    """
    if rules is None:
        from .rules import ALL_RULES

        rules = ALL_RULES
    findings: list[Finding] = []
    suppressed: list[tuple[Finding, Pragma]] = []
    reasonless: list[tuple[str, Pragma]] = []
    for src in iter_source_files(Path(root)):
        kept, quiet = _apply_pragmas(src, lint_file(src, rules))
        findings.extend(kept)
        suppressed.extend(quiet)
        reasonless.extend(
            (src.rel, pragma)
            for pragma in src.pragmas if not pragma.has_reason
        )
    return LintReport(findings=findings, suppressed=suppressed,
                      reasonless=reasonless)
