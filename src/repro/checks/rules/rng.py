"""R001 — no global-state ``np.random.*`` calls.

Reproducibility runs through explicit generators
(``np.random.default_rng(seed)`` threaded from method constructors);
one ``np.random.seed()`` or legacy module-level draw anywhere would
couple fits through hidden global state and break the bit-identity
contracts (delta vs full refits, shard-count invariance).
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import Finding
from ..lint import SourceFile

#: Constructors of *explicit* state, allowed everywhere.
ALLOWED = frozenset({
    "default_rng", "Generator", "SeedSequence", "BitGenerator",
    "PCG64", "PCG64DXSM", "Philox", "SFC64", "MT19937",
})

_NUMPY_NAMES = frozenset({"np", "numpy"})


def _np_random_member(node: ast.AST) -> str | None:
    """``"x"`` when ``node`` is ``np.random.x`` / ``numpy.random.x``."""
    if not isinstance(node, ast.Attribute):
        return None
    value = node.value
    if (isinstance(value, ast.Attribute) and value.attr == "random"
            and isinstance(value.value, ast.Name)
            and value.value.id in _NUMPY_NAMES):
        return node.attr
    return None


class GlobalRngRule:
    id = "R001"
    slug = "global-rng"
    description = ("np.random.* global-state calls are banned; use "
                   "np.random.default_rng / Generator / SeedSequence")

    def check(self, src: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(src.tree):
            member = None
            if isinstance(node, ast.Call):
                member = _np_random_member(node.func)
            if member is not None and member not in ALLOWED:
                yield Finding(
                    rule=self.id, path=src.rel, line=node.lineno,
                    message=(f"np.random.{member}() uses the global "
                             f"RNG; thread an explicit "
                             f"np.random.default_rng(seed) instead"),
                )
            if (isinstance(node, ast.ImportFrom)
                    and node.module == "numpy.random"):
                for alias in node.names:
                    if alias.name not in ALLOWED:
                        yield Finding(
                            rule=self.id, path=src.rel, line=node.lineno,
                            message=(f"importing {alias.name!r} from "
                                     f"numpy.random exposes the global "
                                     f"RNG; import an explicit "
                                     f"generator constructor instead"),
                        )
