"""R005 — no silently-swallowing broad excepts.

``except Exception: pass`` hides worker crashes, torn-down pools and
corrupted WAL replays behind a green run.  A broad handler is allowed
only when it re-raises, logs/warns, or carries an explicit
``# checks: allow-broad-except(reason)`` pragma.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import Finding
from ..lint import SourceFile

_BROAD = frozenset({"Exception", "BaseException"})

#: Call names that count as surfacing the failure.
_LOGGISH = frozenset({
    "warn", "warning", "error", "exception", "critical", "log", "print",
})


def _is_broad(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:
        return True
    nodes = (handler.type.elts if isinstance(handler.type, ast.Tuple)
             else [handler.type])
    return any(isinstance(n, ast.Name) and n.id in _BROAD for n in nodes)


def _surfaces(handler: ast.ExceptHandler) -> bool:
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            return True
        if isinstance(node, ast.Call):
            func = node.func
            name = (func.id if isinstance(func, ast.Name)
                    else func.attr if isinstance(func, ast.Attribute)
                    else None)
            if name in _LOGGISH:
                return True
    return False


class BroadExceptRule:
    id = "R005"
    slug = "broad-except"
    description = ("broad 'except Exception' / bare except must "
                   "re-raise or log, or carry "
                   "# checks: allow-broad-except(reason)")

    def check(self, src: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if _is_broad(node) and not _surfaces(node):
                caught = ("bare except" if node.type is None
                          else "except Exception")
                yield Finding(
                    rule=self.id, path=src.rel, line=node.lineno,
                    message=(f"{caught} swallows the failure; "
                             f"re-raise, log it, or add "
                             f"# checks: allow-broad-except(reason)"),
                )
