"""R007 — no ad-hoc ``time.sleep`` retry loops.

Every retry/backoff sleep in the tree routes through
:class:`repro.faults.Backoff`: capped exponential delays with seeded
jitter, one implementation, one place to tune.  A bare ``time.sleep``
inside a loop is an ad-hoc retry — unjittered (thundering-herd under
contention), unbounded or arbitrarily bounded, and invisible to the
fault-injection plane.  ``repro/faults.py`` itself is exempt: it is
where the sanctioned sleep lives.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import Finding
from ..lint import SourceFile

#: The one file allowed to call ``time.sleep`` in a loop.
EXEMPT_FILES = frozenset({"faults.py"})

_LOOPS = (ast.While, ast.For, ast.AsyncFor)


def _is_sleep_call(node: ast.Call) -> bool:
    """``time.sleep(...)`` or a bare ``sleep(...)`` from ``time``."""
    func = node.func
    if (isinstance(func, ast.Attribute) and func.attr == "sleep"
            and isinstance(func.value, ast.Name)
            and func.value.id == "time"):
        return True
    return isinstance(func, ast.Name) and func.id == "sleep"


def _imports_time_sleep(tree: ast.Module) -> bool:
    """Whether ``from time import sleep`` aliases the bare name."""
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module == "time":
            if any(alias.name == "sleep" for alias in node.names):
                return True
    return False


class AdhocRetryRule:
    id = "R007"
    slug = "adhoc-retry"
    description = ("time.sleep inside a loop is an ad-hoc retry; "
                   "route backoff through repro.faults.Backoff")

    def check(self, src: SourceFile) -> Iterator[Finding]:
        if src.rel in EXEMPT_FILES:
            return
        bare_sleep = _imports_time_sleep(src.tree)
        parents = None
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.Call) or not _is_sleep_call(node):
                continue
            if (isinstance(node.func, ast.Name)
                    and not bare_sleep):
                continue  # some other local sleep(), not time's
            if parents is None:
                parents = src.parent_map()
            ancestor = parents.get(node)
            in_loop = False
            while ancestor is not None:
                if isinstance(ancestor, _LOOPS):
                    in_loop = True
                    break
                if isinstance(ancestor, (ast.FunctionDef,
                                         ast.AsyncFunctionDef)):
                    break  # a loop outside the def is not this sleep's
                ancestor = parents.get(ancestor)
            if in_loop:
                yield Finding(
                    rule=self.id, path=src.rel, line=node.lineno,
                    message=("time.sleep in a loop is an ad-hoc retry; "
                             "use repro.faults.Backoff.sleep(attempt) "
                             "for capped, jittered, seeded backoff"),
                )
