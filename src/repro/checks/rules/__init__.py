"""The repo-specific lint rules (R001-R007).

Each rule is a small object with an ``id`` (``"R001"``), a pragma
``slug`` (``"global-rng"`` — suppressed via
``# checks: allow-global-rng(reason)``), a one-line ``description``
and a ``check(src)`` generator yielding
:class:`~repro.checks.findings.Finding`.
"""

from .rng import GlobalRngRule
from .crash_paths import TypedCrashPathRule
from .probes import CapabilityProbeRule
from .lifecycle import PairedLifecycleRule
from .broad_except import BroadExceptRule
from .legacy_kwargs import LegacyKwargRule
from .retry import AdhocRetryRule

#: Registry order == report order.
ALL_RULES = (
    GlobalRngRule(),
    TypedCrashPathRule(),
    CapabilityProbeRule(),
    PairedLifecycleRule(),
    BroadExceptRule(),
    LegacyKwargRule(),
    AdhocRetryRule(),
)

_SLUGS = {rule.id: rule.slug for rule in ALL_RULES}


def slug_of(rule_id: str) -> str:
    """The pragma slug for a rule id (id itself if unknown)."""
    return _SLUGS.get(rule_id, rule_id)


__all__ = [
    "ALL_RULES",
    "slug_of",
    "GlobalRngRule",
    "TypedCrashPathRule",
    "CapabilityProbeRule",
    "PairedLifecycleRule",
    "BroadExceptRule",
    "LegacyKwargRule",
    "AdhocRetryRule",
]
