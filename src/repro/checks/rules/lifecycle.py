"""R004 — SharedMemory / pool / sqlite3 acquisitions are paired with a
release.

A ``SharedMemory`` segment outlives the process unless unlinked; a
``ProcessPoolExecutor`` left running leaks children; an open sqlite
connection pins the WAL.  Every acquisition must therefore sit in one
of the shapes teardown can reach:

- a ``with`` block (context manager owns the release),
- a function whose ``try``/``finally`` calls a release method,
- a function that registers an ``atexit`` hook,
- a class that exposes a release method (``close`` / ``release`` /
  ``shutdown`` / ``terminate`` / ``_teardown`` / ``__exit__`` /
  ``__del__`` / ``stop``) — the runtime/store idiom, where
  ``close()`` walks the acquired handles.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import Finding
from ..lint import SourceFile

#: Callables whose return value is an acquired resource.
_ACQUIRERS = frozenset({
    "SharedMemory", "ProcessPoolExecutor", "ThreadPoolExecutor", "Pool",
})

#: ``module.attr`` acquisitions (checked on the attribute chain).
_ATTR_ACQUIRERS = {
    ("sqlite3", "connect"),
    ("shared_memory", "SharedMemory"),
    ("multiprocessing", "Pool"),
}

_RELEASE_METHODS = frozenset({
    "close", "release", "shutdown", "terminate", "unlink",
    "_teardown", "__exit__", "__del__", "stop",
})

_FUNCTION_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)


def _acquisition_name(func: ast.AST) -> str | None:
    if isinstance(func, ast.Name) and func.id in _ACQUIRERS:
        return func.id
    if isinstance(func, ast.Attribute):
        if isinstance(func.value, ast.Name):
            if (func.value.id, func.attr) in _ATTR_ACQUIRERS:
                return f"{func.value.id}.{func.attr}"
        if func.attr in _ACQUIRERS:
            return func.attr
    return None


def _calls_release(body: list[ast.stmt]) -> bool:
    for stmt in body:
        for node in ast.walk(stmt):
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in _RELEASE_METHODS):
                return True
    return False


def _registers_atexit(func: ast.AST) -> bool:
    for node in ast.walk(func):
        if (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "register"
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == "atexit"):
            return True
    return False


def _has_releasing_finally(func: ast.AST) -> bool:
    """Whether any ``try``/``finally`` in the function releases —
    covers the acquire-then-``try``/``finally`` idiom, where the
    acquisition is a sibling of the ``try``, not inside it."""
    for node in ast.walk(func):
        if (isinstance(node, ast.Try) and node.finalbody
                and _calls_release(node.finalbody)):
            return True
    return False


class PairedLifecycleRule:
    id = "R004"
    slug = "unpaired-acquire"
    description = ("SharedMemory/pool/sqlite3 acquisitions need a "
                   "paired release (with-block, try/finally, atexit "
                   "hook, or owning class with a close method)")

    def check(self, src: SourceFile) -> Iterator[Finding]:
        parents = src.parent_map()
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _acquisition_name(node.func)
            if name is None:
                continue
            if self._is_paired(node, parents):
                continue
            yield Finding(
                rule=self.id, path=src.rel, line=node.lineno,
                message=(f"{name}(...) acquisition has no paired "
                         f"release in reach (no with-block, "
                         f"try/finally release, atexit hook, or "
                         f"owning class close method)"),
            )

    def _is_paired(self, node: ast.Call,
                   parents: dict[ast.AST, ast.AST]) -> bool:
        cursor: ast.AST | None = node
        while cursor is not None:
            parent = parents.get(cursor)
            if isinstance(parent, ast.withitem):
                return True
            if isinstance(parent, _FUNCTION_NODES):
                if _registers_atexit(parent):
                    return True
                if _has_releasing_finally(parent):
                    return True
                # Walk on: the enclosing class may own the release.
            if isinstance(parent, ast.ClassDef):
                methods = {
                    stmt.name for stmt in parent.body
                    if isinstance(stmt, _FUNCTION_NODES)
                }
                if methods & _RELEASE_METHODS:
                    return True
            cursor = parent
        return False
