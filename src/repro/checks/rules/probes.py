"""R003 — no ``supports_*`` capability probes outside ``core/``.

The PR-4 contract: :func:`repro.core.registry.capabilities` is the one
place that reads the ``supports_*`` ClassVars.  A stray
``getattr(cls, "supports_x", False)`` elsewhere silently defaults a
typo'd flag to ``False`` and resurrects the scattered-probe style the
registry replaced.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import Finding
from ..lint import SourceFile


class CapabilityProbeRule:
    id = "R003"
    slug = "capability-probe"
    description = ("getattr/hasattr 'supports_*' probes outside core/ "
                   "must go through repro.core.registry.capabilities()")

    def check(self, src: SourceFile) -> Iterator[Finding]:
        if src.rel.startswith("core/"):
            return
        for node in ast.walk(src.tree):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id in ("getattr", "hasattr")
                    and len(node.args) >= 2):
                continue
            probe = node.args[1]
            if (isinstance(probe, ast.Constant)
                    and isinstance(probe.value, str)
                    and probe.value.startswith("supports_")):
                yield Finding(
                    rule=self.id, path=src.rel, line=node.lineno,
                    message=(f"{node.func.id}(..., {probe.value!r}) "
                             f"probes a capability flag; use "
                             f"capabilities(name).{probe.value[9:]} "
                             f"from repro.core.registry"),
                )
