"""R006 — no deprecated legacy kwarg spellings in internal code.

The PR-4 API redesign funnels execution configuration through
``policy=ExecutionPolicy(...)``; the legacy per-engine kwargs survive
only as deprecation shims (``repro.core.policy.warn_legacy``).
Internal code reaching for a shim keeps it load-bearing forever — the
CI deprecation gate catches this at runtime, this rule catches it
before the code runs.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import Finding
from ..lint import SourceFile

#: Constructor -> kwarg names that only the deprecation shim accepts.
LEGACY_KWARGS = {
    "BatchRunner": frozenset({"executor", "shard_executor"}),
    "InferenceEngine": frozenset({
        "n_shards", "shard_workers", "shard_executor",
    }),
    "ShardedInferenceEngine": frozenset({
        "n_shards", "max_workers", "executor", "process_threshold",
        "persistent",
    }),
}


def _callee_name(func: ast.AST) -> str | None:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


class LegacyKwargRule:
    id = "R006"
    slug = "legacy-kwarg"
    description = ("internal code must not pass deprecated legacy "
                   "kwargs; use policy=ExecutionPolicy(...)")

    def check(self, src: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.Call):
                continue
            legacy = LEGACY_KWARGS.get(_callee_name(node.func) or "")
            if not legacy:
                continue
            for keyword in node.keywords:
                if keyword.arg in legacy:
                    yield Finding(
                        rule=self.id, path=src.rel, line=node.lineno,
                        message=(f"legacy kwarg "
                                 f"{keyword.arg}= on "
                                 f"{_callee_name(node.func)}(...); "
                                 f"pass policy=ExecutionPolicy(...) "
                                 f"instead"),
                    )
