"""R002 — crash paths in the engine/store/inference layers raise typed
``repro.exceptions``.

Callers at API boundaries catch :class:`~repro.exceptions.ReproError`;
a bare ``ValueError``/``RuntimeError`` escapes that contract.  The
typed hierarchy keeps ``ValueError``/``RuntimeError`` inheritance
(:class:`~repro.exceptions.EngineError`,
:class:`~repro.exceptions.InferenceError`,
:class:`~repro.exceptions.ProtocolError`), so switching a raise site
never breaks an existing ``except``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import Finding
from ..lint import SourceFile

#: Directories (path prefixes relative to the package root) plus
#: single files where every raise must be typed.
SCOPED_PREFIXES = ("engine/", "store/", "inference/")
SCOPED_FILES = ("cli.py",)

#: Builtins that have a typed, inheritance-compatible replacement.
BARE = frozenset({"ValueError", "RuntimeError"})


def in_scope(rel: str) -> bool:
    return rel.startswith(SCOPED_PREFIXES) or rel in SCOPED_FILES


class TypedCrashPathRule:
    id = "R002"
    slug = "untyped-raise"
    description = ("engine/store/inference/cli crash paths must raise "
                   "typed repro.exceptions, not bare "
                   "ValueError/RuntimeError")

    def check(self, src: SourceFile) -> Iterator[Finding]:
        if not in_scope(src.rel):
            return
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            exc = node.exc
            name = None
            if isinstance(exc, ast.Call) and isinstance(exc.func, ast.Name):
                name = exc.func.id
            elif isinstance(exc, ast.Name):
                name = exc.id
            if name in BARE:
                yield Finding(
                    rule=self.id, path=src.rel, line=node.lineno,
                    message=(f"raise {name} on a crash path; use a "
                             f"typed repro.exceptions subclass "
                             f"(EngineError/InferenceError/"
                             f"ProtocolError/StoreError keep "
                             f"{name} inheritance)"),
                )
