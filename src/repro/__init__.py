"""repro — reproduction of "Truth Inference in Crowdsourcing: Is the
Problem Solved?" (Zheng, Li, Li, Shan & Cheng, VLDB 2017).

The package provides:

* :mod:`repro.core` — the answer-set data model and the two-step
  iterative inference framework (paper Algorithm 1);
* :mod:`repro.methods` — all 17 surveyed algorithms, registered under
  their paper names;
* :mod:`repro.simulation` — a crowdsourcing-platform simulator (worker
  behaviour models, long-tail assignment, qualification/hidden tests);
* :mod:`repro.datasets` — dataset containers, IO, and statistical
  replicas of the paper's five evaluation datasets;
* :mod:`repro.metrics` — Accuracy / F1 / MAE / RMSE and the crowd-data
  statistics of Section 6.2;
* :mod:`repro.experiments` — the harness regenerating every table and
  figure of the paper's evaluation.

Quickstart::

    from repro import ExecutionPolicy, MethodSpec, create, load_paper_dataset

    dataset = load_paper_dataset("D_Product", seed=0, scale=0.2)

    # What to run: a MethodSpec (name + construction kwargs).
    spec = MethodSpec("D&S", seed=0)
    result = create(spec).fit(dataset.answers)
    print(dataset.score(result))

    # How to run: an ExecutionPolicy — sharded map-reduce EM, with the
    # executor tier (serial / threads / processes) resolved per input.
    policy = ExecutionPolicy(n_shards=4)
    result = create(spec, policy=policy).fit(dataset.answers, policy=policy)

Capabilities (warm starts, sharding, golden tasks, ...) are queried
through ``capabilities(name)`` instead of probing class attributes::

    from repro import capabilities
    capabilities("D&S").warm_start  # -> True
"""

from .core import (
    AnswerSet,
    Capabilities,
    ExecutionPlan,
    ExecutionPolicy,
    FitStats,
    InferenceResult,
    MethodSpec,
    StorePolicy,
    TaskType,
    TruthInferenceMethod,
    available_methods,
    capabilities,
    create,
    create_all,
    methods_for_task_type,
)
from .datasets import Dataset, all_paper_datasets, load_paper_dataset
from .exceptions import ReproError

__version__ = "1.1.0"

__all__ = [
    "AnswerSet",
    "Capabilities",
    "Dataset",
    "ExecutionPlan",
    "ExecutionPolicy",
    "FitStats",
    "InferenceResult",
    "MethodSpec",
    "ReproError",
    "StorePolicy",
    "TaskType",
    "TruthInferenceMethod",
    "__version__",
    "all_paper_datasets",
    "available_methods",
    "capabilities",
    "create",
    "create_all",
    "load_paper_dataset",
    "methods_for_task_type",
]
