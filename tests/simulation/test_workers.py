"""Tests for the simulated worker behaviour models."""

import numpy as np
import pytest

from repro.exceptions import DatasetError
from repro.simulation.workers import (
    CategoricalWorker,
    NumericWorker,
    asymmetric_binary_worker,
    biased_spammer,
    malicious_worker,
    reliable_worker,
    sample_worker_pool,
    spammer,
)


class TestCategoricalWorker:
    def test_row_validation(self):
        with pytest.raises(DatasetError, match="sum to 1"):
            CategoricalWorker(np.array([[0.5, 0.4], [0.5, 0.5]]))

    def test_non_square_rejected(self):
        with pytest.raises(DatasetError, match="square"):
            CategoricalWorker(np.ones((2, 3)) / 3)

    def test_negative_rejected(self):
        with pytest.raises(DatasetError, match="non-negative"):
            CategoricalWorker(np.array([[1.5, -0.5], [0.5, 0.5]]))

    def test_answer_frequencies_match_confusion(self, rng):
        worker = reliable_worker(0.8, 3)
        truths = np.zeros(30_000, dtype=np.int64)
        answers = worker.answer_many(truths, rng)
        freqs = np.bincount(answers, minlength=3) / len(answers)
        np.testing.assert_allclose(freqs, worker.confusion[0], atol=0.01)

    def test_expected_accuracy_with_prior(self):
        worker = asymmetric_binary_worker(recall_true=0.6, recall_false=0.9)
        acc = worker.expected_accuracy(np.array([0.9, 0.1]))  # mostly F
        np.testing.assert_allclose(acc, 0.9 * 0.9 + 0.1 * 0.6)

    def test_single_answer_api(self, rng):
        worker = reliable_worker(1.0, 4)
        assert worker.answer(2, rng) == 2


class TestArchetypes:
    def test_reliable_worker_diagonal(self):
        worker = reliable_worker(0.7, 4)
        np.testing.assert_allclose(np.diag(worker.confusion), 0.7)
        np.testing.assert_allclose(worker.confusion.sum(axis=1), 1.0)

    def test_spammer_uniform(self):
        worker = spammer(4)
        np.testing.assert_allclose(worker.confusion, 0.25)

    def test_malicious_worse_than_chance(self):
        worker = malicious_worker(2, wrongness=0.9)
        assert worker.confusion[0, 0] == pytest.approx(0.1)

    def test_asymmetric_binary_structure(self):
        worker = asymmetric_binary_worker(recall_true=0.5, recall_false=0.95)
        # Label 0 = F, label 1 = T.
        assert worker.confusion[0, 0] == pytest.approx(0.95)
        assert worker.confusion[1, 1] == pytest.approx(0.5)

    def test_biased_spammer_column(self):
        worker = biased_spammer(4, favourite=2, strength=0.8)
        assert (worker.confusion[:, 2] > 0.8).all()
        np.testing.assert_allclose(worker.confusion.sum(axis=1), 1.0)

    def test_biased_spammer_validation(self):
        with pytest.raises(DatasetError):
            biased_spammer(3, favourite=5)

    def test_invalid_accuracy_rejected(self):
        with pytest.raises(DatasetError):
            reliable_worker(1.5, 2)


class TestNumericWorker:
    def test_bias_and_sigma_effects(self, rng):
        worker = NumericWorker(bias=5.0, sigma=0.1)
        answers = worker.answer_many(np.zeros(10_000), rng)
        assert abs(answers.mean() - 5.0) < 0.05

    def test_expected_rmse(self):
        worker = NumericWorker(bias=3.0, sigma=4.0)
        assert worker.expected_rmse() == pytest.approx(5.0)

    def test_noise_scale_multiplies_sigma(self, rng):
        worker = NumericWorker(bias=0.0, sigma=1.0)
        quiet = worker.answer_many(np.zeros(20_000), rng,
                                   noise_scale=np.full(20_000, 0.1))
        loud = worker.answer_many(np.zeros(20_000), rng,
                                  noise_scale=np.full(20_000, 10.0))
        assert loud.std() > 50 * quiet.std()

    def test_negative_sigma_rejected(self):
        with pytest.raises(DatasetError):
            NumericWorker(sigma=-1.0)


class TestPoolSampling:
    def test_pool_size_and_mean_accuracy(self, rng):
        pool = sample_worker_pool(300, 2, rng, mean_accuracy=0.75,
                                  spammer_fraction=0.0)
        assert len(pool) == 300
        accuracies = [w.expected_accuracy() for w in pool]
        assert abs(np.mean(accuracies) - 0.75) < 0.05

    def test_spammer_fraction_respected(self, rng):
        pool = sample_worker_pool(1000, 4, rng, spammer_fraction=0.2)
        n_spammers = sum(1 for w in pool
                         if np.allclose(w.confusion, 0.25))
        assert 130 < n_spammers < 270
