"""Tests for the CrowdPlatform answer-collection pipeline."""

import numpy as np
import pytest

from repro.core.tasktypes import TaskType
from repro.exceptions import DatasetError
from repro.simulation.platform import CrowdPlatform
from repro.simulation.workers import NumericWorker, reliable_worker


def make_platform(n_tasks=50, n_workers=8, accuracy=0.9, seed=0):
    rng = np.random.default_rng(seed)
    truths = rng.integers(0, 2, size=n_tasks)
    workers = [reliable_worker(accuracy, 2) for _ in range(n_workers)]
    return CrowdPlatform(truths, workers, TaskType.DECISION_MAKING,
                         seed=seed), truths


class TestCollect:
    def test_uniform_redundancy(self):
        platform, _ = make_platform()
        answers = platform.collect(redundancy=3)
        assert (answers.task_answer_counts() == 3).all()

    def test_budget_mode(self):
        platform, _ = make_platform()
        answers = platform.collect(total_answers=120)
        assert answers.n_answers == 120

    def test_must_choose_one_mode(self):
        platform, _ = make_platform()
        with pytest.raises(DatasetError):
            platform.collect()
        with pytest.raises(DatasetError):
            platform.collect(total_answers=10, redundancy=2)

    def test_answers_reflect_worker_accuracy(self):
        platform, truths = make_platform(n_tasks=500, accuracy=0.9)
        answers = platform.collect(redundancy=5)
        correct = answers.values == truths[answers.tasks]
        assert abs(correct.mean() - 0.9) < 0.03

    def test_reproducible_from_seed(self):
        a1 = make_platform(seed=7)[0].collect(redundancy=3)
        a2 = make_platform(seed=7)[0].collect(redundancy=3)
        np.testing.assert_array_equal(a1.values, a2.values)
        np.testing.assert_array_equal(a1.workers, a2.workers)

    def test_mismatched_worker_widths_rejected(self):
        truths = np.zeros(5, dtype=np.int64)
        workers = [reliable_worker(0.9, 2), reliable_worker(0.9, 3)]
        with pytest.raises(DatasetError, match="disagree"):
            CrowdPlatform(truths, workers, TaskType.SINGLE_CHOICE)

    def test_empty_pool_rejected(self):
        with pytest.raises(DatasetError, match="non-empty"):
            CrowdPlatform(np.zeros(3), [], TaskType.NUMERIC)


class TestQualificationTest:
    def test_scores_track_accuracy(self):
        rng = np.random.default_rng(0)
        truths = rng.integers(0, 2, size=100)
        workers = [reliable_worker(0.95, 2), reliable_worker(0.55, 2)]
        platform = CrowdPlatform(truths, workers,
                                 TaskType.DECISION_MAKING, seed=0)
        records = platform.qualification_test(n_golden=200)
        assert records[0].accuracy > records[1].accuracy

    def test_numeric_scores_in_unit_interval(self):
        rng = np.random.default_rng(1)
        truths = rng.uniform(-10, 10, size=50)
        workers = [NumericWorker(sigma=1.0), NumericWorker(sigma=20.0)]
        platform = CrowdPlatform(truths, workers, TaskType.NUMERIC, seed=0)
        records = platform.qualification_test(n_golden=50)
        for record in records:
            assert 0.0 <= record.accuracy <= 1.0
        assert records[0].accuracy > records[1].accuracy

    def test_invalid_n_golden_rejected(self):
        platform, _ = make_platform()
        with pytest.raises(DatasetError):
            platform.qualification_test(n_golden=0)


class TestPlantGolden:
    def test_fraction_size_and_truths(self):
        platform, truths = make_platform(n_tasks=100)
        golden = platform.plant_golden(0.2)
        assert len(golden) == 20
        for task, value in golden.items():
            assert value == truths[task]

    def test_invalid_fraction_rejected(self):
        platform, _ = make_platform()
        with pytest.raises(DatasetError):
            platform.plant_golden(1.5)


class TestTaskDifficulty:
    def test_difficulty_scales_numeric_noise(self):
        truths = np.zeros(2000)
        difficulty = np.ones(2000)
        difficulty[1000:] = 10.0
        workers = [NumericWorker(sigma=1.0) for _ in range(4)]
        platform = CrowdPlatform(truths, workers, TaskType.NUMERIC,
                                 seed=0, task_difficulty=difficulty)
        answers = platform.collect(redundancy=3)
        easy = answers.values[answers.tasks < 1000]
        hard = answers.values[answers.tasks >= 1000]
        assert hard.std() > 5 * easy.std()

    def test_wrong_length_rejected(self):
        with pytest.raises(DatasetError):
            CrowdPlatform(np.zeros(5), [NumericWorker()], TaskType.NUMERIC,
                          task_difficulty=np.ones(3))
