"""Tests for assignment strategies."""

import numpy as np
import pytest

from repro.exceptions import DatasetError
from repro.simulation.assignment import (
    assign_by_task,
    assign_by_worker,
    redundancy_schedule,
)


class TestAssignByTask:
    def test_exact_redundancy(self, rng):
        schedule = np.array([3, 3, 2, 0])
        tasks, workers = assign_by_task(schedule, np.ones(10), rng)
        counts = np.bincount(tasks, minlength=4)
        np.testing.assert_array_equal(counts, schedule)

    def test_no_duplicate_pairs(self, rng):
        tasks, workers = assign_by_task(np.full(50, 5), np.ones(8), rng)
        pairs = set(zip(tasks.tolist(), workers.tolist()))
        assert len(pairs) == len(tasks)

    def test_heavy_workers_get_more(self, rng):
        weights = np.ones(20)
        weights[0] = 50.0
        tasks, workers = assign_by_task(np.full(200, 3), weights, rng)
        counts = np.bincount(workers, minlength=20)
        assert counts[0] > counts[1:].max()

    def test_redundancy_exceeding_pool_rejected(self, rng):
        with pytest.raises(DatasetError):
            assign_by_task(np.array([5]), np.ones(3), rng)

    def test_nonpositive_weights_rejected(self, rng):
        with pytest.raises(DatasetError):
            assign_by_task(np.array([1]), np.array([0.0, 1.0]), rng)

    def test_empty_schedule(self, rng):
        tasks, workers = assign_by_task(np.zeros(3, dtype=int),
                                        np.ones(2), rng)
        assert len(tasks) == 0


class TestAssignByWorker:
    def test_exact_worker_counts(self, rng):
        counts = np.array([10, 5, 0, 3])
        tasks, workers = assign_by_worker(20, counts, rng)
        observed = np.bincount(workers, minlength=4)
        np.testing.assert_array_equal(observed, counts)

    def test_distinct_tasks_per_worker(self, rng):
        tasks, workers = assign_by_worker(30, np.array([30, 15]), rng)
        for worker in range(2):
            mine = tasks[workers == worker]
            assert len(set(mine.tolist())) == len(mine)

    def test_balanced_task_coverage(self, rng):
        tasks, _ = assign_by_worker(100, np.full(10, 50), rng)
        counts = np.bincount(tasks, minlength=100)
        # Target redundancy 5; balance keeps everything within a
        # moderate band.
        assert counts.min() >= 2
        assert counts.max() <= 9

    def test_count_exceeding_tasks_rejected(self, rng):
        with pytest.raises(DatasetError):
            assign_by_worker(5, np.array([6]), rng)


class TestRedundancySchedule:
    def test_sums_exactly(self):
        schedule = redundancy_schedule(7, 24)
        assert schedule.sum() == 24
        assert schedule.max() - schedule.min() <= 1

    def test_zero_budget(self):
        assert redundancy_schedule(3, 0).sum() == 0

    def test_invalid_inputs_rejected(self):
        with pytest.raises(DatasetError):
            redundancy_schedule(0, 5)
        with pytest.raises(DatasetError):
            redundancy_schedule(3, -1)
