"""Tests for long-tail activity sampling."""

import numpy as np
import pytest

from repro.exceptions import DatasetError
from repro.simulation.longtail import observed_tail_share, zipf_activity


class TestZipfActivity:
    def test_total_exact(self):
        counts = zipf_activity(50, 1234)
        assert counts.sum() == 1234

    def test_minimum_respected(self):
        counts = zipf_activity(20, 500, minimum=5)
        assert counts.min() >= 5

    def test_long_tail_shape(self):
        counts = zipf_activity(100, 10_000, exponent=1.2)
        share = observed_tail_share(counts, head_fraction=0.2)
        assert share > 0.5  # busiest 20% produce most answers

    def test_zero_exponent_is_flat(self):
        counts = zipf_activity(10, 1000, exponent=0.0)
        assert counts.max() - counts.min() <= 2

    def test_shuffle_decouples_rank_from_index(self):
        rng = np.random.default_rng(0)
        counts = zipf_activity(50, 5000, rng=rng)
        # With shuffling, the largest count should not always sit at 0.
        assert counts.argmax() != 0 or counts[0] != counts.max() + 1

    def test_budget_too_small_rejected(self):
        with pytest.raises(DatasetError):
            zipf_activity(10, 5, minimum=1)

    def test_invalid_exponent_rejected(self):
        with pytest.raises(DatasetError):
            zipf_activity(10, 100, exponent=-1.0)


class TestTailShare:
    def test_uniform_counts_share_equals_fraction(self):
        share = observed_tail_share(np.full(100, 7), head_fraction=0.2)
        assert abs(share - 0.2) < 0.01

    def test_empty_counts_nan(self):
        assert np.isnan(observed_tail_share(np.zeros(5)))
