"""Tests for the online assignment session."""

import numpy as np
import pytest

from repro.exceptions import DatasetError
from repro.simulation import reliable_worker, spammer
from repro.tasking import OnlineSession, compare_policies, create_policy


def make_session(policy_name="round-robin", n_tasks=100, seed=0,
                 **kwargs):
    rng = np.random.default_rng(seed)
    truths = rng.integers(0, 2, size=n_tasks)
    workers = [reliable_worker(0.85, 2) for _ in range(8)]
    session = OnlineSession(truths, workers, create_policy(policy_name),
                            seed=seed, refresh_every=100, **kwargs)
    return session, truths


class TestOnlineSession:
    def test_collects_requested_answers(self):
        session, _ = make_session()
        trace = session.run(n_answers=400)
        assert trace.answers.n_answers == 400

    def test_no_duplicate_worker_task_pairs(self):
        session, _ = make_session()
        trace = session.run(n_answers=400)
        pairs = set(zip(trace.answers.tasks.tolist(),
                        trace.answers.workers.tolist()))
        assert len(pairs) == trace.answers.n_answers

    def test_redundancy_cap_respected(self):
        session, _ = make_session(redundancy_cap=3)
        trace = session.run(n_answers=290)
        assert trace.answers.task_answer_counts().max() <= 3

    def test_checkpoints_recorded(self):
        session, _ = make_session()
        trace = session.run(n_answers=350)
        assert trace.checkpoints[0][0] == 100
        assert trace.checkpoints[-1][0] == 350

    def test_quality_improves_over_session(self):
        session, _ = make_session(n_tasks=200)
        trace = session.run(n_answers=1000)
        assert trace.checkpoints[-1][1] > trace.checkpoints[0][1] - 0.02
        assert trace.final_accuracy > 0.85

    def test_reproducible(self):
        a = make_session(seed=5)[0].run(300)
        b = make_session(seed=5)[0].run(300)
        np.testing.assert_array_equal(a.answers.values, b.answers.values)

    def test_invalid_inputs_rejected(self):
        session, _ = make_session()
        with pytest.raises(DatasetError):
            session.run(0)
        with pytest.raises(DatasetError):
            OnlineSession(np.zeros(3, dtype=int), [],
                          create_policy("random"))


class TestComparePolicies:
    def test_smart_policies_beat_random_with_spammers(self):
        """The §7(6) experiment in miniature: uncertainty-aware
        assignment wins at equal budget when the pool has spammers."""
        rng = np.random.default_rng(1)
        truths = rng.integers(0, 2, size=250)
        workers = ([reliable_worker(float(rng.uniform(0.6, 0.95)), 2)
                    for _ in range(12)] + [spammer(2) for _ in range(4)])
        traces = compare_policies(
            truths, workers,
            [create_policy("random"), create_policy("expected-accuracy")],
            n_answers=1200, seed=0, refresh_every=300,
        )
        assert traces["expected-accuracy"].final_accuracy >= \
            traces["random"].final_accuracy - 0.01

    def test_all_policies_complete(self):
        rng = np.random.default_rng(2)
        truths = rng.integers(0, 2, size=80)
        workers = [reliable_worker(0.8, 2) for _ in range(6)]
        policies = [create_policy(n)
                    for n in ("random", "round-robin", "uncertainty",
                              "expected-accuracy")]
        traces = compare_policies(truths, workers, policies,
                                  n_answers=240, seed=0,
                                  refresh_every=120)
        assert set(traces) == {"random", "round-robin", "uncertainty",
                               "expected-accuracy"}
