"""Unit tests for the assignment policies."""

import numpy as np
import pytest

from repro.tasking.policies import (
    POLICIES,
    AssignmentState,
    ExpectedAccuracyPolicy,
    RandomPolicy,
    RoundRobinPolicy,
    UncertaintyPolicy,
    create_policy,
)


def make_state(posterior, counts=None, quality=None, eligible=None):
    posterior = np.asarray(posterior, dtype=float)
    n_tasks = len(posterior)
    return AssignmentState(
        posterior=posterior,
        answer_counts=(np.asarray(counts) if counts is not None
                       else np.zeros(n_tasks, dtype=int)),
        worker_quality=(np.asarray(quality) if quality is not None
                        else np.full(3, 0.8)),
        eligible=(np.asarray(eligible) if eligible is not None
                  else np.ones(n_tasks, dtype=bool)),
    )


class TestFactory:
    def test_all_policies_creatable(self):
        for name in POLICIES:
            assert create_policy(name).name == name

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="unknown policy"):
            create_policy("oracle")


class TestEligibility:
    @pytest.mark.parametrize("name", sorted(POLICIES))
    def test_only_eligible_tasks_selected(self, name, rng):
        state = make_state(
            [[0.5, 0.5]] * 6,
            eligible=np.array([False, True, False, True, False, False]),
        )
        policy = create_policy(name)
        for _ in range(20):
            assert policy.select(state, worker=0, rng=rng) in (1, 3)

    @pytest.mark.parametrize("name", sorted(POLICIES))
    def test_no_eligible_raises(self, name, rng):
        state = make_state([[0.5, 0.5]] * 3,
                           eligible=np.zeros(3, dtype=bool))
        with pytest.raises(ValueError):
            create_policy(name).select(state, worker=0, rng=rng)


class TestRoundRobin:
    def test_prefers_fewest_answers(self, rng):
        state = make_state([[0.5, 0.5]] * 3, counts=[5, 1, 3])
        assert RoundRobinPolicy().select(state, 0, rng) == 1

    def test_breaks_ties_randomly(self):
        state = make_state([[0.5, 0.5]] * 3, counts=[2, 2, 9])
        chosen = {
            RoundRobinPolicy().select(state, 0, np.random.default_rng(s))
            for s in range(30)
        }
        assert chosen == {0, 1}


class TestUncertainty:
    def test_picks_highest_entropy(self, rng):
        state = make_state([[0.9, 0.1], [0.5, 0.5], [0.99, 0.01]])
        assert UncertaintyPolicy().select(state, 0, rng) == 1

    def test_certain_tasks_never_chosen_over_uncertain(self, rng):
        state = make_state([[1.0, 0.0], [0.6, 0.4]])
        for _ in range(10):
            assert UncertaintyPolicy().select(state, 0, rng) == 1


class TestExpectedAccuracy:
    def test_prefers_decidable_uncertainty(self, rng):
        """A coin-flip task gains more expected accuracy from a good
        worker than an already-decided task."""
        state = make_state([[0.5, 0.5], [0.95, 0.05]],
                           quality=np.array([0.9]))
        assert ExpectedAccuracyPolicy().select(state, 0, rng) == 0

    def test_spammer_gains_nothing_everywhere(self, rng):
        """With quality 0.5 the Bayes update is a no-op: every task has
        zero gain, so any eligible task may be returned."""
        state = make_state([[0.5, 0.5], [0.7, 0.3]],
                           quality=np.array([0.5]))
        chosen = ExpectedAccuracyPolicy().select(state, 0, rng)
        assert chosen in (0, 1)

    def test_random_policy_uniform(self):
        state = make_state([[0.5, 0.5]] * 4)
        picks = [RandomPolicy().select(state, 0, np.random.default_rng(s))
                 for s in range(200)]
        assert set(picks) == {0, 1, 2, 3}
