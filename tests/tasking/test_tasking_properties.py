"""Property-based tests for assignment policies."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tasking.policies import POLICIES, AssignmentState, create_policy


@st.composite
def states(draw, n_choices=2):
    n_tasks = draw(st.integers(1, 25))
    raw = draw(st.lists(
        st.lists(st.floats(0.01, 1.0, allow_nan=False),
                 min_size=n_choices, max_size=n_choices),
        min_size=n_tasks, max_size=n_tasks))
    posterior = np.asarray(raw)
    posterior = posterior / posterior.sum(axis=1, keepdims=True)
    eligible_bits = draw(st.lists(st.booleans(), min_size=n_tasks,
                                  max_size=n_tasks))
    eligible = np.asarray(eligible_bits)
    if not eligible.any():
        eligible[draw(st.integers(0, n_tasks - 1))] = True
    counts = np.asarray(draw(st.lists(st.integers(0, 10),
                                      min_size=n_tasks, max_size=n_tasks)))
    quality = np.asarray(draw(st.lists(
        st.floats(0.0, 1.0, allow_nan=False), min_size=3, max_size=3)))
    return AssignmentState(posterior=posterior, answer_counts=counts,
                           worker_quality=quality, eligible=eligible)


class TestPolicyProperties:
    @given(state=states(), seed=st.integers(0, 2**16),
           policy_name=st.sampled_from(sorted(POLICIES)))
    @settings(max_examples=120, deadline=None)
    def test_selection_always_eligible_and_in_range(self, state, seed,
                                                    policy_name):
        policy = create_policy(policy_name)
        rng = np.random.default_rng(seed)
        worker = int(rng.integers(0, len(state.worker_quality)))
        task = policy.select(state, worker, rng)
        assert 0 <= task < len(state.posterior)
        assert state.eligible[task]

    @given(state=states(), policy_name=st.sampled_from(sorted(POLICIES)))
    @settings(max_examples=60, deadline=None)
    def test_selection_deterministic_given_rng_seed(self, state,
                                                    policy_name):
        policy = create_policy(policy_name)
        first = policy.select(state, 0, np.random.default_rng(7))
        second = policy.select(state, 0, np.random.default_rng(7))
        assert first == second
