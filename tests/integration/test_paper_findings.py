"""Integration tests asserting the paper's qualitative findings.

Each test pins one claim from Section 6 of the paper to the replicas.
These are *shape* assertions (who wins, direction of change), never
absolute numbers.
"""

import numpy as np
import pytest

from repro.core import create
from repro.metrics import accuracy, f1_score, mae


@pytest.fixture(scope="module")
def product():
    from repro.datasets import load_paper_dataset

    return load_paper_dataset("D_Product", seed=0, scale=0.3)


@pytest.fixture(scope="module")
def emotion():
    from repro.datasets import load_paper_dataset

    return load_paper_dataset("N_Emotion", seed=0, scale=1.0)


class TestDProductFindings:
    """Paper §6.3.1 (1): confusion-matrix methods win F1 on D_Product."""

    def test_ds_beats_mv_on_f1(self, product):
        mv = create("MV", seed=0).fit(product.answers)
        ds = create("D&S", seed=0).fit(product.answers)
        assert f1_score(product.truth, ds.truths) > \
            f1_score(product.truth, mv.truths)

    def test_confusion_family_tops_worker_probability(self, product):
        confusion = max(
            f1_score(product.truth,
                     create(name, seed=0).fit(product.answers).truths)
            for name in ("D&S", "LFC", "BCC"))
        scalar = max(
            f1_score(product.truth,
                     create(name, seed=0).fit(product.answers).truths)
            for name in ("PM", "CATD", "KOS"))
        assert confusion > scalar

    def test_accuracy_alone_hides_the_gap(self, product):
        """Most methods land near 85–90% accuracy; the spread in
        accuracy is much smaller than the spread in F1 (the paper's
        argument for reporting F1 on imbalanced data)."""
        accs, f1s = [], []
        for name in ("MV", "ZC", "D&S", "LFC", "PM"):
            result = create(name, seed=0).fit(product.answers)
            accs.append(accuracy(product.truth, result.truths))
            f1s.append(f1_score(product.truth, result.truths))
        assert (max(accs) - min(accs)) < (max(f1s) - min(f1s))

    def test_vi_bp_underperforms(self, product):
        """Paper Table 6: VI-BP collapses on D_Product (64.64%)."""
        vibp = create("VI-BP", seed=0).fit(product.answers)
        mv = create("MV", seed=0).fit(product.answers)
        assert accuracy(product.truth, vibp.truths) < \
            accuracy(product.truth, mv.truths)


class TestNEmotionFindings:
    """Paper §6.3.1: numeric tasks are not well-addressed; Mean wins."""

    def test_mean_at_or_near_top(self, emotion):
        errors = {
            name: mae(emotion.truth,
                      create(name, seed=0).fit(emotion.answers).truths)
            for name in ("Mean", "Median", "LFC_N", "PM", "CATD")
        }
        # Mean must be within 5% of the best method — "the baseline
        # method Mean performs best" (allowing statistical noise).
        assert errors["Mean"] <= min(errors.values()) * 1.05

    def test_sophistication_buys_nothing(self, emotion):
        mean_err = mae(emotion.truth,
                       create("Mean").fit(emotion.answers).truths)
        pm_err = mae(emotion.truth,
                     create("PM", seed=0).fit(emotion.answers).truths)
        assert pm_err > mean_err * 0.95


class TestRedundancyFindings:
    """Paper §6.3.1 summary (1): quality rises steeply at small r then
    saturates."""

    def test_steep_then_flat(self, small_possent):
        from repro.experiments import sweep_redundancy

        sweep = sweep_redundancy(small_possent,
                                 redundancies=[1, 5, 15, 19],
                                 methods=["MV"], n_repeats=3)
        series = sweep.series_for("accuracy")["MV"]
        early_gain = series[1] - series[0]
        late_gain = abs(series[3] - series[2])
        assert early_gain > 0.03
        assert late_gain < early_gain


class TestStabilityFinding:
    """Paper abstract: 'no algorithm outperforms others consistently'."""

    def test_winner_changes_across_datasets(self, product, small_rel,
                                            emotion):
        def winner(dataset, names, metric):
            scores = {}
            for name in names:
                result = create(name, seed=0).fit(dataset.answers)
                scores[name] = metric(dataset, result)
            return max(scores, key=scores.get)

        shared = ["MV", "ZC", "D&S", "PM", "CATD"]
        w_product = winner(product, shared,
                           lambda d, r: f1_score(d.truth, r.truths))
        w_rel = winner(small_rel, shared,
                       lambda d, r: d.score(r)["accuracy"])
        numeric_winner = winner(
            emotion, ["Mean", "PM", "CATD", "LFC_N"],
            lambda d, r: -d.score(r)["mae"])
        winners = {w_product, w_rel, numeric_winner}
        assert len(winners) >= 2
