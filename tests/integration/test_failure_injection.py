"""Failure-injection and edge-case robustness tests."""

import numpy as np
import pytest

from repro.core import create, methods_for_task_type
from repro.core.answers import AnswerSet
from repro.core.tasktypes import TaskType
from repro.metrics import accuracy


def binary(tasks, workers, values, **kw):
    return AnswerSet(tasks, workers, values, TaskType.DECISION_MAKING, **kw)


class TestDegenerateInputs:
    @pytest.mark.parametrize(
        "name", sorted(methods_for_task_type(TaskType.DECISION_MAKING)))
    def test_single_task_single_worker(self, name):
        answers = binary([0], [0], [1])
        result = create(name, seed=0).fit(answers)
        assert result.truths.shape == (1,)

    @pytest.mark.parametrize(
        "name", sorted(methods_for_task_type(TaskType.DECISION_MAKING)))
    def test_unanimous_single_label(self, name):
        """Every worker answers T on every task — no F evidence at all."""
        tasks = np.repeat(np.arange(10), 3)
        workers = np.tile(np.arange(3), 10)
        answers = binary(tasks, workers, np.ones(30, dtype=np.int64))
        result = create(name, seed=0).fit(answers)
        assert (result.truths == 1).all()

    @pytest.mark.parametrize(
        "name", sorted(methods_for_task_type(TaskType.DECISION_MAKING)))
    def test_tasks_without_answers(self, name):
        """Half the tasks receive no answers at all."""
        answers = binary([0, 1, 2], [0, 1, 0], [1, 0, 1], n_tasks=6)
        result = create(name, seed=0).fit(answers)
        assert result.truths.shape == (6,)
        assert np.isfinite(result.worker_quality).all()

    @pytest.mark.parametrize(
        "name", sorted(methods_for_task_type(TaskType.NUMERIC)))
    def test_numeric_identical_answers(self, name):
        tasks = np.repeat(np.arange(5), 4)
        workers = np.tile(np.arange(4), 5)
        answers = AnswerSet(tasks, workers, np.full(20, 3.14),
                            TaskType.NUMERIC)
        result = create(name, seed=0).fit(answers)
        np.testing.assert_allclose(result.truths, 3.14)


class TestAdversarialWorkers:
    def _with_malicious(self, malicious_fraction, seed=0):
        rng = np.random.default_rng(seed)
        n_tasks, n_workers = 300, 10
        n_malicious = int(malicious_fraction * n_workers)
        truth = rng.integers(0, 2, size=n_tasks)
        tasks, workers, values = [], [], []
        for task in range(n_tasks):
            for worker in rng.choice(n_workers, size=5, replace=False):
                if worker < n_malicious:
                    answer = 1 - truth[task] if rng.random() < 0.9 \
                        else truth[task]
                else:
                    answer = truth[task] if rng.random() < 0.8 \
                        else 1 - truth[task]
                tasks.append(task)
                workers.append(int(worker))
                values.append(int(answer))
        return binary(tasks, workers, values, n_tasks=n_tasks,
                      n_workers=n_workers), truth

    def test_ds_exploits_malicious_minority(self):
        """A confusion matrix can *invert* a consistently wrong worker;
        MV just suffers them."""
        answers, truth = self._with_malicious(0.3)
        mv = accuracy(truth, create("MV", seed=0).fit(answers).truths)
        ds = accuracy(truth, create("D&S", seed=0).fit(answers).truths)
        assert ds > mv
        assert ds > 0.9

    def test_malicious_majority_breaks_everything(self):
        """With 70% malicious workers no unsupervised method should be
        expected to recover — this documents the failure mode rather
        than hiding it."""
        answers, truth = self._with_malicious(0.7)
        ds = accuracy(truth, create("D&S", seed=0).fit(answers).truths)
        assert ds < 0.5  # the inversion wins: worse than chance

    def test_golden_tasks_rescue_malicious_majority(self):
        """Hidden-test golden tasks re-anchor the truth and flip the
        inverted solution back — the paper's motivation for §6.3.3."""
        answers, truth = self._with_malicious(0.7)
        golden = {t: int(truth[t]) for t in range(0, 300, 4)}  # 25%
        result = create("D&S", seed=0).fit(answers, golden=golden)
        mask = np.ones(300, dtype=bool)
        mask[list(golden)] = False
        assert accuracy(truth, result.truths, mask) > 0.8


class TestExtremeScale:
    def test_many_workers_few_answers_each(self):
        """Long-tail extreme: 400 workers answering ~2 tasks each."""
        rng = np.random.default_rng(0)
        n_tasks, n_workers = 200, 400
        truth = rng.integers(0, 2, size=n_tasks)
        tasks, workers, values = [], [], []
        worker = 0
        for task in range(n_tasks):
            for _ in range(4):
                w = worker % n_workers
                worker += 1
                answer = truth[task] if rng.random() < 0.75 \
                    else 1 - truth[task]
                tasks.append(task)
                workers.append(w)
                values.append(int(answer))
        answers = binary(tasks, workers, values, n_tasks=n_tasks,
                         n_workers=n_workers)
        for name in ("MV", "ZC", "D&S", "VI-BP"):
            result = create(name, seed=0).fit(answers)
            assert accuracy(truth, result.truths) > 0.7, name
