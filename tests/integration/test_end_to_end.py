"""End-to-end pipeline tests: platform → dataset → inference → metrics."""

import numpy as np

from repro.core import create, methods_for_task_type
from repro.core.tasktypes import TaskType
from repro.datasets.schema import Dataset
from repro.experiments import (
    hidden_test_experiment,
    qualification_experiment,
    sweep_redundancy,
    table5,
    table6,
)
from repro.metrics import accuracy
from repro.simulation import CrowdPlatform, reliable_worker, spammer


class TestPlatformToInference:
    def test_full_pipeline(self):
        """Collect answers on the simulated platform, infer, evaluate."""
        rng = np.random.default_rng(0)
        truths = rng.integers(0, 2, size=400)
        workers = ([reliable_worker(0.9, 2) for _ in range(6)]
                   + [spammer(2) for _ in range(2)])
        platform = CrowdPlatform(truths, workers,
                                 TaskType.DECISION_MAKING, seed=0)
        answers = platform.collect(redundancy=5)
        dataset = Dataset(name="pipeline", answers=answers, truth=truths)

        for name in ("MV", "ZC", "D&S"):
            result = create(name, seed=0).fit(dataset.answers)
            assert dataset.score(result)["accuracy"] > 0.9

    def test_qualification_pipeline(self):
        """Platform qualification records feed method initialisation."""
        rng = np.random.default_rng(1)
        truths = rng.integers(0, 2, size=200)
        workers = [reliable_worker(a, 2)
                   for a in (0.95, 0.9, 0.8, 0.6, 0.5)]
        platform = CrowdPlatform(truths, workers,
                                 TaskType.DECISION_MAKING, seed=1)
        answers = platform.collect(redundancy=4)
        records = platform.qualification_test(n_golden=30)
        initial = np.array([r.accuracy for r in records])
        result = create("ZC", seed=0).fit(answers, initial_quality=initial)
        assert accuracy(truths, result.truths) > 0.9

    def test_hidden_golden_pipeline(self):
        rng = np.random.default_rng(2)
        truths = rng.integers(0, 2, size=200)
        workers = [reliable_worker(0.7, 2) for _ in range(6)]
        platform = CrowdPlatform(truths, workers,
                                 TaskType.DECISION_MAKING, seed=2)
        answers = platform.collect(redundancy=3)
        golden = platform.plant_golden(0.25)
        result = create("D&S", seed=0).fit(answers, golden=golden)
        for task, value in golden.items():
            assert result.truths[task] == value


class TestExperimentHarnessEndToEnd:
    def test_table5_and_table6_consistent(self, small_product):
        datasets = {"D_Product": small_product}
        stats = table5(datasets)
        runs = table6(datasets, methods=["MV", "D&S"])
        assert stats[0]["n_tasks"] == small_product.n_tasks
        assert len(runs) == 2

    def test_redundancy_then_hidden_then_qualification(self, small_possent):
        sweep = sweep_redundancy(small_possent, redundancies=[1, 5],
                                 methods=["MV", "ZC"], n_repeats=2)
        assert len(sweep.series_for("accuracy")["ZC"]) == 2

        hidden = hidden_test_experiment(small_possent, percentages=(0, 20),
                                        methods=["ZC"], n_repeats=2)
        assert len(hidden.series_for("accuracy")["ZC"]) == 2

        qual = qualification_experiment(small_possent, methods=["ZC"],
                                        n_golden=10, n_repeats=2)
        assert qual[0].method == "ZC"

    def test_every_method_runs_on_matching_paper_replica(
            self, small_product, small_rel, small_emotion):
        for dataset in (small_product, small_rel, small_emotion):
            for name in methods_for_task_type(dataset.task_type):
                kwargs = {}
                if name == "Minimax":
                    kwargs = {"max_iter": 3}
                result = create(name, seed=0, **kwargs).fit(dataset.answers)
                scores = dataset.score(result)
                assert all(np.isfinite(v) for v in scores.values()), \
                    f"{name} on {dataset.name}: {scores}"
