"""Smoke tests: every example script must run cleanly end to end."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"

#: Examples safe to run inside the test suite (method_selection is the
#: one long-runner; it gets a reduced-scale argument below).
FAST_EXAMPLES = (
    "quickstart.py",
    "entity_resolution.py",
    "sentiment_analysis.py",
    "emotion_scores.py",
    "crowd_audit.py",
    "image_tagging.py",
    "online_assignment.py",
)


def run_example(name: str, *args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name), *args],
        capture_output=True, text=True, timeout=300,
    )


@pytest.mark.parametrize("name", FAST_EXAMPLES)
def test_example_runs_cleanly(name):
    result = run_example(name)
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), f"{name} produced no output"


def test_method_selection_with_tiny_scale():
    result = run_example("method_selection.py", "0.05")
    assert result.returncode == 0, result.stderr[-2000:]
    assert "winners per dataset" in result.stdout


def test_examples_directory_is_fully_covered():
    """Every example on disk is exercised by some test here."""
    on_disk = {path.name for path in EXAMPLES_DIR.glob("*.py")}
    covered = set(FAST_EXAMPLES) | {"method_selection.py"}
    assert on_disk == covered
