"""ZenCrowd (ZC) tests."""

import numpy as np

from repro.core import create
from repro.metrics import accuracy


class TestZC:
    def test_quality_is_probability(self, clean_binary):
        answers, _ = clean_binary
        result = create("ZC", seed=0).fit(answers)
        assert (result.worker_quality >= 0).all()
        assert (result.worker_quality <= 1).all()

    def test_quality_tracks_true_accuracy(self, clean_binary):
        answers, _ = clean_binary
        result = create("ZC", seed=0).fit(answers)
        # Fixture: worker 0 has accuracy 0.95, worker 7 has 0.35.
        assert result.worker_quality[0] > 0.85
        assert result.worker_quality[7] < 0.55

    def test_downweights_spammer_vs_mv(self, clean_binary):
        answers, truth = clean_binary
        mv = accuracy(truth, create("MV", seed=0).fit(answers).truths)
        zc = accuracy(truth, create("ZC", seed=0).fit(answers).truths)
        assert zc >= mv - 0.01

    def test_single_choice_error_mass_spread(self, clean_single_choice):
        answers, truth = clean_single_choice
        result = create("ZC", seed=0).fit(answers)
        assert accuracy(truth, result.truths) > 0.6

    def test_golden_tasks_clamped(self, clean_binary):
        answers, truth = clean_binary
        wrong = {2: int(1 - truth[2])}
        result = create("ZC", seed=0).fit(answers, golden=wrong)
        assert result.truths[2] == wrong[2]

    def test_initial_quality_used_for_first_estimate(self, clean_binary):
        answers, _ = clean_binary
        # Tell ZC the spammer (worker 7) is the only good worker: with a
        # single iteration the inferred truths must tilt toward worker
        # 7's answers compared to the uninitialised run.
        quality = np.full(answers.n_workers, 0.2)
        quality[7] = 0.99
        poisoned = create("ZC", seed=0, max_iter=1).fit(
            answers, initial_quality=quality)
        neutral = create("ZC", seed=0, max_iter=1).fit(answers)
        idx = answers.answers_of_worker(7)
        w7_agreement_poisoned = (
            poisoned.truths[answers.tasks[idx]] == answers.values[idx]
        ).mean()
        w7_agreement_neutral = (
            neutral.truths[answers.tasks[idx]] == answers.values[idx]
        ).mean()
        assert w7_agreement_poisoned > w7_agreement_neutral

    def test_converges(self, clean_binary):
        answers, _ = clean_binary
        result = create("ZC", seed=0).fit(answers)
        assert result.converged
