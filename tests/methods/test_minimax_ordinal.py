"""Tests for the ordinal minimax extension (Zhou et al. 2014)."""

import numpy as np

from repro.core import create
from repro.core.answers import AnswerSet
from repro.core.tasktypes import TaskType
from repro.metrics import accuracy


def ordinal_dataset(seed=0, n_tasks=250, n_choices=4, adjacent_error=0.35):
    """Workers whose mistakes are strictly adjacent in the ordering."""
    rng = np.random.default_rng(seed)
    truth = rng.integers(0, n_choices, size=n_tasks)
    tasks, workers, values = [], [], []
    for task in range(n_tasks):
        for worker in rng.choice(10, size=5, replace=False):
            answer = truth[task]
            if rng.random() < adjacent_error:
                step = rng.choice([-1, 1])
                answer = int(np.clip(answer + step, 0, n_choices - 1))
            tasks.append(task)
            workers.append(int(worker))
            values.append(int(answer))
    answers = AnswerSet(tasks, workers, values, TaskType.SINGLE_CHOICE,
                        n_choices=n_choices, n_tasks=n_tasks, n_workers=10)
    return answers, truth


class TestMinimaxOrdinal:
    def test_is_extension(self):
        method = create("Minimax-Ord")
        assert method.is_extension

    def test_beats_chance_on_ordinal_data(self):
        answers, truth = ordinal_dataset()
        result = create("Minimax-Ord", seed=0).fit(answers)
        assert accuracy(truth, result.truths) > 0.6

    def test_parameter_shapes(self):
        answers, _ = ordinal_dataset()
        result = create("Minimax-Ord", seed=0).fit(answers)
        assert result.extras["omega"].shape == (10, 3, 2, 2)
        assert result.extras["sigma"].shape == (10, 4, 4)

    def test_competitive_with_plain_minimax_on_ordinal_data(self):
        answers, truth = ordinal_dataset(adjacent_error=0.45)
        plain = create("Minimax", seed=0, max_iter=8).fit(answers)
        ordinal = create("Minimax-Ord", seed=0, max_iter=8).fit(answers)
        plain_acc = accuracy(truth, plain.truths)
        ordinal_acc = accuracy(truth, ordinal.truths)
        # The tied parameterisation must not lose noticeably where its
        # inductive bias matches the data.
        assert ordinal_acc > plain_acc - 0.05

    def test_fewer_parameters_than_plain_minimax(self):
        answers, _ = ordinal_dataset(n_choices=4)
        result = create("Minimax-Ord", seed=0).fit(answers)
        # 4(l-1) = 12 parameters per worker vs l^2 = 16 for plain sigma.
        assert result.extras["omega"][0].size < 16

    def test_golden_respected(self):
        answers, truth = ordinal_dataset()
        wrong = {0: int((truth[0] + 2) % 4)}
        result = create("Minimax-Ord", seed=0).fit(answers, golden=wrong)
        assert result.truths[0] == wrong[0]

    def test_binary_degenerates_to_single_split(self):
        rng = np.random.default_rng(1)
        truth = rng.integers(0, 2, size=100)
        tasks = np.repeat(np.arange(100), 3)
        workers = np.tile(np.arange(3), 100)
        flip = rng.random(300) < 0.2
        values = np.where(flip, 1 - truth[tasks], truth[tasks])
        answers = AnswerSet(tasks, workers, values,
                            TaskType.DECISION_MAKING)
        result = create("Minimax-Ord", seed=0).fit(answers)
        assert result.extras["omega"].shape == (3, 1, 2, 2)
        assert accuracy(truth, result.truths) > 0.85
