"""PM tests, including the paper's Section 3 running example."""

import numpy as np
import pytest

from repro.core import create
from repro.core.answers import AnswerSet
from repro.core.tasktypes import TaskType


class TestPaperRunningExample:
    """Replays the worked example of the paper's Section 3 (Table 2).

    The example hinges on the random tie at t1 (one T, one F): the
    paper's walk-through breaks it toward T, after which w3 emerges as
    the best worker and t6 flips to T.  Breaking it toward F instead
    reaches the all-F fixed point.  We therefore check that the paper's
    outcome is reached (for the seeds that break the tie the paper's
    way) and that its qualitative conclusions hold whenever it is.
    """

    @staticmethod
    def _paper_runs(paper_example, n_seeds=30):
        runs = [create("PM", seed=seed).fit(paper_example)
                for seed in range(n_seeds)]
        return [r for r in runs
                if list(r.truths) == [1, 0, 0, 0, 0, 1]]

    def test_paper_fixed_point_is_reachable(self, paper_example):
        # Paper: "In the converged results, the truth are v*_1 = v*_6 =
        # T, and v*_i = F (2 <= i <= 5)".
        assert self._paper_runs(paper_example)

    def test_w3_has_highest_quality(self, paper_example):
        # Paper: "w3 has a higher quality compared with w1 and w2".
        for result in self._paper_runs(paper_example):
            q = result.worker_quality
            assert q[2] > q[1]
            assert q[2] > q[0]

    def test_iteration_one_quality_ordering(self, paper_example):
        # With the t1 tie broken toward T, the paper computes first-
        # iteration mistake counts 3, 2, 1 for w1, w2, w3 and qualities
        # 0 < 0.41 < 1.10.  The ordering must hold (exact values depend
        # on the regulariser).
        for seed in range(30):
            result = create("PM", seed=seed, max_iter=1).fit(paper_example)
            if list(result.truths[1:]) == [0, 0, 0, 0, 0] and \
                    result.truths[0] == 1:
                q = result.worker_quality
                assert q[2] > q[1] > q[0]
                return
        raise AssertionError("no seed broke the t1 tie toward T")


class TestPMCategorical:
    def test_weights_are_nonnegative(self, clean_binary):
        answers, _ = clean_binary
        result = create("PM", seed=0).fit(answers)
        assert (result.worker_quality >= 0).all()

    def test_worst_worker_gets_lowest_weight(self, clean_binary):
        answers, _ = clean_binary
        result = create("PM", seed=0).fit(answers)
        assert result.worker_quality.argmin() == 7  # the 35% worker

    def test_golden_tasks_respected(self, clean_binary):
        answers, truth = clean_binary
        golden = {0: int(1 - truth[0])}  # deliberately wrong golden label
        result = create("PM", seed=0).fit(answers, golden=golden)
        assert result.truths[0] == golden[0]

    def test_initial_quality_changes_first_iteration(self, paper_example):
        baseline = create("PM", seed=0, max_iter=1).fit(paper_example)
        boosted = create("PM", seed=0, max_iter=1).fit(
            paper_example,
            initial_quality=np.array([0.99, 0.05, 0.05]),
        )
        assert not np.array_equal(baseline.truths, boosted.truths) or \
            not np.allclose(baseline.worker_quality, boosted.worker_quality)

    def test_invalid_regularization_rejected(self):
        with pytest.raises(ValueError):
            create("PM", regularization=0.0)


class TestPMNumeric:
    def test_downweights_the_outlier_worker(self):
        # Three workers: two mildly noisy around the truth, one offset
        # by +6.  The plain mean is off by 2; PM must discount the
        # offset worker and do clearly better.
        rng = np.random.default_rng(0)
        n_tasks = 40
        truth = rng.uniform(0, 10, size=n_tasks)
        tasks = np.repeat(np.arange(n_tasks), 3)
        workers = np.tile([0, 1, 2], n_tasks)
        noise = rng.normal(0, 0.3, size=3 * n_tasks)
        values = truth[tasks] + noise
        offset_edges = workers == 2
        values[offset_edges] += 6.0
        answers = AnswerSet(tasks, workers, values, TaskType.NUMERIC)
        result = create("PM", seed=0).fit(answers)
        mean_error = np.abs(values.reshape(-1, 3).mean(axis=1) - truth).mean()
        pm_error = np.abs(result.truths - truth).mean()
        assert pm_error < mean_error * 0.6
        assert result.worker_quality[2] < result.worker_quality[0]

    def test_numeric_golden_respected(self, clean_numeric):
        answers, truth, _ = clean_numeric
        result = create("PM", seed=0).fit(answers, golden={3: 123.0})
        assert result.truths[3] == 123.0
