"""Mean, Median, LFC_N and CATD-numeric behaviour tests."""

import numpy as np
import pytest

from repro.core import create
from repro.core.answers import AnswerSet
from repro.core.tasktypes import TaskType
from repro.metrics import rmse


class TestMeanMedian:
    def test_mean_matches_numpy(self, clean_numeric):
        answers, _, _ = clean_numeric
        result = create("Mean", seed=0).fit(answers)
        for task in [0, 10, 50]:
            idx = answers.answers_of_task(task)
            assert result.truths[task] == pytest.approx(
                answers.values[idx].mean())

    def test_median_robust_to_outlier(self):
        tasks = [0, 0, 0, 0, 0]
        workers = [0, 1, 2, 3, 4]
        values = [10.0, 10.5, 9.5, 10.2, 1e6]
        answers = AnswerSet(tasks, workers, values, TaskType.NUMERIC)
        mean_r = create("Mean").fit(answers)
        median_r = create("Median").fit(answers)
        assert abs(median_r.truths[0] - 10.0) < 1.0
        assert mean_r.truths[0] > 1000

    def test_worker_rmse_reported(self, clean_numeric):
        answers, _, sigmas = clean_numeric
        result = create("Mean", seed=0).fit(answers)
        worker_rmse = result.extras["worker_rmse"]
        # The noisiest worker (sigma 15) shows the largest RMSE.
        assert worker_rmse.argmax() == len(sigmas) - 1


class TestLFCNumeric:
    def test_variance_estimates_ordered(self, clean_numeric):
        answers, _, sigmas = clean_numeric
        result = create("LFC_N", seed=0).fit(answers)
        variance = result.extras["worker_variance"]
        # Estimated variances should correlate with the true sigmas.
        order = np.argsort(variance)
        assert order[0] in (0, 1)
        assert order[-1] == len(sigmas) - 1

    def test_beats_mean_under_heterogeneous_noise(self, clean_numeric):
        """With genuinely different worker variances, precision
        weighting must win — the flip side of the paper's N_Emotion
        finding (where variances are homogeneous and Mean wins)."""
        answers, truth, _ = clean_numeric
        mean_error = rmse(truth, create("Mean").fit(answers).truths)
        lfc_error = rmse(truth, create("LFC_N", seed=0).fit(answers).truths)
        assert lfc_error < mean_error

    def test_golden_respected(self, clean_numeric):
        answers, _, _ = clean_numeric
        result = create("LFC_N", seed=0).fit(answers, golden={0: -500.0})
        assert result.truths[0] == -500.0

    def test_variance_floor_enforced(self):
        # Perfectly agreeing workers would give zero variance.
        tasks = np.repeat(np.arange(10), 3)
        workers = np.tile(np.arange(3), 10)
        values = np.ones(30) * 5.0
        answers = AnswerSet(tasks, workers, values, TaskType.NUMERIC)
        result = create("LFC_N", seed=0).fit(answers)
        assert (result.extras["worker_variance"] > 0).all()


class TestCATDNumeric:
    def test_chi_square_coefficient_grows_with_activity(self, clean_numeric):
        answers, _, _ = clean_numeric
        result = create("CATD", seed=0).fit(answers)
        coeff = result.extras["chi_square_coefficient"]
        counts = answers.worker_answer_counts()
        assert (np.argsort(coeff) == np.argsort(counts)).all() or \
            np.corrcoef(coeff, counts)[0, 1] > 0.99

    def test_invalid_confidence_rejected(self):
        with pytest.raises(ValueError):
            create("CATD", confidence=0.3)

    def test_error_finite(self, clean_numeric):
        answers, truth, _ = clean_numeric
        result = create("CATD", seed=0).fit(answers)
        assert np.isfinite(rmse(truth, result.truths))
