"""Minimax-entropy tests."""

import numpy as np
import pytest

from repro.core import create
from repro.metrics import accuracy


class TestMinimax:
    def test_accuracy_on_clean_data(self, clean_binary):
        answers, truth = clean_binary
        result = create("Minimax", seed=0).fit(answers)
        assert accuracy(truth, result.truths) > 0.8

    def test_parameters_exposed(self, clean_binary):
        answers, _ = clean_binary
        result = create("Minimax", seed=0).fit(answers)
        assert result.extras["tau"].shape == (answers.n_tasks, 2)
        assert result.extras["sigma"].shape == (answers.n_workers, 2, 2)

    def test_quality_ranks_workers(self, clean_binary):
        answers, _ = clean_binary
        result = create("Minimax", seed=0).fit(answers)
        assert result.worker_quality[0] > result.worker_quality[7]

    def test_single_choice_supported(self, clean_single_choice):
        answers, truth = clean_single_choice
        result = create("Minimax", seed=0).fit(answers)
        assert accuracy(truth, result.truths) > 0.5

    def test_golden_respected(self, clean_binary):
        answers, truth = clean_binary
        wrong = {9: int(1 - truth[9])}
        result = create("Minimax", seed=0).fit(answers, golden=wrong)
        assert result.truths[9] == wrong[9]

    def test_invalid_temper_rejected(self):
        with pytest.raises(ValueError):
            create("Minimax", prior_temper=1.5)

    def test_iteration_cap_low_by_default(self):
        # Minimax is the slowest method in Table 6; the default cap
        # keeps a full run tractable.
        assert create("Minimax").max_iter <= 25

    def test_parameters_stay_finite(self, clean_binary):
        answers, _ = clean_binary
        result = create("Minimax", seed=0).fit(answers)
        assert np.isfinite(result.extras["tau"]).all()
        assert np.isfinite(result.extras["sigma"]).all()
