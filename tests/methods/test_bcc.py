"""BCC and CBCC sampling-method tests."""

import numpy as np
import pytest

from repro.core import create
from repro.metrics import accuracy


class TestBCC:
    def test_close_to_ds_on_clean_data(self, clean_binary):
        """The survey's Table 6 finding: BCC and D&S land together."""
        answers, truth = clean_binary
        ds = accuracy(truth, create("D&S", seed=0).fit(answers).truths)
        bcc = accuracy(truth, create("BCC", seed=0).fit(answers).truths)
        assert abs(ds - bcc) < 0.05

    def test_posterior_reflects_sampling_uncertainty(self, clean_binary):
        answers, _ = clean_binary
        result = create("BCC", seed=0).fit(answers)
        # The tallied posterior should not be fully degenerate.
        assert ((result.posterior > 0.0) & (result.posterior < 1.0)).any()

    def test_mean_confusion_exposed(self, clean_binary):
        answers, _ = clean_binary
        result = create("BCC", seed=0).fit(answers)
        confusion = result.extras["confusion"]
        assert confusion.shape == (answers.n_workers, 2, 2)
        np.testing.assert_allclose(confusion.sum(axis=2), 1.0, atol=1e-6)

    def test_golden_respected(self, clean_binary):
        answers, truth = clean_binary
        wrong = {7: int(1 - truth[7])}
        result = create("BCC", seed=0).fit(answers, golden=wrong)
        assert result.truths[7] == wrong[7]

    def test_invalid_hyperparameters_rejected(self):
        with pytest.raises(ValueError):
            create("BCC", alpha_diagonal=0.0)
        with pytest.raises(ValueError):
            create("BCC", n_samples=0)

    def test_sweep_count_reported(self, clean_binary):
        answers, _ = clean_binary
        result = create("BCC", seed=0, n_samples=10, burn_in=5).fit(answers)
        assert result.n_iterations == 15


class TestCBCC:
    def test_community_assignment_exposed(self, clean_binary):
        answers, _ = clean_binary
        result = create("CBCC", seed=0, n_communities=3).fit(answers)
        community = result.extras["community"]
        assert community.shape == (answers.n_workers,)
        assert community.min() >= 0
        assert community.max() < 3

    def test_single_community_close_to_pooled(self, clean_binary):
        answers, truth = clean_binary
        result = create("CBCC", seed=0, n_communities=1).fit(answers)
        assert accuracy(truth, result.truths) > 0.85

    def test_spammer_separated_from_experts(self):
        """With a clear two-tier pool, CBCC puts tiers in different
        communities."""
        from repro.core.answers import AnswerSet
        from repro.core.tasktypes import TaskType

        rng = np.random.default_rng(4)
        n_tasks = 300
        truth = rng.integers(0, 2, n_tasks)
        accuracies = [0.95] * 4 + [0.50] * 4
        tasks, workers, values = [], [], []
        for task in range(n_tasks):
            for worker in range(8):
                correct = rng.random() < accuracies[worker]
                tasks.append(task)
                workers.append(worker)
                values.append(int(truth[task] if correct else 1 - truth[task]))
        answers = AnswerSet(tasks, workers, values,
                            TaskType.DECISION_MAKING,
                            n_tasks=n_tasks, n_workers=8)
        result = create("CBCC", seed=0, n_communities=2).fit(answers)
        community = result.extras["community"]
        experts = set(community[:4])
        spammers = set(community[4:])
        assert len(experts) == 1
        assert experts != spammers or len(spammers) > 1

    def test_invalid_communities_rejected(self):
        with pytest.raises(ValueError):
            create("CBCC", n_communities=0)

    def test_accuracy_reasonable(self, clean_binary):
        answers, truth = clean_binary
        result = create("CBCC", seed=0).fit(answers)
        assert accuracy(truth, result.truths) > 0.85
