"""Majority-voting tests, including the paper's Section 3 discussion."""

import numpy as np

from repro.core import create
from repro.metrics import accuracy


class TestMajorityVoting:
    def test_paper_example_majority_choices(self, paper_example):
        # Paper: "the truth derived by MV is v*_i = F for 2<=i<=6 and it
        # randomly infers v*_1 to break the tie" — and MV therefore gets
        # v*_6 wrong.
        result = create("MV", seed=0).fit(paper_example)
        assert list(result.truths[1:6]) == [0, 0, 0, 0, 0]

    def test_tie_breaking_is_random_across_seeds(self, paper_example):
        outcomes = {
            create("MV", seed=seed).fit(paper_example).truths[0]
            for seed in range(30)
        }
        assert outcomes == {0, 1}

    def test_deterministic_mode_breaks_ties_low(self, paper_example):
        method = create("MV", seed=0, random_ties=False)
        assert method.fit(paper_example).truths[0] == 0

    def test_unanimous_answers_win(self, clean_binary):
        answers, truth = clean_binary
        result = create("MV", seed=0).fit(answers)
        counts = answers.vote_counts()
        unanimous = (counts > 0).sum(axis=1) == 1
        chosen = counts.argmax(axis=1)
        np.testing.assert_array_equal(result.truths[unanimous],
                                      chosen[unanimous])

    def test_mv_quality_is_agreement_rate(self, paper_example):
        result = create("MV", seed=0, random_ties=False).fit(paper_example)
        # w2 agrees with the (deterministic) majority on 3 of 5 answers.
        assert result.worker_quality[1] == 3 / 5

    def test_mv_decent_on_clean_data(self, clean_binary):
        answers, truth = clean_binary
        result = create("MV", seed=0).fit(answers)
        assert accuracy(truth, result.truths) > 0.85

    def test_zero_iterations_reported(self, clean_binary):
        answers, _ = clean_binary
        result = create("MV", seed=0).fit(answers)
        assert result.n_iterations == 0
        assert result.converged
