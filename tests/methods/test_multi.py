"""Multi (Welinder et al.) latent-space model tests."""

import numpy as np
import pytest

from repro.core import create
from repro.metrics import accuracy


class TestMulti:
    def test_latent_parameters_exposed(self, clean_binary):
        answers, _ = clean_binary
        result = create("Multi", seed=0, n_topics=3).fit(answers)
        assert result.extras["task_embedding"].shape == (answers.n_tasks, 3)
        assert result.extras["worker_direction"].shape == (answers.n_workers, 3)
        assert result.extras["worker_bias"].shape == (answers.n_workers,)
        assert result.extras["worker_variance"].shape == (answers.n_workers,)

    def test_class_coordinate_separates_labels(self, clean_binary):
        answers, _ = clean_binary
        result = create("Multi", seed=0).fit(answers)
        x0 = result.extras["task_embedding"][:, 0]
        predicted_true = result.truths == 1
        assert x0[predicted_true].mean() > x0[~predicted_true].mean()

    def test_accuracy_on_clean_data(self, clean_binary):
        answers, truth = clean_binary
        result = create("Multi", seed=0).fit(answers)
        assert accuracy(truth, result.truths) > 0.8

    def test_survives_imbalanced_truth(self, small_product):
        """Regression test: the worker-bias term must not absorb class
        imbalance (predicting far more positives than exist)."""
        result = create("Multi", seed=0).fit(small_product.answers)
        predicted_rate = (result.truths == 1).mean()
        true_rate = (small_product.truth == 1).mean()
        assert predicted_rate < 2.5 * true_rate + 0.05

    def test_invalid_topics_rejected(self):
        with pytest.raises(ValueError):
            create("Multi", n_topics=0)

    def test_worker_variance_positive(self, clean_binary):
        answers, _ = clean_binary
        result = create("Multi", seed=0).fit(answers)
        assert (result.extras["worker_variance"] > 0).all()
