"""Protocol contracts: golden clamping and qualification initialisation
must behave identically across every method that declares support."""

import numpy as np
import pytest

from repro.core import available_methods, create, methods_for_task_type
from repro.core.tasktypes import TaskType

BINARY = set(methods_for_task_type(TaskType.DECISION_MAKING,
                                   include_extensions=True))
NUMERIC = set(methods_for_task_type(TaskType.NUMERIC))

GOLDEN_BINARY = sorted(
    name for name in BINARY if create(name).supports_golden)
GOLDEN_NUMERIC = sorted(
    name for name in NUMERIC if create(name).supports_golden)
QUALIFIABLE_BINARY = sorted(
    name for name in BINARY if create(name).supports_initial_quality)


@pytest.mark.parametrize("name", GOLDEN_BINARY)
class TestGoldenContractCategorical:
    def test_every_golden_task_clamped(self, clean_binary, name):
        answers, truth = clean_binary
        golden = {t: int(1 - truth[t]) for t in (0, 7, 42)}  # wrong on purpose
        result = create(name, seed=0).fit(answers, golden=golden)
        for task, label in golden.items():
            assert result.truths[task] == label, name

    def test_golden_improves_or_preserves_rest(self, clean_binary, name):
        """Clamping *correct* golden truths must not wreck the rest."""
        answers, truth = clean_binary
        golden = {t: int(truth[t]) for t in range(0, 60, 3)}
        plain = create(name, seed=0).fit(answers)
        clamped = create(name, seed=0).fit(answers, golden=golden)
        mask = np.ones(answers.n_tasks, dtype=bool)
        mask[list(golden)] = False
        from repro.metrics import accuracy

        plain_acc = accuracy(truth, plain.truths, mask)
        clamped_acc = accuracy(truth, clamped.truths, mask)
        assert clamped_acc >= plain_acc - 0.05, name


@pytest.mark.parametrize("name", GOLDEN_NUMERIC)
def test_golden_contract_numeric(clean_numeric, name):
    answers, truth, _ = clean_numeric
    golden = {0: 1234.5, 10: -999.0}
    result = create(name, seed=0).fit(answers, golden=golden)
    for task, value in golden.items():
        assert result.truths[task] == value, name


@pytest.mark.parametrize("name", QUALIFIABLE_BINARY)
class TestQualificationContract:
    def test_accepts_boundary_qualities(self, clean_binary, name):
        """Accuracies of exactly 0 and 1 must not produce NaNs."""
        answers, _ = clean_binary
        quality = np.linspace(0.0, 1.0, answers.n_workers)
        result = create(name, seed=0).fit(answers, initial_quality=quality)
        assert np.isfinite(result.worker_quality).all(), name
        if result.posterior is not None:
            assert np.isfinite(result.posterior).all(), name

    def test_good_initialisation_does_not_hurt(self, clean_binary, name):
        """Initialising with the *true* accuracies must not degrade the
        converged quality by more than noise."""
        answers, truth = clean_binary
        true_acc = np.array([0.95, 0.9, 0.85, 0.8, 0.75, 0.7, 0.6, 0.35])
        from repro.metrics import accuracy

        plain = accuracy(truth, create(name, seed=0).fit(answers).truths)
        informed = accuracy(truth, create(name, seed=0).fit(
            answers, initial_quality=true_acc).truths)
        assert informed >= plain - 0.03, name


class TestExtensionSetConsistency:
    def test_every_registered_method_instantiable_and_tagged(self):
        for name in available_methods():
            method = create(name)
            assert isinstance(method.is_extension, bool)
            assert method.name == name

    def test_paper_harness_never_sees_extensions(self):
        for task_type in TaskType:
            names = methods_for_task_type(task_type)
            for name in names:
                assert not create(name).is_extension
