"""Contract tests every method must pass, parametrised over all 17."""

import numpy as np
import pytest

from repro.core import create, methods_for_task_type
from repro.core.answers import AnswerSet
from repro.core.tasktypes import TaskType
from repro.metrics import accuracy, rmse

BINARY_METHODS = sorted(methods_for_task_type(TaskType.DECISION_MAKING))
SINGLE_METHODS = sorted(methods_for_task_type(TaskType.SINGLE_CHOICE))
NUMERIC_METHODS = sorted(methods_for_task_type(TaskType.NUMERIC))


@pytest.mark.parametrize("name", BINARY_METHODS)
class TestBinaryContract:
    def test_output_shapes(self, clean_binary, name):
        answers, _ = clean_binary
        result = create(name, seed=0).fit(answers)
        assert result.truths.shape == (answers.n_tasks,)
        assert result.worker_quality.shape == (answers.n_workers,)
        assert set(np.unique(result.truths)) <= {0, 1}

    def test_posterior_is_valid_distribution(self, clean_binary, name):
        answers, _ = clean_binary
        result = create(name, seed=0).fit(answers)
        if result.posterior is None:
            pytest.skip(f"{name} does not expose a posterior")
        assert result.posterior.shape == (answers.n_tasks, 2)
        assert (result.posterior >= -1e-9).all()
        np.testing.assert_allclose(result.posterior.sum(axis=1), 1.0,
                                   atol=1e-6)

    def test_beats_chance_on_clean_data(self, clean_binary, name):
        answers, truth = clean_binary
        result = create(name, seed=0).fit(answers)
        assert accuracy(truth, result.truths) > 0.7

    def test_worker_quality_finite(self, clean_binary, name):
        answers, _ = clean_binary
        result = create(name, seed=0).fit(answers)
        assert np.isfinite(result.worker_quality).all()

    def test_recovers_truth_with_perfect_workers(self, name):
        rng = np.random.default_rng(5)
        n_tasks = 80
        truth = rng.integers(0, 2, size=n_tasks)
        tasks, workers, values = [], [], []
        for task in range(n_tasks):
            for worker in range(4):
                tasks.append(task)
                workers.append(worker)
                values.append(int(truth[task]))
        answers = AnswerSet(tasks, workers, values,
                            TaskType.DECISION_MAKING,
                            n_tasks=n_tasks, n_workers=4)
        result = create(name, seed=0).fit(answers)
        assert accuracy(truth, result.truths) == 1.0


@pytest.mark.parametrize("name", SINGLE_METHODS)
class TestSingleChoiceContract:
    def test_output_labels_in_range(self, clean_single_choice, name):
        answers, _ = clean_single_choice
        result = create(name, seed=0).fit(answers)
        assert result.truths.min() >= 0
        assert result.truths.max() < answers.n_choices

    def test_beats_chance(self, clean_single_choice, name):
        answers, truth = clean_single_choice
        result = create(name, seed=0).fit(answers)
        assert accuracy(truth, result.truths) > 0.5  # chance is 0.25


@pytest.mark.parametrize("name", NUMERIC_METHODS)
class TestNumericContract:
    def test_output_shapes(self, clean_numeric, name):
        answers, _, _ = clean_numeric
        result = create(name, seed=0).fit(answers)
        assert result.truths.shape == (answers.n_tasks,)
        assert result.truths.dtype == np.float64
        assert np.isfinite(result.truths).all()

    def test_error_below_single_worker(self, clean_numeric, name):
        # Aggregation must beat the average individual worker.
        answers, truth, sigmas = clean_numeric
        result = create(name, seed=0).fit(answers)
        assert rmse(truth, result.truths) < sigmas.mean()

    def test_exact_recovery_with_noiseless_workers(self, name):
        rng = np.random.default_rng(3)
        truth = rng.uniform(-10, 10, size=40)
        tasks = np.repeat(np.arange(40), 3)
        workers = np.tile(np.arange(3), 40)
        values = truth[tasks]
        answers = AnswerSet(tasks, workers, values, TaskType.NUMERIC)
        result = create(name, seed=0).fit(answers)
        np.testing.assert_allclose(result.truths, truth, atol=1e-6)


@pytest.mark.parametrize("name", BINARY_METHODS)
def test_single_answer_per_task_still_works(name):
    """Redundancy 1 is the leftmost point of Figures 4–6."""
    rng = np.random.default_rng(9)
    n_tasks = 60
    truth = rng.integers(0, 2, size=n_tasks)
    tasks = np.arange(n_tasks)
    workers = rng.integers(0, 5, size=n_tasks)
    flip = rng.random(n_tasks) < 0.2
    values = np.where(flip, 1 - truth, truth)
    answers = AnswerSet(tasks, workers, values, TaskType.DECISION_MAKING,
                        n_tasks=n_tasks, n_workers=5)
    result = create(name, seed=0).fit(answers)
    assert result.truths.shape == (n_tasks,)


@pytest.mark.parametrize("name", BINARY_METHODS)
def test_worker_quality_ranks_good_above_bad(clean_binary, name):
    """All worker models should rank a 95% worker above a 35% worker."""
    answers, _ = clean_binary
    result = create(name, seed=0).fit(answers)
    # Workers 0 (acc 0.95) vs 7 (acc 0.35) from the fixture.
    assert result.worker_quality[0] > result.worker_quality[7]
