"""Dawid & Skene (and shared confusion-matrix EM) tests."""

import numpy as np

from repro.core import create
from repro.core.answers import AnswerSet
from repro.core.tasktypes import TaskType
from repro.metrics import accuracy
from repro.methods.dawid_skene import initial_confusion_from_quality


class TestInitialConfusion:
    def test_diagonal_matches_quality(self):
        confusion = initial_confusion_from_quality(np.array([0.8, 0.6]), 4)
        np.testing.assert_allclose(confusion[0].diagonal(), 0.8)
        np.testing.assert_allclose(confusion[1].diagonal(), 0.6)

    def test_rows_sum_to_one(self):
        confusion = initial_confusion_from_quality(np.array([0.9, 0.2]), 3)
        np.testing.assert_allclose(confusion.sum(axis=2), 1.0)

    def test_extreme_qualities_clipped(self):
        confusion = initial_confusion_from_quality(np.array([0.0, 1.0]), 2)
        assert (confusion > 0).all()


class TestDawidSkene:
    def test_confusion_matrices_exposed(self, clean_binary):
        answers, _ = clean_binary
        result = create("D&S", seed=0).fit(answers)
        confusion = result.extras["confusion"]
        assert confusion.shape == (answers.n_workers, 2, 2)
        np.testing.assert_allclose(confusion.sum(axis=2), 1.0, atol=1e-9)

    def test_estimated_confusion_tracks_true_accuracy(self, clean_binary):
        answers, _ = clean_binary
        result = create("D&S", seed=0).fit(answers)
        diag = result.extras["confusion"].diagonal(axis1=1, axis2=2)
        mean_diag = diag.mean(axis=1)
        # Fixture accuracies: worker 0 = 0.95 ... worker 7 = 0.35.
        assert mean_diag[0] > 0.85
        assert mean_diag[7] < 0.55

    def test_class_prior_estimated(self, clean_binary):
        answers, truth = clean_binary
        result = create("D&S", seed=0).fit(answers)
        prior = result.extras["class_prior"]
        assert abs(prior[1] - truth.mean()) < 0.1

    def test_beats_mv_with_spammy_pool(self):
        """D&S's core claim: identify the good workers and beat MV."""
        rng = np.random.default_rng(17)
        n_tasks = 400
        truth = rng.integers(0, 2, size=n_tasks)
        accuracies = [0.95, 0.95, 0.5, 0.5, 0.5, 0.5, 0.5]
        tasks, workers, values = [], [], []
        for task in range(n_tasks):
            for worker in rng.choice(7, size=5, replace=False):
                correct = rng.random() < accuracies[worker]
                tasks.append(task)
                workers.append(int(worker))
                values.append(int(truth[task] if correct else 1 - truth[task]))
        answers = AnswerSet(tasks, workers, values,
                            TaskType.DECISION_MAKING,
                            n_tasks=n_tasks, n_workers=7)
        mv = accuracy(truth, create("MV", seed=0).fit(answers).truths)
        ds = accuracy(truth, create("D&S", seed=0).fit(answers).truths)
        assert ds > mv

    def test_golden_clamped_through_iterations(self, clean_binary):
        answers, truth = clean_binary
        wrong = {5: int(1 - truth[5])}
        result = create("D&S", seed=0).fit(answers, golden=wrong)
        assert result.truths[5] == wrong[5]
        np.testing.assert_allclose(result.posterior[5, wrong[5]], 1.0)

    def test_qualification_initialisation_accepted(self, clean_binary):
        answers, truth = clean_binary
        quality = np.full(answers.n_workers, 0.8)
        result = create("D&S", seed=0).fit(answers, initial_quality=quality)
        assert accuracy(truth, result.truths) > 0.85

    def test_converges_before_cap(self, clean_binary):
        answers, _ = clean_binary
        result = create("D&S", seed=0).fit(answers)
        assert result.converged
        assert result.n_iterations < 100


class TestLFC:
    def test_prior_strength_zero_matches_ds_closely(self, clean_binary):
        answers, _ = clean_binary
        ds = create("D&S", seed=0).fit(answers)
        lfc = create("LFC", seed=0, prior_strength=0.01,
                     diagonal_bonus=0.0).fit(answers)
        assert (ds.truths == lfc.truths).mean() > 0.97

    def test_negative_prior_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            create("LFC", prior_strength=-1.0)

    def test_diagonal_bonus_biases_toward_trust(self, clean_binary):
        answers, _ = clean_binary
        strong = create("LFC", seed=0, prior_strength=0.1,
                        diagonal_bonus=20.0).fit(answers)
        weak = create("LFC", seed=0, prior_strength=0.1,
                      diagonal_bonus=0.0).fit(answers)
        # A massive diagonal prior drags every worker's estimated
        # accuracy upward relative to the unbiased estimate.
        assert strong.worker_quality.mean() > weak.worker_quality.mean()
