"""GLAD tests: ability × difficulty model."""

import numpy as np

from repro.core import create
from repro.core.answers import AnswerSet
from repro.core.tasktypes import TaskType
from repro.metrics import accuracy


def _dataset_with_difficulty(seed=0):
    """Half the tasks are easy (everyone right), half hard (coin flips)."""
    rng = np.random.default_rng(seed)
    n_tasks, n_workers = 200, 8
    truth = rng.integers(0, 2, size=n_tasks)
    hard = np.zeros(n_tasks, dtype=bool)
    hard[: n_tasks // 2] = True
    tasks, workers, values = [], [], []
    for task in range(n_tasks):
        for worker in rng.choice(n_workers, size=5, replace=False):
            p_correct = 0.55 if hard[task] else 0.95
            correct = rng.random() < p_correct
            tasks.append(task)
            workers.append(int(worker))
            values.append(int(truth[task] if correct else 1 - truth[task]))
    answers = AnswerSet(tasks, workers, values, TaskType.DECISION_MAKING,
                        n_tasks=n_tasks, n_workers=n_workers)
    return answers, truth, hard


class TestGlad:
    def test_estimates_task_easiness(self):
        answers, truth, hard = _dataset_with_difficulty()
        result = create("GLAD", seed=0).fit(answers)
        easiness = result.extras["task_easiness"]
        assert easiness[~hard].mean() > easiness[hard].mean()

    def test_ability_ranks_workers(self, clean_binary):
        answers, _ = clean_binary
        result = create("GLAD", seed=0).fit(answers)
        assert result.worker_quality[0] > result.worker_quality[7]

    def test_accuracy_reasonable(self, clean_binary):
        answers, truth = clean_binary
        result = create("GLAD", seed=0).fit(answers)
        assert accuracy(truth, result.truths) > 0.85

    def test_golden_respected(self, clean_binary):
        answers, truth = clean_binary
        wrong = {1: int(1 - truth[1])}
        result = create("GLAD", seed=0).fit(answers, golden=wrong)
        assert result.truths[1] == wrong[1]

    def test_initial_quality_maps_to_ability_sign(self, clean_binary):
        answers, _ = clean_binary
        # Accuracy below 0.5 should initialise a negative ability.
        quality = np.full(answers.n_workers, 0.3)
        method = create("GLAD", seed=0, max_iter=1, gradient_steps=0)
        result = method.fit(answers, initial_quality=quality)
        assert (result.worker_quality < 0).all()

    def test_parameters_bounded(self, clean_binary):
        answers, _ = clean_binary
        result = create("GLAD", seed=0).fit(answers)
        assert np.abs(result.worker_quality).max() <= 10.0
        assert result.extras["task_easiness"].max() <= np.exp(5.0) + 1e-9
