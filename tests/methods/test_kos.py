"""KOS message-passing tests."""

import numpy as np
import pytest

from repro.core import create
from repro.metrics import accuracy


class TestKOS:
    def test_spin_scores_exposed(self, clean_binary):
        answers, _ = clean_binary
        result = create("KOS", seed=0).fit(answers)
        scores = result.extras["task_scores"]
        assert scores.shape == (answers.n_tasks,)
        # Scores and labels agree in sign.
        positive = scores > 0
        np.testing.assert_array_equal(result.truths[positive], 1)

    def test_accuracy_on_clean_data(self, clean_binary):
        answers, truth = clean_binary
        result = create("KOS", seed=0).fit(answers)
        assert accuracy(truth, result.truths) > 0.8

    def test_more_rounds_does_not_crash_or_blow_up(self, clean_binary):
        answers, _ = clean_binary
        result = create("KOS", seed=0, n_rounds=40).fit(answers)
        assert np.isfinite(result.extras["task_scores"]).all()

    def test_invalid_rounds_rejected(self):
        with pytest.raises(ValueError):
            create("KOS", n_rounds=0)

    def test_quality_in_unit_interval(self, clean_binary):
        answers, _ = clean_binary
        result = create("KOS", seed=0).fit(answers)
        assert (result.worker_quality >= 0).all()
        assert (result.worker_quality <= 1).all()

    def test_ties_broken_randomly(self):
        # A single task answered T by one worker and F by another is a
        # perfect tie: over seeds both labels must appear.
        from repro.core.answers import AnswerSet
        from repro.core.tasktypes import TaskType

        answers = AnswerSet([0, 0], [0, 1], [1, 0],
                            TaskType.DECISION_MAKING)
        outcomes = {
            int(create("KOS", seed=seed).fit(answers).truths[0])
            for seed in range(40)
        }
        assert outcomes == {0, 1}
