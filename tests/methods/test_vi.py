"""VI-MF / VI-BP (Liu et al.) tests."""

import numpy as np
import pytest

from repro.core import create
from repro.metrics import accuracy


@pytest.mark.parametrize("name", ["VI-MF", "VI-BP"])
class TestVariationalTwoCoin:
    def test_sensitivity_specificity_exposed(self, clean_binary, name):
        answers, _ = clean_binary
        result = create(name, seed=0).fit(answers)
        for key in ("sensitivity", "specificity"):
            values = result.extras[key]
            assert values.shape == (answers.n_workers,)
            assert (values >= 0).all() and (values <= 1).all()

    def test_good_worker_higher_sensitivity(self, clean_binary, name):
        answers, _ = clean_binary
        result = create(name, seed=0).fit(answers)
        assert result.extras["sensitivity"][0] > \
            result.extras["sensitivity"][7]

    def test_accuracy_reasonable(self, clean_binary, name):
        answers, truth = clean_binary
        result = create(name, seed=0).fit(answers)
        assert accuracy(truth, result.truths) > 0.8

    def test_golden_respected(self, clean_binary, name):
        answers, truth = clean_binary
        wrong = {4: int(1 - truth[4])}
        result = create(name, seed=0).fit(answers, golden=wrong)
        assert result.truths[4] == wrong[4]

    def test_invalid_prior_rejected(self, name):
        with pytest.raises(ValueError):
            create(name, prior_a=0.0)

    def test_initial_quality_weights_first_belief(self, clean_binary, name):
        answers, _ = clean_binary
        quality = np.full(answers.n_workers, 0.5)
        result = create(name, seed=0).fit(answers, initial_quality=quality)
        assert result.truths.shape == (answers.n_tasks,)


class TestBPvsMF:
    def test_methods_differ_on_sparse_data(self):
        """BP's cavity counts matter when workers have few answers."""
        from repro.core.answers import AnswerSet
        from repro.core.tasktypes import TaskType

        rng = np.random.default_rng(2)
        n_tasks = 40
        truth = rng.integers(0, 2, n_tasks)
        tasks, workers, values = [], [], []
        for task in range(n_tasks):
            for worker in rng.choice(20, size=3, replace=False):
                correct = rng.random() < 0.7
                tasks.append(task)
                workers.append(int(worker))
                values.append(int(truth[task] if correct else 1 - truth[task]))
        answers = AnswerSet(tasks, workers, values,
                            TaskType.DECISION_MAKING,
                            n_tasks=n_tasks, n_workers=20)
        mf = create("VI-MF", seed=0).fit(answers)
        bp = create("VI-BP", seed=0).fit(answers)
        assert not np.allclose(mf.posterior, bp.posterior)
