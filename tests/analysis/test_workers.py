"""Tests for unsupervised worker-pool analysis."""

import numpy as np

from repro.analysis.workers import (
    detect_inverters,
    detect_label_bias,
    detect_uniform_spammers,
    profile_pool,
)
from repro.core.answers import AnswerSet
from repro.core.tasktypes import TaskType


def pool_with(behaviours, n_tasks=200, n_choices=2, seed=0):
    """Build answers from per-worker behaviour callables."""
    rng = np.random.default_rng(seed)
    truth = rng.integers(0, n_choices, size=n_tasks)
    tasks, workers, values = [], [], []
    for worker, behave in enumerate(behaviours):
        for task in range(n_tasks):
            tasks.append(task)
            workers.append(worker)
            values.append(int(behave(truth[task], rng)))
    task_type = (TaskType.DECISION_MAKING if n_choices == 2
                 else TaskType.SINGLE_CHOICE)
    return AnswerSet(tasks, workers, values, task_type,
                     n_choices=n_choices), truth


def honest(accuracy):
    def behave(truth, rng):
        if rng.random() < accuracy:
            return truth
        return 1 - truth
    return behave


def uniform_spammer(n_choices=2):
    def behave(truth, rng):
        return rng.integers(0, n_choices)
    return behave


def always(label):
    def behave(truth, rng):
        return label
    return behave


def inverter():
    def behave(truth, rng):
        return 1 - truth
    return behave


class TestSpammerDetection:
    def test_uniform_spammer_flagged(self):
        answers, _ = pool_with([honest(0.9)] * 5 + [uniform_spammer()])
        flags = detect_uniform_spammers(answers)
        assert [f.worker for f in flags] == [5]

    def test_honest_pool_clean(self):
        answers, _ = pool_with([honest(0.85)] * 6)
        assert detect_uniform_spammers(answers) == []

    def test_min_answers_respected(self):
        answers, _ = pool_with([honest(0.9)] * 3 + [uniform_spammer()],
                               n_tasks=5)
        assert detect_uniform_spammers(answers, min_answers=10) == []


class TestLabelBiasDetection:
    def test_always_worker_flagged(self):
        answers, _ = pool_with([honest(0.9)] * 4 + [always(1)])
        flags = detect_label_bias(answers)
        assert [f.worker for f in flags] == [4]
        assert "label 1" in flags[0].reason

    def test_balanced_workers_clean(self):
        answers, _ = pool_with([honest(0.8)] * 4)
        assert detect_label_bias(answers) == []


class TestInverterDetection:
    def test_inverter_flagged(self):
        answers, _ = pool_with([honest(0.9)] * 5 + [inverter()])
        flags = detect_inverters(answers)
        assert [f.worker for f in flags] == [5]

    def test_multiclass_returns_empty(self):
        answers, _ = pool_with(
            [lambda t, rng: t] * 3, n_choices=4)
        assert detect_inverters(answers) == []


class TestPoolProfile:
    def test_profile_counts_each_category(self):
        answers, _ = pool_with(
            [honest(0.9)] * 5 + [uniform_spammer(), always(0), inverter()])
        profile = profile_pool(answers)
        assert profile.n_workers == 8
        assert profile.n_active == 8
        flagged = {f.worker for f in (profile.uniform_spammers
                                      + profile.label_biased
                                      + profile.inverters)}
        assert {5, 6, 7} <= flagged
        assert profile.n_flagged >= 3
        assert "pool of 8 workers" in profile.summary()

    def test_clean_pool_profile(self):
        answers, _ = pool_with([honest(0.85)] * 6)
        profile = profile_pool(answers)
        assert profile.n_flagged == 0
        assert profile.mean_agreement > 0.6
