"""Tests for task-level analysis."""

import numpy as np
import pytest

from repro.analysis.tasks import (
    contested_tasks,
    disagreement_report,
    estimate_difficulty_from_result,
    task_entropy,
    underanswered_tasks,
)
from repro.core import create
from repro.core.answers import AnswerSet
from repro.core.tasktypes import TaskType


@pytest.fixture
def mixed_answers():
    """Task 0 unanimous, task 1 split 2-2, task 2 unanswered."""
    return AnswerSet(
        [0, 0, 0, 1, 1, 1, 1],
        [0, 1, 2, 0, 1, 2, 3],
        [1, 1, 1, 0, 0, 1, 1],
        TaskType.DECISION_MAKING,
        n_tasks=3, n_workers=4,
    )


class TestTaskEntropy:
    def test_values(self, mixed_answers):
        entropy = task_entropy(mixed_answers)
        assert entropy[0] == pytest.approx(0.0)
        assert entropy[1] == pytest.approx(1.0)
        assert np.isnan(entropy[2])

    def test_contested_detection(self, mixed_answers):
        assert list(contested_tasks(mixed_answers)) == [1]

    def test_underanswered(self, mixed_answers):
        assert list(underanswered_tasks(mixed_answers, minimum=1)) == [2]
        assert list(underanswered_tasks(mixed_answers, minimum=4)) == [0, 2]


class TestDisagreementReport:
    def test_overruled_and_uncertain(self, clean_binary):
        answers, _ = clean_binary
        result = create("D&S", seed=0).fit(answers)
        report = disagreement_report(answers, result)
        # Plurality and D&S mostly agree on clean data.
        assert len(report.overruled) < answers.n_tasks * 0.2
        assert "overruled" in report.summary()

    def test_requires_posterior(self, clean_numeric):
        answers, _, _ = clean_numeric
        result = create("Mean").fit(answers)
        binary = AnswerSet([0], [0], [1], TaskType.DECISION_MAKING)
        with pytest.raises(ValueError, match="posterior"):
            disagreement_report(binary, result)


class TestDifficultyEstimation:
    def test_glad_easiness_used(self, clean_binary):
        answers, _ = clean_binary
        result = create("GLAD", seed=0).fit(answers)
        difficulty = estimate_difficulty_from_result(answers, result)
        assert difficulty.shape == (answers.n_tasks,)
        assert (difficulty[np.isfinite(difficulty)] >= 0).all()
        assert (difficulty[np.isfinite(difficulty)] <= 1).all()

    def test_fallback_for_methods_without_difficulty(self, clean_binary):
        answers, _ = clean_binary
        result = create("D&S", seed=0).fit(answers)
        difficulty = estimate_difficulty_from_result(answers, result)
        finite = difficulty[np.isfinite(difficulty)]
        assert len(finite) == answers.n_tasks
        assert (finite >= -1e-9).all()

    def test_hard_tasks_score_higher(self):
        """Tasks with deliberately contradictory answers rank harder."""
        rng = np.random.default_rng(0)
        n_tasks = 100
        truth = rng.integers(0, 2, size=n_tasks)
        tasks, workers, values = [], [], []
        for task in range(n_tasks):
            for worker in range(5):
                if task < 50:
                    answer = truth[task]  # easy half
                else:
                    answer = rng.integers(0, 2)  # contested half
                tasks.append(task)
                workers.append(worker)
                values.append(int(answer))
        answers = AnswerSet(tasks, workers, values,
                            TaskType.DECISION_MAKING)
        result = create("D&S", seed=0).fit(answers)
        difficulty = estimate_difficulty_from_result(answers, result)
        assert np.nanmean(difficulty[50:]) > np.nanmean(difficulty[:50])
