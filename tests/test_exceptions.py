"""Exception-hierarchy contracts: one catchable base for everything."""

import pytest

from repro.exceptions import (
    ConvergenceError,
    DatasetError,
    InvalidAnswerSetError,
    ReproError,
    TaskTypeMismatchError,
    UnknownMethodError,
)


class TestHierarchy:
    @pytest.mark.parametrize("exc", [
        ConvergenceError, DatasetError, InvalidAnswerSetError,
        TaskTypeMismatchError, UnknownMethodError,
    ])
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_unknown_method_is_also_key_error(self):
        # Callers using dict-style access can catch KeyError.
        assert issubclass(UnknownMethodError, KeyError)

    def test_api_raises_catchable_base(self):
        from repro import create

        with pytest.raises(ReproError):
            create("definitely-not-a-method")

    def test_answer_validation_catchable_base(self):
        from repro.core.answers import AnswerSet
        from repro.core.tasktypes import TaskType

        with pytest.raises(ReproError):
            AnswerSet([0], [0, 1], [1], TaskType.DECISION_MAKING)
