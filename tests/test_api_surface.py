"""Public API surface: export snapshots and deprecation-shim parity.

Two contracts of the ExecutionPolicy/MethodSpec redesign:

1. The ``__all__`` exports of :mod:`repro` and :mod:`repro.engine` are
   pinned, so a refactor cannot silently drop (or leak) a public name.
2. Every legacy kwarg spelling (``n_shards=``, ``executor=``,
   ``shard_executor=``, ``shard_workers=``, ``method_kwargs=``) still
   works, emits **exactly one** :class:`DeprecationWarning` per call,
   and produces bit-identical results to the ``policy=`` /
   ``MethodSpec`` spelling.
"""

import warnings

import numpy as np
import pytest

import repro
import repro.engine
from repro.core.answers import AnswerSet
from repro.core.policy import ExecutionPolicy, MethodSpec
from repro.core.registry import create
from repro.core.tasktypes import TaskType
from repro.datasets.schema import Dataset
from repro.engine import BatchJob, BatchRunner, InferenceEngine
from repro.experiments.runner import run_grid, run_many, run_method

REPRO_ALL = [
    "AnswerSet",
    "Capabilities",
    "Dataset",
    "ExecutionPlan",
    "ExecutionPolicy",
    "FitStats",
    "InferenceResult",
    "MethodSpec",
    "ReproError",
    "StorePolicy",
    "TaskType",
    "TruthInferenceMethod",
    "__version__",
    "all_paper_datasets",
    "available_methods",
    "capabilities",
    "create",
    "create_all",
    "load_paper_dataset",
    "methods_for_task_type",
]

ENGINE_ALL = [
    "AnswerSource",
    "BatchJob",
    "BatchRunner",
    "CsvAnswerSource",
    "ExecutionPlan",
    "ExecutionPolicy",
    "InferenceEngine",
    "IterableAnswerSource",
    "LineAnswerSource",
    "MethodSpec",
    "ProcessShardRunner",
    "RuntimeLease",
    "RuntimeRegistry",
    "SerialShardSession",
    "ShardRuntime",
    "ShardedInferenceEngine",
    "StorePolicy",
    "StreamingAnswerSet",
    "TaskSchema",
    "get_runtime_registry",
]


class TestExports:
    def test_repro_all_snapshot(self):
        assert repro.__all__ == REPRO_ALL

    def test_engine_all_snapshot(self):
        assert repro.engine.__all__ == ENGINE_ALL

    @pytest.mark.parametrize("module,names", [
        (repro, REPRO_ALL), (repro.engine, ENGINE_ALL)])
    def test_every_export_resolves(self, module, names):
        for name in names:
            assert getattr(module, name) is not None


# ----------------------------------------------------------------------
# Deprecation shims: one warning, bit-identical results
# ----------------------------------------------------------------------
def build_answers(seed=0, n_tasks=40, n_workers=6, n_answers=320):
    rng = np.random.default_rng(seed)
    truth = rng.integers(0, 2, n_tasks)
    acc = rng.uniform(0.55, 0.95, n_workers)
    tasks = rng.integers(0, n_tasks, n_answers)
    workers = rng.integers(0, n_workers, n_answers)
    correct = rng.random(n_answers) < acc[workers]
    values = np.where(correct, truth[tasks], 1 - truth[tasks])
    return AnswerSet(tasks, workers, values, TaskType.DECISION_MAKING,
                     n_tasks=n_tasks, n_workers=n_workers), truth


@pytest.fixture()
def answers():
    return build_answers()[0]


@pytest.fixture()
def dataset():
    answers, truth = build_answers(seed=2)
    return Dataset(name="synthetic", answers=answers, truth=truth)


def one_warning(calling):
    """Run ``calling()`` asserting exactly one DeprecationWarning."""
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        result = calling()
    deprecations = [w for w in caught
                    if issubclass(w.category, DeprecationWarning)]
    assert len(deprecations) == 1, (
        f"expected exactly one DeprecationWarning, got "
        f"{[str(w.message) for w in deprecations]}"
    )
    return result


def assert_identical(a, b):
    assert a.n_iterations == b.n_iterations
    if a.posterior is not None:
        np.testing.assert_array_equal(a.posterior, b.posterior)
    np.testing.assert_array_equal(a.truths, b.truths)
    np.testing.assert_array_equal(a.worker_quality, b.worker_quality)


class TestCreateShims:
    def test_n_shards_kwarg(self, answers):
        legacy = one_warning(lambda: create("D&S", seed=0, n_shards=3))
        modern = create("D&S", seed=0,
                        policy=ExecutionPolicy(n_shards=3,
                                               executor="serial"))
        assert_identical(legacy.fit(answers), modern.fit(answers))

    def test_shard_workers_kwarg(self, answers):
        legacy = one_warning(
            lambda: create("D&S", seed=0, n_shards=3, shard_workers=2))
        modern = create("D&S", seed=0,
                        policy=ExecutionPolicy(n_shards=3,
                                               executor="thread",
                                               max_workers=2))
        assert_identical(legacy.fit(answers), modern.fit(answers))


class TestEngineShims:
    def _records(self):
        answers = build_answers(seed=4)[0]
        return [(f"t{t}", f"w{w}", int(v)) for t, w, v in
                zip(answers.tasks, answers.workers, answers.values)]

    def _truths(self, engine):
        engine.add_answers(self._records())
        return engine.infer("D&S")

    def test_inference_engine_legacy_kwargs(self):
        legacy_engine = one_warning(lambda: InferenceEngine(
            TaskType.DECISION_MAKING, seed=0, n_shards=3, shard_workers=2))
        modern_engine = InferenceEngine(
            TaskType.DECISION_MAKING, seed=0,
            policy=ExecutionPolicy(n_shards=3, executor="thread",
                                   max_workers=2))
        assert_identical(self._truths(legacy_engine),
                         self._truths(modern_engine))

    def test_sharded_engine_legacy_kwargs(self, answers):
        legacy_engine = one_warning(lambda: repro.engine.ShardedInferenceEngine(
            n_shards=3, executor="serial"))
        modern_engine = repro.engine.ShardedInferenceEngine(
            ExecutionPolicy(n_shards=3, executor="serial"))
        assert_identical(legacy_engine.fit(answers, "D&S"),
                         modern_engine.fit(answers, "D&S"))

    def test_mixing_legacy_and_policy_rejected(self):
        with pytest.raises(ValueError, match="not both"), \
                warnings.catch_warnings():
            warnings.simplefilter("ignore")
            InferenceEngine(TaskType.DECISION_MAKING,
                            policy=ExecutionPolicy(), n_shards=2)


class TestRunnerShims:
    def test_run_method_method_kwargs(self, dataset):
        legacy = one_warning(lambda: run_method(
            "D&S", dataset, seed=0, method_kwargs={"max_iter": 7}))
        modern = run_method(MethodSpec("D&S", max_iter=7), dataset, seed=0)
        assert legacy.scores == modern.scores
        assert legacy.n_iterations == modern.n_iterations

    def test_run_method_n_shards(self, dataset):
        legacy = one_warning(lambda: run_method(
            "D&S", dataset, seed=0, n_shards=3))
        modern = run_method("D&S", dataset, seed=0,
                            policy=ExecutionPolicy(n_shards=3,
                                                   executor="serial"))
        assert legacy.scores == modern.scores
        assert legacy.n_iterations == modern.n_iterations

    def test_run_method_shard_workers(self, dataset):
        legacy = one_warning(lambda: run_method(
            "D&S", dataset, seed=0, n_shards=3, shard_workers=2))
        modern = run_method("D&S", dataset, seed=0,
                            policy=ExecutionPolicy(n_shards=3,
                                                   executor="thread",
                                                   max_workers=2))
        assert legacy.scores == modern.scores

    def test_run_method_shard_executor_process(self, dataset):
        from repro.engine.runtime import get_runtime_registry

        try:
            legacy = one_warning(lambda: run_method(
                "D&S", dataset, seed=0, n_shards=2,
                shard_executor="process"))
            modern = run_method(
                "D&S", dataset, seed=0,
                policy=ExecutionPolicy(n_shards=2, executor="process"))
        finally:
            get_runtime_registry().close_all()
        assert legacy.scores == modern.scores
        assert legacy.n_iterations == modern.n_iterations

    def test_run_many_executor(self, dataset):
        legacy = one_warning(lambda: run_many(
            dataset, ["MV", "D&S"], seed=0, max_workers=2,
            executor="thread"))
        modern = run_many(dataset, ["MV", "D&S"], seed=0, max_workers=2)
        for a, b in zip(legacy, modern):
            assert a.scores == b.scores

    def test_run_grid_n_shards(self, dataset):
        legacy = one_warning(lambda: run_grid(
            [dataset], methods=["MV", "D&S"], seed=0, n_shards=3))
        modern = run_grid([dataset], methods=["MV", "D&S"], seed=0,
                          policy=ExecutionPolicy(n_shards=3,
                                                 executor="serial"))
        for a, b in zip(legacy, modern):
            assert a.scores == b.scores
            assert a.n_iterations == b.n_iterations


class TestBatchShims:
    def test_batch_runner_executor(self, dataset):
        legacy_runner = one_warning(
            lambda: BatchRunner(max_workers=2, executor="thread"))
        modern_runner = BatchRunner(max_workers=2)
        jobs = [BatchJob(dataset=dataset, method="D&S", seed=0)]
        legacy = legacy_runner.run(list(jobs))
        modern = modern_runner.run(
            [BatchJob(dataset=dataset, method="D&S", seed=0)])
        assert legacy[0].scores == modern[0].scores

    def test_batch_runner_shard_executor(self, dataset):
        legacy_runner = one_warning(
            lambda: BatchRunner(max_workers=1, shard_executor="thread"))
        # n_shards stays 1: the runner-level flag never invented a
        # shard count — that always came from each job's method kwargs.
        assert legacy_runner.policy == ExecutionPolicy(n_shards=1,
                                                       executor="thread")

    def test_batch_runner_shard_executor_keeps_unsharded_jobs_plain(
            self, dataset):
        """Jobs with no shard count must not be silently auto-sharded
        (and must not spawn the process runtime) just because the
        runner carries a legacy shard_executor."""
        from repro.engine.runtime import RuntimeRegistry

        registry = RuntimeRegistry()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            runner = BatchRunner(max_workers=1,
                                 shard_executor="process")
        legacy = runner.run([BatchJob(dataset=dataset, method="D&S",
                                      seed=0)])
        plain = run_method("D&S", dataset, seed=0)
        assert len(registry) == 0
        assert legacy[0].scores == plain.scores
        assert legacy[0].n_iterations == plain.n_iterations

    def test_batch_job_method_kwargs_shards_reach_the_runtime(
            self, dataset):
        """The historical coupling: shard counts spelled in
        method_kwargs combine with a process shard_executor — the fit
        must actually run on the leased runtime at that shard count."""
        from repro.engine.runtime import get_runtime_registry

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            job = BatchJob(dataset=dataset, method="D&S",
                           method_kwargs={"n_shards": 2},
                           shard_executor="process")
        registry = get_runtime_registry()
        try:
            legacy = BatchRunner(max_workers=1).run([job])
            runtime = registry.acquire(2, None)
            assert runtime.placements >= 1  # the lease really happened
        finally:
            registry.close_all()
        modern = run_method("D&S", dataset, seed=0,
                            policy=ExecutionPolicy(n_shards=2,
                                                   executor="serial"))
        assert legacy[0].scores == modern.scores
        assert legacy[0].n_iterations == modern.n_iterations

    def test_batch_job_method_kwargs(self, dataset):
        job = one_warning(lambda: BatchJob(
            dataset=dataset, method="D&S",
            method_kwargs={"max_iter": 7}))
        assert job.method == MethodSpec("D&S", max_iter=7)
        assert job.method_kwargs is None

    def test_batch_job_shard_executor(self, dataset):
        job = one_warning(lambda: BatchJob(
            dataset=dataset, method="D&S", shard_executor="process"))
        assert job.policy.executor == "process"
        assert job.shard_executor is None


class TestCliAliases:
    def test_batch_shard_executor_flag_warns(self, capsys):
        from repro.cli import main

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            code = main(["batch", "--datasets", "D_PosSent", "--methods",
                         "MV", "--scale", "0.05", "--workers", "1",
                         "--shard-executor", "thread"])
        assert code == 0
        assert any(issubclass(w.category, DeprecationWarning)
                   for w in caught)
        assert "--shard-executor is deprecated" in capsys.readouterr().err

    def test_batch_conflicting_executor_flags_rejected(self, capsys):
        """Two explicit executor choices must error, not silently pick
        one (the pre-unification combination of job pool + shard tier
        no longer exists)."""
        from repro.cli import main

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            code = main(["batch", "--datasets", "D_PosSent", "--methods",
                         "MV", "--scale", "0.05", "--executor", "thread",
                         "--shard-executor", "process"])
        assert code == 1
        assert "conflicts with --executor" in capsys.readouterr().err

    def test_batch_executor_without_shards_notes_new_meaning(self,
                                                             capsys):
        """batch --executor used to pick the job pool; the unified flag
        configures the fit tier, which is a no-op at --shards 1 — the
        CLI says so instead of silently differing."""
        from repro.cli import main

        code = main(["batch", "--datasets", "D_PosSent", "--methods",
                     "MV", "--scale", "0.05", "--workers", "1",
                     "--executor", "process"])
        assert code == 0
        assert "no effect with --shards 1" in capsys.readouterr().err

    def test_cli_choices_track_the_policy_and_source_layers(self):
        from repro.cli import EXECUTOR_CHOICES, TASK_TYPE_CHOICES
        from repro.core.policy import EXECUTORS
        from repro.engine.sources import TASK_TYPE_ALIASES

        assert EXECUTOR_CHOICES == list(EXECUTORS)
        assert TASK_TYPE_CHOICES == sorted(TASK_TYPE_ALIASES)
