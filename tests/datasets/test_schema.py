"""Tests for the Dataset container."""

import numpy as np
import pytest

from repro.core.answers import AnswerSet
from repro.core.result import InferenceResult
from repro.core.tasktypes import TaskType
from repro.datasets.schema import Dataset
from repro.exceptions import DatasetError


def make_dataset(truth_mask=None):
    answers = AnswerSet([0, 0, 1, 1, 2, 2], [0, 1, 0, 1, 0, 1],
                        [1, 1, 0, 0, 1, 0], TaskType.DECISION_MAKING)
    return Dataset(name="toy", answers=answers,
                   truth=np.array([1, 0, 1]), truth_mask=truth_mask)


class TestDataset:
    def test_truth_length_validated(self):
        answers = AnswerSet([0], [0], [1], TaskType.DECISION_MAKING)
        with pytest.raises(DatasetError):
            Dataset(name="bad", answers=answers, truth=np.array([1, 0]))

    def test_n_truth_full(self):
        assert make_dataset().n_truth == 3

    def test_n_truth_partial(self):
        ds = make_dataset(truth_mask=np.array([True, False, True]))
        assert ds.n_truth == 2

    def test_statistics_row(self):
        row = make_dataset().statistics()
        assert row["dataset"] == "toy"
        assert row["n_tasks"] == 3
        assert row["n_answers"] == 6
        assert row["redundancy"] == 2.0

    def test_score_uses_mask(self):
        ds = make_dataset(truth_mask=np.array([True, True, False]))
        result = InferenceResult(method="x",
                                 truths=np.array([1, 0, 0]),
                                 worker_quality=np.zeros(2))
        # Task 2 (wrong label) is unmasked, so accuracy is perfect.
        assert ds.score(result)["accuracy"] == 1.0

    def test_score_excludes_golden(self):
        ds = make_dataset()
        result = InferenceResult(method="x",
                                 truths=np.array([1, 0, 0]),
                                 worker_quality=np.zeros(2))
        scores = ds.score(result, exclude={2})
        assert scores["accuracy"] == 1.0

    def test_decision_making_scores_include_f1(self):
        scores = make_dataset().score(InferenceResult(
            method="x", truths=np.array([1, 0, 1]),
            worker_quality=np.zeros(2)))
        assert set(scores) == {"accuracy", "f1"}

    def test_subsample_redundancy_returns_new_dataset(self, rng):
        ds = make_dataset()
        sub = ds.subsample_redundancy(1, rng)
        assert sub.answers.n_answers == 3
        assert ds.answers.n_answers == 6  # original untouched
        np.testing.assert_array_equal(sub.truth, ds.truth)

    def test_evaluation_mask_excludes(self):
        mask = make_dataset().evaluation_mask(exclude={0})
        assert list(mask) == [False, True, True]
