"""Tests for the five paper-dataset replicas (Table 5 fidelity)."""

import numpy as np
import pytest

from repro.core.tasktypes import TaskType
from repro.datasets.paper import (
    PAPER_DATASET_NAMES,
    all_paper_datasets,
    load_paper_dataset,
)
from repro.exceptions import DatasetError
from repro.metrics import long_tail_ratio, worker_accuracy, worker_rmse


class TestTable5Fidelity:
    """Full-scale replicas must match the paper's Table 5 statistics."""

    @pytest.mark.parametrize("name,n_tasks,n_truth,redundancy,n_workers", [
        ("D_Product", 8315, 8315, 3.0, 176),
        ("D_PosSent", 1000, 1000, 20.0, 85),
        ("S_Rel", 20232, 4460, 4.9, 766),
        ("S_Adult", 11040, 1517, 8.4, 825),
        ("N_Emotion", 700, 700, 10.0, 38),
    ])
    def test_statistics(self, name, n_tasks, n_truth, redundancy, n_workers):
        ds = load_paper_dataset(name, seed=0, scale=1.0)
        stats = ds.statistics()
        assert stats["n_tasks"] == n_tasks
        assert stats["n_truth"] == n_truth
        assert abs(stats["redundancy"] - redundancy) < 0.15
        assert stats["n_workers"] == n_workers


class TestReplicaBehaviour:
    def test_d_product_truth_imbalance(self, small_product):
        positive = (small_product.truth == 1).mean()
        assert 0.10 < positive < 0.17  # paper: 0.12 : 0.88

    def test_d_possent_truth_balanced(self, small_possent):
        positive = (small_possent.truth == 1).mean()
        assert 0.45 < positive < 0.60  # paper: 528 : 472

    def test_task_types(self):
        datasets = all_paper_datasets(seed=0, scale=0.05)
        assert datasets["D_Product"].task_type is TaskType.DECISION_MAKING
        assert datasets["S_Rel"].task_type is TaskType.SINGLE_CHOICE
        assert datasets["S_Rel"].answers.n_choices == 4
        assert datasets["N_Emotion"].task_type is TaskType.NUMERIC

    def test_long_tail_redundancy(self, small_rel):
        # Figure 2: busiest 20% of workers supply most answers.
        assert long_tail_ratio(small_rel.answers) > 0.45

    def test_d_product_mean_worker_accuracy(self):
        ds = load_paper_dataset("D_Product", seed=0, scale=0.5)
        acc = worker_accuracy(ds.answers, ds.truth)
        assert abs(np.nanmean(acc) - 0.79) < 0.08  # paper: 0.79

    def test_n_emotion_worker_rmse_band(self, small_emotion):
        rmse = worker_rmse(small_emotion.answers, small_emotion.truth)
        mean_rmse = np.nanmean(rmse)
        assert 22 < mean_rmse < 36  # paper: mean 28.9, range [20, 45]

    def test_determinism(self):
        a = load_paper_dataset("D_Product", seed=5, scale=0.05)
        b = load_paper_dataset("D_Product", seed=5, scale=0.05)
        np.testing.assert_array_equal(a.answers.values, b.answers.values)
        np.testing.assert_array_equal(a.truth, b.truth)

    def test_different_seeds_differ(self):
        a = load_paper_dataset("D_Product", seed=1, scale=0.05)
        b = load_paper_dataset("D_Product", seed=2, scale=0.05)
        assert not np.array_equal(a.answers.values, b.answers.values)

    def test_unknown_name_rejected(self):
        with pytest.raises(DatasetError):
            load_paper_dataset("D_Nothing")

    def test_invalid_scale_rejected(self):
        with pytest.raises(DatasetError):
            load_paper_dataset("D_Product", scale=0.0)

    def test_all_paper_datasets_order(self):
        datasets = all_paper_datasets(seed=0, scale=0.05)
        assert tuple(datasets) == PAPER_DATASET_NAMES

    def test_s_adult_eval_subset_is_hard(self):
        """The labelled S_Adult subset must be much harder than the
        full task set — the mechanism behind every method scoring
        ≈36% there (paper Table 6)."""
        from repro.core import create
        from repro.metrics import accuracy

        ds = load_paper_dataset("S_Adult", seed=0, scale=0.15)
        result = create("MV", seed=0).fit(ds.answers)
        on_eval = accuracy(ds.truth, result.truths, ds.truth_mask)
        overall = accuracy(ds.truth, result.truths)
        assert on_eval < overall - 0.2
