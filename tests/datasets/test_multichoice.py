"""Tests for the multiple-choice workflow (paper §2 transformation)."""

import numpy as np
import pytest

from repro.core import create
from repro.core.result import InferenceResult
from repro.datasets.multichoice import (
    build_multichoice_dataset,
    decisions_to_tag_sets,
    tag_set_f1,
    tag_set_jaccard,
    tag_truth_vector,
)
from repro.exceptions import DatasetError
from repro.simulation import reliable_worker

TAGS = [[0, 2], [1], [], [0, 1, 2]]
N_TAGS = 3


class TestTruthVector:
    def test_layout_matches_pair_order(self):
        truths = tag_truth_vector(TAGS, N_TAGS)
        # Item 0 has tags {0, 2}: pairs (0,0)=1, (0,1)=0, (0,2)=1.
        assert list(truths[:3]) == [1, 0, 1]
        # Item 2 has no tags.
        assert list(truths[6:9]) == [0, 0, 0]

    def test_length(self):
        assert len(tag_truth_vector(TAGS, N_TAGS)) == len(TAGS) * N_TAGS


class TestBuildDataset:
    def test_dataset_shape(self):
        workers = [reliable_worker(0.9, 2) for _ in range(5)]
        ds = build_multichoice_dataset(TAGS, N_TAGS, workers,
                                       redundancy=3, seed=0)
        assert ds.n_tasks == 12
        assert ds.metadata["n_items"] == 4
        assert (ds.answers.task_answer_counts() == 3).all()

    def test_non_binary_workers_rejected(self):
        workers = [reliable_worker(0.9, 4)]
        with pytest.raises(DatasetError, match="binary"):
            build_multichoice_dataset(TAGS, N_TAGS, workers, redundancy=1)


class TestRoundTrip:
    def test_end_to_end_tag_recovery(self):
        """The full paper-§2 pipeline: tags -> decisions -> inference
        -> tags."""
        rng = np.random.default_rng(0)
        tags = [sorted(rng.choice(5, size=rng.integers(0, 4),
                                  replace=False).tolist())
                for _ in range(60)]
        workers = [reliable_worker(0.9, 2) for _ in range(8)]
        ds = build_multichoice_dataset(tags, 5, workers, redundancy=5,
                                       seed=1)
        result = create("D&S", seed=0).fit(ds.answers)
        recovered = decisions_to_tag_sets(result, n_items=60, n_tags=5)
        assert tag_set_f1(tags, recovered) > 0.9
        assert tag_set_jaccard(tags, recovered) > 0.85

    def test_size_mismatch_rejected(self):
        result = InferenceResult(method="x", truths=np.zeros(5),
                                 worker_quality=np.zeros(1))
        with pytest.raises(DatasetError, match="decisions"):
            decisions_to_tag_sets(result, n_items=2, n_tags=3)


class TestTagMetrics:
    def test_perfect_recovery(self):
        recovered = [set(t) for t in TAGS]
        assert tag_set_f1(TAGS, recovered) == 1.0
        assert tag_set_jaccard(TAGS, recovered) == 1.0

    def test_empty_sets_count_as_perfect_jaccard(self):
        assert tag_set_jaccard([[]], [set()]) == 1.0

    def test_all_empty_f1_zero(self):
        assert tag_set_f1([[]], [set()]) == 0.0

    def test_partial_overlap(self):
        expected = [[0, 1]]
        recovered = [{1, 2}]
        assert tag_set_jaccard(expected, recovered) == pytest.approx(1 / 3)
        assert tag_set_f1(expected, recovered) == pytest.approx(0.5)

    def test_parallel_validation(self):
        with pytest.raises(DatasetError):
            tag_set_f1([[0]], [set(), set()])
