"""Round-trip tests for dataset persistence."""

import numpy as np
import pytest

from repro.datasets.io import load_dataset, save_dataset
from repro.datasets.paper import n_emotion
from repro.exceptions import DatasetError


class TestRoundTrip:
    def test_categorical_round_trip(self, tmp_path, small_product):
        save_dataset(small_product, tmp_path / "d_product")
        loaded = load_dataset(tmp_path / "d_product")
        assert loaded.name == small_product.name
        assert loaded.task_type == small_product.task_type
        np.testing.assert_array_equal(loaded.answers.tasks,
                                      small_product.answers.tasks)
        np.testing.assert_array_equal(loaded.answers.values,
                                      small_product.answers.values)
        np.testing.assert_array_equal(loaded.truth, small_product.truth)

    def test_partial_truth_round_trip(self, tmp_path, small_rel):
        save_dataset(small_rel, tmp_path / "s_rel")
        loaded = load_dataset(tmp_path / "s_rel")
        assert loaded.n_truth == small_rel.n_truth
        np.testing.assert_array_equal(loaded.truth_mask,
                                      small_rel.truth_mask)
        # Truth values agree on the masked subset.
        masked = np.nonzero(small_rel.truth_mask)[0]
        np.testing.assert_array_equal(loaded.truth[masked],
                                      small_rel.truth[masked])

    def test_numeric_round_trip(self, tmp_path):
        dataset = n_emotion(seed=3, scale=0.2)
        save_dataset(dataset, tmp_path / "n_emotion")
        loaded = load_dataset(tmp_path / "n_emotion")
        np.testing.assert_allclose(loaded.answers.values,
                                   dataset.answers.values)
        np.testing.assert_allclose(loaded.truth, dataset.truth)

    def test_metadata_preserved(self, tmp_path, small_product):
        save_dataset(small_product, tmp_path / "d")
        loaded = load_dataset(tmp_path / "d")
        assert loaded.metadata["seed"] == small_product.metadata["seed"]

    def test_missing_directory_raises(self, tmp_path):
        with pytest.raises(DatasetError):
            load_dataset(tmp_path / "nope")

    def test_scores_identical_after_reload(self, tmp_path, small_product):
        from repro.core import create

        save_dataset(small_product, tmp_path / "d")
        loaded = load_dataset(tmp_path / "d")
        original = small_product.score(
            create("MV", seed=0).fit(small_product.answers))
        reloaded = loaded.score(create("MV", seed=0).fit(loaded.answers))
        assert original == reloaded
