"""Tests for the generic synthetic generators."""

import numpy as np
import pytest

from repro.datasets.synthetic import (
    HardTaskConfig,
    generate_categorical,
    generate_numeric,
    multiple_choice_to_decisions,
    sample_truths,
)
from repro.exceptions import DatasetError
from repro.simulation.workers import NumericWorker, reliable_worker


class TestSampleTruths:
    def test_exact_counts(self, rng):
        truths = sample_truths(100, [70, 30], rng)
        assert (truths == 0).sum() == 70
        assert (truths == 1).sum() == 30

    def test_counts_must_sum(self, rng):
        with pytest.raises(DatasetError):
            sample_truths(10, [5, 6], rng)

    def test_shuffled_not_sorted(self, rng):
        truths = sample_truths(1000, [500, 500], rng)
        assert truths[:500].sum() > 0  # not all zeros up front


class TestHardTaskConfig:
    def test_validation(self):
        with pytest.raises(DatasetError):
            HardTaskConfig(fraction=1.5).validate()
        with pytest.raises(DatasetError):
            HardTaskConfig(fraction=0.6, noise_fraction=0.6).validate()
        HardTaskConfig(fraction=0.1, noise_fraction=0.1).validate()


class TestGenerateCategorical:
    def _generate(self, rng, **kwargs):
        truths = sample_truths(200, [150, 50], rng)
        workers = [reliable_worker(0.85, 2) for _ in range(12)]
        defaults = dict(
            name="toy", truths=truths, workers=workers,
            total_answers=600, rng=rng, n_choices=2,
        )
        defaults.update(kwargs)
        return generate_categorical(**defaults)

    def test_sizes(self, rng):
        ds = self._generate(rng)
        assert ds.n_tasks == 200
        assert ds.answers.n_answers == 600
        assert ds.n_workers == 12

    def test_partial_truth(self, rng):
        ds = self._generate(rng, truth_known=50)
        assert ds.n_truth == 50

    def test_trap_tasks_mislead_majority(self, rng):
        ds = self._generate(
            rng, total_answers=2000,
            hard_tasks=HardTaskConfig(fraction=0.5, trap_strength=0.95),
        )
        from repro.core import create
        from repro.metrics import accuracy

        result = create("MV", seed=0).fit(ds.answers)
        # Half the tasks are near-certain traps: MV accuracy collapses
        # toward 50%.
        assert accuracy(ds.truth, result.truths) < 0.75

    def test_noise_tasks_raise_entropy(self, rng):
        from repro.metrics import categorical_consistency

        quiet = self._generate(rng, total_answers=2000)
        rng2 = np.random.default_rng(42)
        noisy = self._generate(
            rng2, total_answers=2000,
            hard_tasks=HardTaskConfig(fraction=0.0, noise_fraction=0.8,
                                      noise_strength=0.9),
        )
        assert categorical_consistency(noisy.answers) > \
            categorical_consistency(quiet.answers)

    def test_eval_prefers_hard(self, rng):
        ds = self._generate(
            rng,
            truth_known=20,
            hard_tasks=HardTaskConfig(fraction=0.2, trap_strength=0.9),
            eval_prefers_hard=True,
        )
        assert ds.metadata["hard_tasks"] == 40
        # All 20 evaluated tasks come from the 40 hard ones — the
        # evaluated subset should therefore be much harder than average.
        assert ds.n_truth == 20

    def test_explicit_worker_weights(self, rng):
        weights = np.ones(12)
        weights[0] = 100.0
        ds = self._generate(rng, worker_weights=weights)
        counts = ds.answers.worker_answer_counts()
        assert counts[0] == counts.max()


class TestGenerateNumeric:
    def test_value_range_clipped(self, rng):
        truths = rng.uniform(-100, 100, size=50)
        workers = [NumericWorker(sigma=500.0) for _ in range(5)]
        ds = generate_numeric("toy", truths, workers, redundancy=3,
                              rng=rng, value_range=(-10, 10))
        assert ds.answers.values.min() >= -10
        assert ds.answers.values.max() <= 10

    def test_difficulty_passed_through(self, rng):
        truths = np.zeros(400)
        difficulty = np.ones(400)
        difficulty[200:] = 20.0
        workers = [NumericWorker(sigma=1.0) for _ in range(5)]
        ds = generate_numeric("toy", truths, workers, redundancy=3,
                              rng=rng, task_difficulty=difficulty)
        hard_values = ds.answers.values[ds.answers.tasks >= 200]
        easy_values = ds.answers.values[ds.answers.tasks < 200]
        assert hard_values.std() > 5 * easy_values.std()


class TestMultipleChoiceTransform:
    def test_pairs_cover_all_tags(self):
        pairs = multiple_choice_to_decisions([[0, 2], [1]], n_tags=3)
        assert len(pairs) == 6
        assert (0, 1) in pairs

    def test_out_of_range_tag_rejected(self):
        with pytest.raises(DatasetError):
            multiple_choice_to_decisions([[5]], n_tags=3)
