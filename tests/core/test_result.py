"""Unit tests for the InferenceResult container."""

import numpy as np

from repro.core.result import InferenceResult


def make_result(**overrides):
    defaults = dict(
        method="MV",
        truths=np.array([0, 1, 1]),
        worker_quality=np.array([0.9, 0.5]),
        posterior=np.array([[0.8, 0.2], [0.1, 0.9], [0.4, 0.6]]),
        n_iterations=5,
        converged=True,
        elapsed_seconds=0.12,
    )
    defaults.update(overrides)
    return InferenceResult(**defaults)


class TestInferenceResult:
    def test_sizes(self):
        result = make_result()
        assert result.n_tasks == 3
        assert result.n_workers == 2

    def test_truth_of(self):
        assert make_result().truth_of(1) == 1

    def test_top_workers_sorted_best_first(self):
        result = make_result(worker_quality=np.array([0.1, 0.9, 0.5]))
        assert list(result.top_workers(2)) == [1, 2]

    def test_top_workers_caps_at_pool_size(self):
        assert len(make_result().top_workers(10)) == 2

    def test_summary_mentions_method_and_state(self):
        text = make_result().summary()
        assert "MV" in text
        assert "converged" in text

    def test_summary_reports_iteration_cap(self):
        text = make_result(converged=False).summary()
        assert "iteration cap" in text

    def test_arrays_coerced(self):
        result = make_result(worker_quality=[0.5, 0.6])
        assert isinstance(result.worker_quality, np.ndarray)

    def test_posterior_optional(self):
        result = make_result(posterior=None)
        assert result.posterior is None
