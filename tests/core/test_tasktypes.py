"""Unit tests for the task-type taxonomy."""

import pytest

from repro.core.tasktypes import (
    DECISION_CHOICES,
    LABEL_FALSE,
    LABEL_TRUE,
    TaskType,
    validate_n_choices,
)
from repro.exceptions import InvalidAnswerSetError


class TestTaskType:
    def test_categorical_flags(self):
        assert TaskType.DECISION_MAKING.is_categorical
        assert TaskType.SINGLE_CHOICE.is_categorical
        assert not TaskType.NUMERIC.is_categorical

    def test_numeric_flags(self):
        assert TaskType.NUMERIC.is_numeric
        assert not TaskType.DECISION_MAKING.is_numeric

    def test_values_round_trip(self):
        for task_type in TaskType:
            assert TaskType(task_type.value) is task_type


class TestLabelConvention:
    def test_true_false_are_distinct_binary_labels(self):
        assert {LABEL_TRUE, LABEL_FALSE} == {0, 1}
        assert DECISION_CHOICES == 2


class TestValidateNChoices:
    def test_decision_making_defaults_to_two(self):
        assert validate_n_choices(TaskType.DECISION_MAKING, None) == 2
        assert validate_n_choices(TaskType.DECISION_MAKING, 2) == 2

    def test_decision_making_rejects_other(self):
        with pytest.raises(InvalidAnswerSetError):
            validate_n_choices(TaskType.DECISION_MAKING, 3)

    def test_numeric_is_zero(self):
        assert validate_n_choices(TaskType.NUMERIC, None) == 0
        assert validate_n_choices(TaskType.NUMERIC, 7) == 0

    def test_single_choice_requires_count(self):
        with pytest.raises(InvalidAnswerSetError):
            validate_n_choices(TaskType.SINGLE_CHOICE, None)
        with pytest.raises(InvalidAnswerSetError):
            validate_n_choices(TaskType.SINGLE_CHOICE, 1)
        assert validate_n_choices(TaskType.SINGLE_CHOICE, 4) == 4
