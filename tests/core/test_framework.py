"""Unit tests for the shared iteration framework helpers."""

import numpy as np
import pytest

from repro.core.framework import (
    ConvergenceTracker,
    clamp_golden_posterior,
    clamp_golden_values,
    clip_probability,
    decode_posterior,
    log_normalize_rows,
    normalize_rows,
)
from repro.exceptions import ConvergenceError


class TestConvergenceTracker:
    def test_converges_on_stable_parameters(self):
        tracker = ConvergenceTracker(tolerance=1e-3, max_iter=50)
        params = np.array([1.0, 2.0])
        assert tracker.update(params) is False
        assert tracker.update(params + 1e-5) is True
        assert tracker.converged

    def test_stops_at_iteration_cap(self):
        tracker = ConvergenceTracker(tolerance=1e-9, max_iter=3)
        stops = [tracker.update(np.array([float(i)])) for i in range(3)]
        assert stops == [False, False, True]
        assert not tracker.converged

    def test_nan_raises(self):
        tracker = ConvergenceTracker()
        with pytest.raises(ConvergenceError):
            tracker.update(np.array([np.nan]))

    def test_shape_change_does_not_false_converge(self):
        tracker = ConvergenceTracker(tolerance=1e-3, max_iter=50)
        tracker.update(np.array([1.0, 2.0]))
        assert tracker.update(np.array([1.0, 2.0, 3.0])) is False

    def test_resize_resets_baseline_explicitly(self):
        """A resized parameter vector resets the comparison baseline —
        the documented behaviour for warm-started refits on grown
        streams — and is counted in ``resets``."""
        tracker = ConvergenceTracker(tolerance=1e-3, max_iter=50)
        tracker.update(np.array([1.0, 2.0]))
        assert tracker.resets == 0
        # Length change: never converges on this update, baseline resets.
        assert tracker.update(np.array([1.0, 2.0, 3.0])) is False
        assert tracker.resets == 1
        assert not tracker.converged
        # Delta tracking resumes against the *new* vector, so an
        # identical-length near-identical update now converges.
        assert tracker.update(np.array([1.0, 2.0, 3.0])) is True
        assert tracker.converged
        assert tracker.resets == 1

    def test_resize_back_and_forth_counts_each_reset(self):
        tracker = ConvergenceTracker(tolerance=1e-6, max_iter=50)
        tracker.update(np.zeros(2))
        tracker.update(np.zeros(3))
        tracker.update(np.zeros(2))
        assert tracker.resets == 2
        assert not tracker.converged

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            ConvergenceTracker(tolerance=0)
        with pytest.raises(ValueError):
            ConvergenceTracker(max_iter=0)


class TestGoldenClamping:
    def test_posterior_rows_become_one_hot(self):
        posterior = np.full((3, 2), 0.5)
        out = clamp_golden_posterior(posterior, {1: 1})
        assert list(out[1]) == [0.0, 1.0]
        assert list(out[0]) == [0.5, 0.5]

    def test_none_golden_is_identity(self):
        posterior = np.full((2, 2), 0.5)
        assert clamp_golden_posterior(posterior, None) is posterior

    def test_numeric_values_clamped(self):
        values = np.zeros(3)
        out = clamp_golden_values(values, {2: 7.5})
        assert out[2] == 7.5
        assert out[0] == 0.0


class TestNormalisation:
    def test_normalize_rows_sums_to_one(self):
        out = normalize_rows(np.array([[2.0, 2.0], [1.0, 3.0]]))
        np.testing.assert_allclose(out.sum(axis=1), 1.0)

    def test_normalize_zero_row_becomes_uniform(self):
        out = normalize_rows(np.array([[0.0, 0.0, 0.0]]))
        np.testing.assert_allclose(out, [[1 / 3, 1 / 3, 1 / 3]])

    def test_log_normalize_matches_direct(self):
        logits = np.array([[1.0, 2.0, 3.0]])
        direct = np.exp(logits) / np.exp(logits).sum()
        np.testing.assert_allclose(log_normalize_rows(logits), direct)

    def test_log_normalize_stable_for_large_values(self):
        logits = np.array([[1e4, 1e4 - 1.0]])
        out = log_normalize_rows(logits)
        assert np.isfinite(out).all()
        np.testing.assert_allclose(out.sum(axis=1), 1.0)

    def test_clip_probability_bounds(self):
        out = clip_probability(np.array([0.0, 0.5, 1.0]))
        assert out[0] > 0
        assert out[2] < 1
        assert out[1] == 0.5


class TestDecodePosterior:
    def test_argmax_without_rng(self):
        posterior = np.array([[0.7, 0.3], [0.2, 0.8]])
        assert list(decode_posterior(posterior)) == [0, 1]

    def test_random_tie_break_hits_both_labels(self):
        posterior = np.full((200, 2), 0.5)
        labels = decode_posterior(posterior, np.random.default_rng(0))
        assert 0 < labels.mean() < 1

    def test_deterministic_tie_break_picks_lowest(self):
        posterior = np.full((5, 3), 1 / 3)
        assert list(decode_posterior(posterior)) == [0] * 5

    def test_near_ties_are_ties(self):
        posterior = np.array([[0.5, 0.5 + 1e-12]])
        labels = [decode_posterior(posterior,
                                   np.random.default_rng(seed))[0]
                  for seed in range(50)]
        assert set(labels) == {0, 1}
