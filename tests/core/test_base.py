"""Unit tests for the TruthInferenceMethod base-class contract."""

import numpy as np
import pytest

from repro.core import create
from repro.core.answers import AnswerSet
from repro.core.tasktypes import TaskType
from repro.exceptions import TaskTypeMismatchError


class TestFitValidation:
    def test_task_type_mismatch_raises(self, clean_numeric):
        answers, _, _ = clean_numeric
        with pytest.raises(TaskTypeMismatchError, match="MV"):
            create("MV").fit(answers)

    def test_numeric_method_rejects_categorical(self, clean_binary):
        answers, _ = clean_binary
        with pytest.raises(TaskTypeMismatchError, match="Mean"):
            create("Mean").fit(answers)

    def test_binary_method_rejects_single_choice(self, clean_single_choice):
        answers, _ = clean_single_choice
        with pytest.raises(TaskTypeMismatchError, match="KOS"):
            create("KOS").fit(answers)

    def test_initial_quality_shape_checked(self, clean_binary):
        answers, _ = clean_binary
        with pytest.raises(ValueError, match="initial_quality"):
            create("ZC").fit(answers, initial_quality=np.ones(3))

    def test_golden_index_out_of_range_rejected(self, clean_binary):
        answers, _ = clean_binary
        with pytest.raises(ValueError, match="golden"):
            create("ZC").fit(answers, golden={answers.n_tasks + 5: 1})

    def test_result_carries_method_name_and_time(self, clean_binary):
        answers, _ = clean_binary
        result = create("D&S", seed=0).fit(answers)
        assert result.method == "D&S"
        assert result.elapsed_seconds > 0

    def test_unsupported_golden_silently_ignored(self, clean_binary):
        # MV does not support golden tasks; passing them must not fail
        # (the paper simply leaves those methods out of the experiment).
        answers, truth = clean_binary
        result = create("MV", seed=0).fit(answers, golden={0: 1})
        assert result.n_tasks == answers.n_tasks

    def test_unsupported_initial_quality_silently_ignored(self, clean_binary):
        answers, _ = clean_binary
        quality = np.full(answers.n_workers, 0.9)
        result = create("KOS", seed=0).fit(answers, initial_quality=quality)
        assert result.n_tasks == answers.n_tasks


class TestSeeding:
    @pytest.mark.parametrize("name", ["MV", "ZC", "D&S", "BCC", "KOS",
                                      "Multi", "CBCC"])
    def test_same_seed_same_output(self, clean_binary, name):
        answers, _ = clean_binary
        first = create(name, seed=99).fit(answers)
        second = create(name, seed=99).fit(answers)
        np.testing.assert_array_equal(first.truths, second.truths)
        np.testing.assert_allclose(first.worker_quality,
                                   second.worker_quality)

    def test_different_seeds_may_change_sampled_methods(self, clean_binary):
        answers, _ = clean_binary
        first = create("BCC", seed=0).fit(answers)
        second = create("BCC", seed=1).fit(answers)
        # Posteriors are sampled; they should not be bit-identical.
        assert not np.array_equal(first.posterior, second.posterior)


class TestHelperPosteriors:
    def test_uniform_posterior(self, clean_binary):
        answers, _ = clean_binary
        from repro.core.base import CategoricalMethod

        posterior = CategoricalMethod.uniform_posterior(answers)
        assert posterior.shape == (answers.n_tasks, 2)
        np.testing.assert_allclose(posterior, 0.5)

    def test_majority_posterior_rows_normalised(self, clean_binary):
        answers, _ = clean_binary
        from repro.core.base import CategoricalMethod

        posterior = CategoricalMethod.majority_posterior(answers)
        np.testing.assert_allclose(posterior.sum(axis=1), 1.0)
