"""Unit tests for the method registry."""

import pytest

from repro.core import registry
from repro.core.base import TruthInferenceMethod
from repro.core.tasktypes import TaskType
from repro.exceptions import UnknownMethodError

ALL_PAPER_METHODS = {
    "MV", "ZC", "GLAD", "D&S", "Minimax", "BCC", "CBCC", "LFC",
    "CATD", "PM", "Multi", "KOS", "VI-BP", "VI-MF", "LFC_N",
    "Mean", "Median",
}


class TestRegistry:
    def test_all_17_paper_methods_registered(self):
        assert ALL_PAPER_METHODS <= set(registry.available_methods())

    def test_extensions_marked_and_excluded_by_default(self):
        extras = set(registry.available_methods()) - ALL_PAPER_METHODS
        assert extras == {"Minimax-Ord"}
        for name in extras:
            assert registry.create(name).is_extension
        for task_type in TaskType:
            assert not (set(registry.methods_for_task_type(task_type))
                        & extras)

    def test_extensions_opt_in(self):
        names = registry.methods_for_task_type(TaskType.SINGLE_CHOICE,
                                               include_extensions=True)
        assert "Minimax-Ord" in names

    def test_create_returns_instances(self):
        method = registry.create("D&S")
        assert isinstance(method, TruthInferenceMethod)
        assert method.name == "D&S"

    def test_create_forwards_kwargs(self):
        method = registry.create("MV", seed=42)
        assert method.seed == 42

    def test_unknown_method_raises(self):
        with pytest.raises(UnknownMethodError, match="NoSuchMethod"):
            registry.create("NoSuchMethod")

    def test_decision_making_has_14_methods(self):
        # Table 6 compares 14 methods on decision-making datasets.
        names = registry.methods_for_task_type(TaskType.DECISION_MAKING)
        assert len(names) == 14
        assert "Mean" not in names

    def test_single_choice_has_10_methods(self):
        # Figure 5 compares 10 methods on single-choice datasets.
        names = registry.methods_for_task_type(TaskType.SINGLE_CHOICE)
        assert len(names) == 10
        assert "KOS" not in names
        assert "Multi" not in names
        assert "VI-BP" not in names

    def test_numeric_has_5_methods(self):
        # Figure 6 compares 5 methods on the numeric dataset.
        names = registry.methods_for_task_type(TaskType.NUMERIC)
        assert set(names) == {"CATD", "PM", "LFC_N", "Mean", "Median"}

    def test_create_all_filters_by_task_type(self):
        methods = registry.create_all(TaskType.NUMERIC)
        assert set(methods) == {"CATD", "PM", "LFC_N", "Mean", "Median"}

    def test_create_all_respects_explicit_names(self):
        methods = registry.create_all(TaskType.DECISION_MAKING,
                                      names=["MV", "D&S"])
        assert list(methods) == ["MV", "D&S"]

    def test_qualification_support_matches_table7(self):
        # Table 7's 8 methods can consume a qualification test.
        supporting = {
            name for name in registry.available_methods()
            if registry.create(name).supports_initial_quality
        }
        assert supporting >= {"ZC", "GLAD", "D&S", "LFC", "CATD", "PM",
                              "VI-MF", "LFC_N"}
        assert "MV" not in supporting
        assert "BCC" not in supporting

    def test_hidden_test_support_matches_section633(self):
        # Section 6.3.3's 9 methods can clamp golden tasks.
        supporting = {
            name for name in registry.available_methods()
            if registry.create(name).supports_golden
        }
        assert supporting >= {"ZC", "GLAD", "D&S", "Minimax", "LFC",
                              "CATD", "PM", "VI-MF", "LFC_N"}
        assert "MV" not in supporting
        assert "CBCC" not in supporting
