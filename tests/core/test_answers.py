"""Unit tests for the AnswerSet container."""

import numpy as np
import pytest

from repro.core.answers import AnswerSet
from repro.core.tasktypes import TaskType
from repro.exceptions import InvalidAnswerSetError, TaskTypeMismatchError


def make(tasks, workers, values, **kwargs):
    return AnswerSet(tasks, workers, values, TaskType.DECISION_MAKING,
                     **kwargs)


class TestConstruction:
    def test_basic_shapes(self):
        a = make([0, 0, 1], [0, 1, 0], [1, 0, 1])
        assert a.n_tasks == 2
        assert a.n_workers == 2
        assert a.n_answers == 3

    def test_explicit_sizes_allow_silent_tasks(self):
        a = make([0], [0], [1], n_tasks=10, n_workers=5)
        assert a.n_tasks == 10
        assert a.n_workers == 5
        assert len(a.answers_of_task(9)) == 0

    def test_redundancy(self):
        a = make([0, 0, 1, 1], [0, 1, 0, 1], [1, 1, 0, 0])
        assert a.redundancy == 2.0

    def test_length_mismatch_rejected(self):
        with pytest.raises(InvalidAnswerSetError, match="length mismatch"):
            make([0, 1], [0], [1, 0])

    def test_value_length_mismatch_rejected(self):
        with pytest.raises(InvalidAnswerSetError, match="length mismatch"):
            make([0, 1], [0, 1], [1])

    def test_negative_task_index_rejected(self):
        with pytest.raises(InvalidAnswerSetError, match="non-negative"):
            make([-1], [0], [1])

    def test_out_of_range_label_rejected(self):
        with pytest.raises(InvalidAnswerSetError, match="categorical answers"):
            make([0], [0], [2])

    def test_too_small_n_tasks_rejected(self):
        with pytest.raises(InvalidAnswerSetError, match="n_tasks"):
            make([5], [0], [1], n_tasks=3)

    def test_nan_numeric_rejected(self):
        with pytest.raises(InvalidAnswerSetError, match="finite"):
            AnswerSet([0], [0], [float("nan")], TaskType.NUMERIC)

    def test_single_choice_needs_n_choices(self):
        with pytest.raises(InvalidAnswerSetError, match="n_choices"):
            AnswerSet([0], [0], [0], TaskType.SINGLE_CHOICE)

    def test_decision_making_rejects_wrong_n_choices(self):
        with pytest.raises(InvalidAnswerSetError, match="exactly 2"):
            AnswerSet([0], [0], [0], TaskType.DECISION_MAKING, n_choices=4)

    def test_arrays_are_frozen(self):
        a = make([0], [0], [1])
        with pytest.raises(ValueError):
            a.tasks[0] = 3

    def test_repr_mentions_sizes(self):
        a = make([0, 1], [0, 1], [1, 0])
        assert "tasks=2" in repr(a)
        assert "workers=2" in repr(a)


class TestFromRecords:
    def test_indexes_in_order_of_appearance(self):
        a = AnswerSet.from_records(
            [("b", "x", "yes"), ("a", "y", "no"), ("b", "y", "yes")],
            TaskType.DECISION_MAKING, label_order=["no", "yes"],
        )
        assert a.task_labels == ["b", "a"]
        assert a.worker_labels == ["x", "y"]
        assert list(a.values) == [1, 0, 1]

    def test_unknown_label_rejected(self):
        with pytest.raises(InvalidAnswerSetError, match="label"):
            AnswerSet.from_records([("t", "w", "maybe")],
                                   TaskType.DECISION_MAKING,
                                   label_order=["no", "yes"])

    def test_single_choice_infers_n_choices(self):
        a = AnswerSet.from_records(
            [("t", "w", "G"), ("t", "v", "PG"), ("t", "u", "R")],
            TaskType.SINGLE_CHOICE, label_order=["G", "PG", "R", "X"],
        )
        assert a.n_choices == 4

    def test_numeric_records(self):
        a = AnswerSet.from_records([("t", "w", 3.5), ("t", "v", "4.5")],
                                   TaskType.NUMERIC)
        assert a.values.dtype == np.float64
        assert list(a.values) == [3.5, 4.5]


class TestAdjacency:
    def test_workers_of_task(self, paper_example):
        assert sorted(paper_example.workers_of_task(0)) == [0, 2]  # w1, w3

    def test_tasks_of_worker(self, paper_example):
        # w2 answered t2..t6 -> indices 1..5
        assert sorted(paper_example.tasks_of_worker(1)) == [1, 2, 3, 4, 5]

    def test_counts(self, paper_example):
        assert list(paper_example.task_answer_counts()) == [2, 3, 3, 3, 3, 3]
        assert list(paper_example.worker_answer_counts()) == [6, 5, 6]

    def test_answers_of_task_indexes_flat_arrays(self, paper_example):
        idx = paper_example.answers_of_task(3)
        assert set(paper_example.tasks[idx]) == {3}


class TestVoteCounts:
    def test_paper_example_counts(self, paper_example):
        counts = paper_example.vote_counts()
        # t2 receives one T and two F
        assert counts[1, 1] == 1
        assert counts[1, 0] == 2

    def test_total_equals_answers(self, paper_example):
        assert paper_example.vote_counts().sum() == paper_example.n_answers

    def test_numeric_rejects_vote_counts(self):
        a = AnswerSet([0], [0], [1.0], TaskType.NUMERIC)
        with pytest.raises(TaskTypeMismatchError):
            a.vote_counts()

    def test_onehot_shape(self, paper_example):
        onehot = paper_example.onehot()
        assert onehot.shape == (paper_example.n_answers, 2)
        assert (onehot.sum(axis=1) == 1).all()


class TestTransformations:
    def test_select_preserves_index_space(self, paper_example):
        sub = paper_example.select(np.array([0, 1, 2]))
        assert sub.n_tasks == paper_example.n_tasks
        assert sub.n_workers == paper_example.n_workers
        assert sub.n_answers == 3

    def test_select_boolean_mask(self, paper_example):
        mask = np.zeros(paper_example.n_answers, dtype=bool)
        mask[:4] = True
        assert paper_example.select(mask).n_answers == 4

    def test_select_wrong_mask_length_rejected(self, paper_example):
        with pytest.raises(InvalidAnswerSetError):
            paper_example.select(np.zeros(3, dtype=bool))

    def test_subsample_redundancy_caps_per_task(self, paper_example, rng):
        sub = paper_example.subsample_redundancy(1, rng)
        assert (sub.task_answer_counts() <= 1).all()
        assert sub.n_tasks == paper_example.n_tasks

    def test_subsample_keeps_all_when_r_large(self, paper_example, rng):
        sub = paper_example.subsample_redundancy(50, rng)
        assert sub.n_answers == paper_example.n_answers

    def test_subsample_rejects_zero(self, paper_example, rng):
        with pytest.raises(InvalidAnswerSetError):
            paper_example.subsample_redundancy(0, rng)

    def test_subsample_is_a_subset(self, paper_example, rng):
        sub = paper_example.subsample_redundancy(2, rng)
        original = set(zip(paper_example.tasks, paper_example.workers,
                           paper_example.values))
        for triple in zip(sub.tasks, sub.workers, sub.values):
            assert triple in original
