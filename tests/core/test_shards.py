"""Unit tests for the task-range shard layout."""

import numpy as np
import pytest

from repro.core.answers import AnswerSet
from repro.core.shards import AnswerShard, ShardedAnswerSet, shard_by_tasks
from repro.core.tasktypes import TaskType
from repro.exceptions import InvalidAnswerSetError


def build_answers(n_tasks=20, n_workers=6, n_answers=200, seed=0,
                  skew=False):
    rng = np.random.default_rng(seed)
    if skew:
        # A few heavy tasks hold most answers.
        weights = rng.zipf(1.5, n_tasks).astype(float)
        tasks = rng.choice(n_tasks, size=n_answers, p=weights / weights.sum())
    else:
        tasks = rng.integers(0, n_tasks, n_answers)
    return AnswerSet(
        tasks,
        rng.integers(0, n_workers, n_answers),
        rng.integers(0, 2, n_answers),
        TaskType.DECISION_MAKING,
        n_tasks=n_tasks,
        n_workers=n_workers,
    )


class TestPartitioner:
    @pytest.mark.parametrize("n_shards", [1, 2, 3, 7, 19, 40])
    def test_ranges_partition_task_space(self, n_shards):
        answers = build_answers()
        sharded = shard_by_tasks(answers, n_shards)
        # Requests beyond the task count clamp deterministically.
        assert sharded.n_shards == min(n_shards, answers.n_tasks)
        assert sharded.requested_shards == n_shards
        assert sharded[0].task_start == 0
        assert sharded[-1].task_stop == answers.n_tasks
        for prev, nxt in zip(sharded, sharded.shards[1:]):
            assert prev.task_stop == nxt.task_start

    @pytest.mark.parametrize("n_shards", [1, 2, 4, 8])
    def test_every_answer_lands_in_its_range(self, n_shards):
        answers = build_answers(seed=3)
        sharded = shard_by_tasks(answers, n_shards)
        total = 0
        for shard in sharded:
            if shard.n_answers:
                assert shard.tasks.min() >= shard.task_start
                assert shard.tasks.max() < shard.task_stop
            total += shard.n_answers
        assert total == answers.n_answers

    def test_single_shard_reuses_original_arrays(self):
        answers = build_answers()
        shard = shard_by_tasks(answers, 1)[0]
        assert np.shares_memory(shard.tasks, answers.tasks)
        assert np.shares_memory(shard.workers, answers.workers)
        assert np.array_equal(shard.tasks, answers.tasks)  # original order
        assert shard.local_tasks is shard.tasks

    def test_multi_shard_views_are_zero_copy_slices(self):
        answers = build_answers(seed=1)
        sharded = shard_by_tasks(answers, 4)
        for shard in sharded:
            if shard.n_answers:
                assert shard.tasks.base is not None

    def test_stable_sort_preserves_within_task_order(self):
        # Two answers to the same task keep their arrival order.
        answers = AnswerSet([1, 0, 1, 0], [0, 1, 2, 3], [1, 0, 0, 1],
                            TaskType.DECISION_MAKING)
        sharded = shard_by_tasks(answers, 2)
        flat_workers = np.concatenate([s.workers for s in sharded])
        assert list(flat_workers) == [1, 3, 0, 2]

    def test_answer_balanced_cuts_on_skewed_tasks(self):
        answers = build_answers(n_tasks=50, n_answers=2000, seed=7,
                                skew=True)
        sharded = shard_by_tasks(answers, 4)
        sizes = [s.n_answers for s in sharded]
        # No shard may be starved while others hold nearly everything
        # (an even task split would put most answers in shard 0).
        assert max(sizes) <= answers.n_answers
        assert sum(1 for s in sizes if s > 0) >= 2

    def test_more_shards_than_tasks_clamps_to_task_count(self):
        answers = build_answers(n_tasks=3, n_answers=30)
        sharded = shard_by_tasks(answers, 8)
        assert sharded.n_shards == 3
        assert sharded.requested_shards == 8
        assert sum(s.n_answers for s in sharded) == 30
        assert sharded[-1].task_stop == 3

    def test_empty_answer_set(self):
        answers = AnswerSet([], [], [], TaskType.DECISION_MAKING,
                            n_tasks=10, n_workers=2)
        sharded = shard_by_tasks(answers, 4)
        assert sharded[-1].task_stop == 10
        assert all(s.n_answers == 0 for s in sharded)

    def test_invalid_shard_count(self):
        answers = build_answers()
        with pytest.raises(InvalidAnswerSetError):
            shard_by_tasks(answers, 0)

    def test_answer_set_method_delegates(self):
        answers = build_answers()
        sharded = answers.shard_by_tasks(3)
        assert isinstance(sharded, ShardedAnswerSet)
        assert sharded.n_shards == 3


class TestAnswerShard:
    def test_local_tasks_rebased(self):
        shard = AnswerShard(
            tasks=np.array([5, 6, 5]), workers=np.array([0, 1, 2]),
            values=np.array([1, 0, 1]), task_start=5, task_stop=8,
            n_tasks=10, n_workers=3, n_choices=2, index=1,
        )
        assert shard.n_local_tasks == 3
        assert list(shard.local_tasks) == [0, 1, 0]
        assert shard.n_answers == len(shard) == 3

    def test_range_validation(self):
        with pytest.raises(InvalidAnswerSetError):
            AnswerShard(np.array([0]), np.array([0]), np.array([0]),
                        task_start=4, task_stop=2, n_tasks=10,
                        n_workers=1, n_choices=2)
