"""ExecutionPolicy / ExecutionPlan / MethodSpec — the one vocabulary."""

import os
import pickle

import pytest

from repro.core.policy import (
    ExecutionPlan,
    ExecutionPolicy,
    MethodSpec,
    resolve_process_workers,
)


class TestExecutionPolicy:
    def test_defaults(self):
        policy = ExecutionPolicy()
        assert policy.n_shards is None
        assert policy.executor == "auto"
        assert policy.persistent is True

    def test_frozen(self):
        policy = ExecutionPolicy()
        with pytest.raises(Exception):
            policy.n_shards = 4

    @pytest.mark.parametrize("bad", [
        dict(executor="gpu"),
        dict(n_shards=0),
        dict(max_workers=0),
        dict(process_threshold=-1),
    ])
    def test_validation(self, bad):
        with pytest.raises(ValueError):
            ExecutionPolicy(**bad)

    def test_auto_shards_default(self):
        cpus = os.cpu_count() or 1
        assert ExecutionPolicy().resolved_shards == max(2, min(8, cpus))
        assert ExecutionPolicy(n_shards=5).resolved_shards == 5

    def test_serial_plan(self):
        plan = ExecutionPolicy(n_shards=4, executor="serial").resolve(
            n_answers=10)
        assert plan == ExecutionPlan(mode="serial", n_shards=4,
                                     max_workers=0, persistent=True)
        assert plan.sharded

    def test_thread_plan_defaults_width(self):
        plan = ExecutionPolicy(n_shards=4, executor="thread").resolve(
            n_answers=10)
        cpus = os.cpu_count() or 1
        assert plan.mode == "thread"
        assert plan.max_workers == min(4, max(2, cpus))

    def test_process_plan_clamps_width_to_shards(self):
        plan = ExecutionPolicy(n_shards=2, executor="process",
                               max_workers=16).resolve(n_answers=10)
        assert plan.mode == "process"
        assert plan.max_workers == 2
        assert plan.runtime_key == (2, 2)

    def test_auto_reaches_for_processes_above_threshold(self):
        policy = ExecutionPolicy(n_shards=2, process_threshold=100)
        plan = policy.resolve(n_answers=1000)
        if (os.cpu_count() or 1) > 1:
            assert plan.mode == "process"
        else:
            assert plan.mode in ("serial", "thread")

    def test_auto_stays_in_process_below_threshold(self):
        policy = ExecutionPolicy(n_shards=2, process_threshold=10**9)
        assert policy.resolve(n_answers=100).mode in ("serial", "thread")

    def test_resolve_reads_n_answers_off_answer_objects(self):
        class Fake:
            n_answers = 10**9

        policy = ExecutionPolicy(n_shards=2)
        assert policy.resolve(Fake()) == policy.resolve(n_answers=10**9)

    def test_from_legacy_mappings(self):
        assert ExecutionPolicy.from_legacy(n_shards=4).executor == "serial"
        assert ExecutionPolicy.from_legacy(
            n_shards=4, shard_workers=1).executor == "serial"
        threaded = ExecutionPolicy.from_legacy(n_shards=4, shard_workers=3)
        assert threaded.executor == "thread"
        assert threaded.max_workers == 3
        assert ExecutionPolicy.from_legacy(
            n_shards=4, shard_executor="process").executor == "process"

    def test_resolve_process_workers_formula(self):
        cpus = os.cpu_count() or 1
        assert resolve_process_workers(4, None) == min(4, cpus)
        assert resolve_process_workers(2, 8) == 2
        assert resolve_process_workers(8, 3) == 3


class TestMethodSpec:
    def test_name_and_kwargs(self):
        spec = MethodSpec("D&S", max_iter=9, seed=0)
        assert spec.name == "D&S"
        assert spec.kwargs == {"max_iter": 9, "seed": 0}

    def test_equality_ignores_kwarg_order(self):
        assert MethodSpec("ZC", a=1, b=2) == MethodSpec("ZC", b=2, a=1)
        assert MethodSpec("ZC", a=1) != MethodSpec("ZC", a=2)

    def test_with_defaults_does_not_override(self):
        spec = MethodSpec("GLAD", seed=7).with_defaults(seed=0, max_iter=3)
        assert spec.kwargs == {"seed": 7, "max_iter": 3}

    def test_coerce(self):
        spec = MethodSpec("D&S", seed=1)
        assert MethodSpec.coerce(spec) is not None
        assert MethodSpec.coerce(spec).kwargs == {"seed": 1}
        assert MethodSpec.coerce("D&S", {"seed": 1}) == spec
        # extra kwargs become defaults only
        assert MethodSpec.coerce(spec, {"seed": 9}).kwargs == {"seed": 1}

    def test_requires_name(self):
        with pytest.raises(ValueError):
            MethodSpec("")

    def test_picklable(self):
        spec = MethodSpec("D&S", seed=0, max_iter=5)
        assert pickle.loads(pickle.dumps(spec)) == spec

    def test_create_and_capabilities(self):
        spec = MethodSpec("D&S", seed=0)
        instance = spec.create()
        assert instance.name == "D&S"
        assert instance.method_spec == spec
        assert spec.capabilities().sharding is True

    def test_create_with_policy_sets_sharding(self):
        spec = MethodSpec("D&S", seed=0)
        policy = ExecutionPolicy(n_shards=3, executor="serial")
        assert spec.create(policy=policy).n_shards == 3
        # Methods without sharded EM ignore the policy outright.
        assert MethodSpec("MV").create(policy=policy).n_shards == 1

    def test_create_thread_policy_defaults_a_real_width(self):
        # A forced thread tier must actually thread: the default pool
        # width resolves like ExecutionPolicy.resolve, not to 0.
        instance = MethodSpec("D&S").create(
            policy=ExecutionPolicy(n_shards=4, executor="thread"))
        expected = ExecutionPolicy(
            n_shards=4, executor="thread").resolve(n_answers=0)
        assert instance.shard_workers == expected.max_workers
        assert instance.shard_workers >= 1


class TestFitPolicy:
    """fit(policy=...) drives the in-process tiers end to end."""

    def _answers(self):
        import numpy as np

        from repro.core.answers import AnswerSet
        from repro.core.tasktypes import TaskType

        rng = np.random.default_rng(0)
        return AnswerSet(rng.integers(0, 30, 300), rng.integers(0, 6, 300),
                         rng.integers(0, 2, 300), TaskType.DECISION_MAKING,
                         n_tasks=30, n_workers=6)

    def test_fit_policy_matches_constructor_sharding(self):
        import numpy as np

        from repro.core.registry import create

        answers = self._answers()
        policy = ExecutionPolicy(n_shards=3, executor="serial")
        via_create = create("D&S", seed=0, policy=policy).fit(answers)
        via_fit = create("D&S", seed=0).fit(answers, policy=policy)
        assert np.array_equal(via_create.posterior, via_fit.posterior)

    def test_fit_policy_overrides_constructor(self):
        from repro.core.registry import create

        answers = self._answers()
        instance = create("D&S", seed=0,
                          policy=ExecutionPolicy(n_shards=2,
                                                 executor="serial"))
        # The per-fit policy wins over construction-time sharding.
        result = instance.fit(
            answers, policy=ExecutionPolicy(n_shards=1, executor="serial"))
        assert result.posterior is not None

    def test_process_plan_requires_registry_built_method(self):
        from repro.methods.dawid_skene import DawidSkene

        answers = self._answers()
        direct = DawidSkene(seed=0)  # no method_spec recorded
        with pytest.raises(ValueError, match="registry-created"):
            direct.fit(answers, policy=ExecutionPolicy(
                n_shards=2, executor="process"))


class TestIgnoredPolicyWarning:
    """A non-sharding method handed explicit parallelism says so."""

    def _answers(self):
        import numpy as np

        from repro.core.answers import AnswerSet
        from repro.core.tasktypes import TaskType

        rng = np.random.default_rng(0)
        return AnswerSet(rng.integers(0, 30, 300), rng.integers(0, 6, 300),
                         rng.integers(0, 2, 300), TaskType.DECISION_MAKING,
                         n_tasks=30, n_workers=6)

    def test_warns_once_naming_method_and_fields(self):
        from repro.core.registry import create

        answers = self._answers()
        policy = ExecutionPolicy(n_shards=4, executor="process")
        with pytest.warns(UserWarning) as caught:
            create("MV", seed=0).fit(answers, policy=policy)
        messages = [str(w.message) for w in caught
                    if w.category is UserWarning]
        assert len(messages) == 1
        assert "MV" in messages[0]
        assert "n_shards=4" in messages[0]
        assert "executor='process'" in messages[0]

    def test_resolved_plan_warns_with_mode(self):
        from repro.core.registry import create

        answers = self._answers()
        plan = ExecutionPolicy(n_shards=4, executor="thread").resolve(
            answers)
        with pytest.warns(UserWarning, match="mode='thread'"):
            create("MV", seed=0).fit(answers, policy=plan)

    def test_default_policy_stays_silent(self):
        import warnings as _warnings

        from repro.core.registry import create

        answers = self._answers()
        # Auto tiering with no explicit shard count — how grids apply
        # one policy across the zoo — must not warn on MV.
        with _warnings.catch_warnings():
            _warnings.simplefilter("error", UserWarning)
            create("MV", seed=0).fit(answers,
                                     policy=ExecutionPolicy())
            create("MV", seed=0).fit(
                answers, policy=ExecutionPolicy(n_shards=1,
                                                executor="serial"))

    def test_sharded_method_does_not_warn(self):
        import warnings as _warnings

        from repro.core.registry import create

        answers = self._answers()
        with _warnings.catch_warnings():
            _warnings.simplefilter("error", UserWarning)
            create("D&S", seed=0).fit(
                answers, policy=ExecutionPolicy(n_shards=3,
                                                executor="serial"))
