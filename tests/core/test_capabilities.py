"""Registry-wide capability audit (satellite of the API redesign).

Every method's declared :class:`~repro.core.registry.Capabilities` is
pinned against an expected table, so a new method (or a refactor of a
shared base class) can no longer silently drop — or accidentally gain —
a capability.  A second audit cross-checks the declarations against the
``_fit`` signatures: a flag is only honest if the implementation
actually accepts the corresponding keyword.
"""

import inspect

import pytest

from repro.core.registry import (
    Capabilities,
    available_methods,
    capabilities,
    method_class,
)
from repro.core.tasktypes import TaskType

D = TaskType.DECISION_MAKING
S = TaskType.SINGLE_CHOICE
N = TaskType.NUMERIC


def caps(warm=False, seed=False, shard=False, golden=False, quality=False,
         types=(), ext=False, delta=False) -> Capabilities:
    return Capabilities(
        warm_start=warm, seed_posterior=seed, sharding=shard,
        golden=golden, initial_quality=quality,
        task_types=frozenset(types), is_extension=ext, delta=delta,
    )


#: The authoritative table: paper Table 4 task types, Table 7
#: qualification support, Section 6.3.3 golden support, plus the
#: streaming/sharding capabilities grown in PRs 1-3, the method-zoo
#: sharding pass (CATD/PM/KOS/Minimax/BCC/CBCC/VI) and the per-family
#: delta-refit contracts (every sharded method).  LFC mirrors D&S
#: exactly — it shares the same EM (the audit this table came from
#: found its ``seed_posterior`` reliance on base-class inheritance).
EXPECTED = {
    "MV": caps(types=(D, S)),
    "Mean": caps(types=(N,)),
    "Median": caps(types=(N,)),
    "D&S": caps(warm=True, seed=True, shard=True, golden=True,
                quality=True, types=(D, S), delta=True),
    "LFC": caps(warm=True, seed=True, shard=True, golden=True,
                quality=True, types=(D, S), delta=True),
    "ZC": caps(warm=True, seed=True, shard=True, golden=True,
               quality=True, types=(D, S), delta=True),
    "GLAD": caps(warm=True, seed=True, shard=True, golden=True,
                 quality=True, types=(D, S), delta=True),
    "LFC_N": caps(warm=True, shard=True, golden=True, quality=True,
                  types=(N,), delta=True),
    "BCC": caps(warm=True, shard=True, golden=True, types=(D, S),
                delta=True),
    "CBCC": caps(warm=True, shard=True, types=(D, S), delta=True),
    "CATD": caps(warm=True, shard=True, golden=True, quality=True,
                 types=(D, S, N), delta=True),
    "PM": caps(warm=True, shard=True, golden=True, quality=True,
               types=(D, S, N), delta=True),
    "Minimax": caps(warm=True, shard=True, golden=True, types=(D, S),
                    delta=True),
    "Minimax-Ord": caps(warm=True, shard=True, golden=True, types=(D, S),
                        ext=True, delta=True),
    "KOS": caps(warm=True, shard=True, types=(D,), delta=True),
    "VI-BP": caps(warm=True, shard=True, golden=True, quality=True,
                  types=(D,), delta=True),
    "VI-MF": caps(warm=True, shard=True, golden=True, quality=True,
                  types=(D,), delta=True),
    "Multi": caps(types=(D,)),
}


def test_expected_table_covers_the_whole_registry():
    assert set(EXPECTED) == set(available_methods())


@pytest.mark.parametrize("name", sorted(EXPECTED))
def test_declared_capabilities_match_table(name):
    assert capabilities(name) == EXPECTED[name]


@pytest.mark.parametrize("name", sorted(EXPECTED))
def test_flags_match_fit_signatures(name):
    """A capability flag must be backed by the ``_fit`` signature.

    The base class forwards ``warm_start`` / ``seed_posterior`` /
    ``shard_runner`` keywords exactly when the flag is set, so a flag
    without the parameter breaks every fit, and a parameter without the
    flag is a capability silently dropped (the LFC-style mismatch this
    audit exists to catch).
    """
    cls = method_class(name)
    params = inspect.signature(cls._fit).parameters
    accepts_kwargs = any(p.kind is inspect.Parameter.VAR_KEYWORD
                         for p in params.values())
    for flag, parameter in (
        ("warm_start", "warm_start"),
        ("seed_posterior", "seed_posterior"),
        ("sharding", "shard_runner"),
    ):
        declared = getattr(capabilities(name), flag)
        implemented = parameter in params or accepts_kwargs
        assert declared == implemented, (
            f"{name}: capabilities().{flag} is {declared} but _fit "
            f"{'accepts' if implemented else 'lacks'} {parameter!r}"
        )


@pytest.mark.parametrize("name", sorted(EXPECTED))
def test_expected_table_is_a_derived_artifact(name):
    """The table above is no longer a parallel truth: the static
    contract checker (``repro check``) derives the same capabilities
    from each implementation's ``_fit`` signature, body reads, and
    sharded-spec hook.  A drift in either direction fails here *and*
    in CI's ``repro check`` gate."""
    from repro.checks.contracts import derive_capabilities

    assert derive_capabilities(name) == EXPECTED[name]


def test_lfc_declares_its_capabilities_explicitly():
    """The audit's concrete fix: LFC's capabilities live on the LFC
    class itself, not only on the base it shares with D&S."""
    cls = method_class("LFC")
    for flag in ("supports_warm_start", "supports_seed_posterior",
                 "supports_sharding", "supports_golden",
                 "supports_initial_quality"):
        assert flag in vars(cls), f"LFC must declare {flag} explicitly"


def test_capabilities_cached_and_frozen():
    first = capabilities("D&S")
    assert capabilities("D&S") is first
    with pytest.raises(Exception):
        first.sharding = False
