"""Registry-wide capability audit (satellite of the API redesign).

Every method's declared :class:`~repro.core.registry.Capabilities` is
pinned against an expected table, so a new method (or a refactor of a
shared base class) can no longer silently drop — or accidentally gain —
a capability.  A second audit cross-checks the declarations against the
``_fit`` signatures: a flag is only honest if the implementation
actually accepts the corresponding keyword.
"""

import inspect

import pytest

from repro.core.registry import (
    Capabilities,
    available_methods,
    capabilities,
    method_class,
)
from repro.core.tasktypes import TaskType

D = TaskType.DECISION_MAKING
S = TaskType.SINGLE_CHOICE
N = TaskType.NUMERIC


def caps(warm=False, seed=False, shard=False, golden=False, quality=False,
         types=(), ext=False) -> Capabilities:
    return Capabilities(
        warm_start=warm, seed_posterior=seed, sharding=shard,
        golden=golden, initial_quality=quality,
        task_types=frozenset(types), is_extension=ext,
    )


#: The authoritative table: paper Table 4 task types, Table 7
#: qualification support, Section 6.3.3 golden support, plus the
#: streaming/sharding capabilities grown in PRs 1-3 and the method-zoo
#: sharding pass (CATD/PM/KOS/Minimax/BCC/CBCC/VI).  LFC mirrors D&S
#: exactly — it shares the same EM (the audit this table came from
#: found its ``seed_posterior`` reliance on base-class inheritance).
EXPECTED = {
    "MV": caps(types=(D, S)),
    "Mean": caps(types=(N,)),
    "Median": caps(types=(N,)),
    "D&S": caps(warm=True, seed=True, shard=True, golden=True,
                quality=True, types=(D, S)),
    "LFC": caps(warm=True, seed=True, shard=True, golden=True,
                quality=True, types=(D, S)),
    "ZC": caps(warm=True, seed=True, shard=True, golden=True,
               quality=True, types=(D, S)),
    "GLAD": caps(warm=True, seed=True, shard=True, golden=True,
                 quality=True, types=(D, S)),
    "LFC_N": caps(warm=True, shard=True, golden=True, quality=True,
                  types=(N,)),
    "BCC": caps(shard=True, golden=True, types=(D, S)),
    "CBCC": caps(shard=True, types=(D, S)),
    "CATD": caps(warm=True, shard=True, golden=True, quality=True,
                 types=(D, S, N)),
    "PM": caps(warm=True, shard=True, golden=True, quality=True,
               types=(D, S, N)),
    "Minimax": caps(shard=True, golden=True, types=(D, S)),
    "Minimax-Ord": caps(shard=True, golden=True, types=(D, S), ext=True),
    "KOS": caps(shard=True, types=(D,)),
    "VI-BP": caps(shard=True, golden=True, quality=True, types=(D,)),
    "VI-MF": caps(shard=True, golden=True, quality=True, types=(D,)),
    "Multi": caps(types=(D,)),
}


def test_expected_table_covers_the_whole_registry():
    assert set(EXPECTED) == set(available_methods())


@pytest.mark.parametrize("name", sorted(EXPECTED))
def test_declared_capabilities_match_table(name):
    assert capabilities(name) == EXPECTED[name]


@pytest.mark.parametrize("name", sorted(EXPECTED))
def test_flags_match_fit_signatures(name):
    """A capability flag must be backed by the ``_fit`` signature.

    The base class forwards ``warm_start`` / ``seed_posterior`` /
    ``shard_runner`` keywords exactly when the flag is set, so a flag
    without the parameter breaks every fit, and a parameter without the
    flag is a capability silently dropped (the LFC-style mismatch this
    audit exists to catch).
    """
    cls = method_class(name)
    params = inspect.signature(cls._fit).parameters
    accepts_kwargs = any(p.kind is inspect.Parameter.VAR_KEYWORD
                         for p in params.values())
    for flag, parameter in (
        ("warm_start", "warm_start"),
        ("seed_posterior", "seed_posterior"),
        ("sharding", "shard_runner"),
    ):
        declared = getattr(capabilities(name), flag)
        implemented = parameter in params or accepts_kwargs
        assert declared == implemented, (
            f"{name}: capabilities().{flag} is {declared} but _fit "
            f"{'accepts' if implemented else 'lacks'} {parameter!r}"
        )


def test_lfc_declares_its_capabilities_explicitly():
    """The audit's concrete fix: LFC's capabilities live on the LFC
    class itself, not only on the base it shares with D&S."""
    cls = method_class("LFC")
    for flag in ("supports_warm_start", "supports_seed_posterior",
                 "supports_sharding", "supports_golden",
                 "supports_initial_quality"):
        assert flag in vars(cls), f"LFC must declare {flag} explicitly"


def test_capabilities_cached_and_frozen():
    first = capabilities("D&S")
    assert capabilities("D&S") is first
    with pytest.raises(Exception):
        first.sharding = False
