"""Bit-exactness of the frozen segmented-reduction operators.

The contract (see :mod:`repro.inference.segops`): the CSR form and the
numpy fallback form are interchangeable with the ``np.bincount`` /
``np.add.at`` idioms they replace at the bit level, for both the plain
per-answer-weights form and the ``cols``-indirected table form.
"""

import numpy as np
import pytest

from repro.inference.segops import HAVE_SPARSE, BasedScatterAdd, SegmentSum


def random_case(seed=0, n=5000, n_rows=60, n_cols=40, m=3):
    rng = np.random.default_rng(seed)
    rows = rng.integers(0, n_rows, n)
    cols = rng.integers(0, n_cols, n)
    weights1 = rng.normal(0, 1, n)
    weights2 = rng.normal(0, 1, (n, m))
    table1 = rng.normal(0, 1, n_cols)
    table2 = rng.normal(0, 1, (n_cols, m))
    return rows, cols, weights1, weights2, table1, table2


def as_fallback(op):
    """The same operator with the CSR backend disabled."""
    op._op = None
    return op


class TestSegmentSum:
    @pytest.mark.parametrize("fallback", [False, True])
    def test_matches_bincount_1d(self, fallback):
        rows, _, weights, _, _, _ = random_case()
        op = SegmentSum(rows, 60)
        if fallback:
            op = as_fallback(op)
        expected = np.bincount(rows, weights=weights, minlength=60)
        assert np.array_equal(op(weights), expected)

    @pytest.mark.parametrize("fallback", [False, True])
    def test_matches_bincount_2d(self, fallback):
        rows, _, _, weights, _, _ = random_case()
        op = SegmentSum(rows, 60)
        if fallback:
            op = as_fallback(op)
        result = op(weights)
        for j in range(weights.shape[1]):
            assert np.array_equal(
                result[:, j],
                np.bincount(rows, weights=weights[:, j], minlength=60))

    @pytest.mark.parametrize("fallback", [False, True])
    def test_cols_indirection_matches_gather_then_bincount(self, fallback):
        rows, cols, _, _, table1, table2 = random_case()
        op = SegmentSum(rows, 60, cols=cols, n_cols=40)
        if fallback:
            op = as_fallback(op)
        assert np.array_equal(
            op(table1),
            np.bincount(rows, weights=table1[cols], minlength=60))
        result = op(table2)
        for j in range(table2.shape[1]):
            assert np.array_equal(
                result[:, j],
                np.bincount(rows, weights=table2[cols, j], minlength=60))

    def test_validation(self):
        with pytest.raises(ValueError, match="1-D"):
            SegmentSum(np.zeros((2, 2), dtype=int), 4)
        with pytest.raises(ValueError, match="lie in"):
            SegmentSum(np.array([0, 5]), 4)
        with pytest.raises(ValueError, match="n_cols"):
            SegmentSum(np.array([0, 1]), 4, cols=np.array([0, 1]))
        with pytest.raises(ValueError, match="parallel"):
            SegmentSum(np.array([0, 1]), 4, cols=np.array([0]), n_cols=2)

    def test_empty(self):
        op = SegmentSum(np.empty(0, dtype=np.int64), 5)
        assert np.array_equal(op(np.empty(0)), np.zeros(5))


class TestBasedScatterAdd:
    @pytest.mark.parametrize("fallback", [False, True])
    def test_matches_base_copy_add_at_1d(self, fallback):
        rows, _, weights, _, _, _ = random_case(seed=1)
        base = np.random.default_rng(2).normal(0, 1, 60)
        op = BasedScatterAdd(rows, 60)
        if fallback:
            op = as_fallback(op)
        expected = base.copy()
        np.add.at(expected, rows, weights)
        assert np.array_equal(op(base, weights), expected)

    @pytest.mark.parametrize("fallback", [False, True])
    def test_matches_base_copy_add_at_2d(self, fallback):
        rows, _, _, weights, _, _ = random_case(seed=3)
        base_row = np.random.default_rng(4).normal(0, 1, weights.shape[1])
        op = BasedScatterAdd(rows, 60)
        if fallback:
            op = as_fallback(op)
        expected = np.tile(base_row, (60, 1))
        np.add.at(expected, rows, weights)
        assert np.array_equal(op(base_row, weights), expected)

    @pytest.mark.parametrize("fallback", [False, True])
    def test_cols_indirection_matches_gathered_add_at(self, fallback):
        rows, cols, _, _, _, table = random_case(seed=5)
        base = np.random.default_rng(6).normal(0, 1, (60, table.shape[1]))
        op = BasedScatterAdd(rows, 60, cols=cols, n_cols=40)
        if fallback:
            op = as_fallback(op)
        expected = base.copy()
        np.add.at(expected, rows, table[cols])
        assert np.array_equal(op(base, table), expected)

    def test_accumulation_starts_from_base(self):
        # One row, several weights: ((base + w0) + w1) + w2, not
        # base + (w0 + w1 + w2).
        rows = np.zeros(3, dtype=np.int64)
        weights = np.array([1e-16, 1.0, -1.0])
        op = BasedScatterAdd(rows, 1)
        expected = np.array([1.0])
        np.add.at(expected, rows, weights)
        assert np.array_equal(op(np.array([1.0]), weights), expected)

    def test_buffer_reuse_across_calls(self):
        rows, _, weights, _, _, _ = random_case(seed=7)
        op = BasedScatterAdd(rows, 60)
        first = op(np.zeros(60), weights)
        second = op(np.zeros(60), 2.0 * weights)
        assert np.allclose(2.0 * first, second)


def test_sparse_backend_is_active():
    # The container ships SciPy; the fast path must actually be in use.
    assert HAVE_SPARSE
