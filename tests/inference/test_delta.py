"""Delta-refit machinery: dirty flags, freezing, and the runner surface.

Unit-level coverage of :mod:`repro.inference.sharded`'s incremental-EM
additions — the engine-level parity suite lives in
``tests/engine/test_delta_refit.py``.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.answers import AnswerSet
from repro.core.registry import create
from repro.core.policy import ExecutionPolicy
from repro.core.tasktypes import TaskType
from repro.inference.sharded import (
    DeltaPlan,
    ShardState,
    dirty_shards,
    make_runner,
    pad_rows,
    run_em_sharded,
)

POLICY = ExecutionPolicy(n_shards=4, executor="serial")


def synthetic(n_answers=2000, n_tasks=200, n_workers=12, seed=0,
              tail_tasks=None):
    """Decision answers in task-creation order; an optional appended
    tail confined to ``tail_tasks`` (the dirty range)."""
    rng = np.random.default_rng(seed)
    truth = rng.integers(0, 2, n_tasks)
    acc = rng.beta(6, 2, n_workers)
    tasks = np.sort(rng.integers(0, n_tasks, n_answers), kind="stable")
    if tail_tasks is not None:
        tasks = np.concatenate([tasks, np.asarray(tail_tasks)])
    workers = rng.integers(0, n_workers, len(tasks))
    correct = rng.random(len(tasks)) < acc[workers]
    values = np.where(correct, truth[tasks], 1 - truth[tasks])
    return AnswerSet(tasks, workers, values, TaskType.DECISION_MAKING,
                     n_tasks=n_tasks, n_workers=n_workers)


class TestDirtyShards:
    def test_marks_exactly_the_owning_shards(self):
        cuts = (0, 10, 20, 30)
        assert list(dirty_shards(cuts, np.array([3, 4]), 30)) == \
            [True, False, False]
        assert list(dirty_shards(cuts, np.array([10]), 30)) == \
            [False, True, False]
        assert list(dirty_shards(cuts, np.array([29]), 30)) == \
            [False, False, True]

    def test_empty_batch_marks_nothing(self):
        assert not dirty_shards((0, 10, 20), np.array([], dtype=int),
                                20).any()

    def test_appended_tasks_dirty_the_last_shard(self):
        # Tasks at or beyond the cached last cut extend the last shard.
        dirty = dirty_shards((0, 10, 20), np.array([25]), 26)
        assert list(dirty) == [False, True]
        # Growth of n_tasks alone (adversarial: a new task with no
        # answer in the batch) still dirties the last shard.
        dirty = dirty_shards((0, 10, 20), np.array([5]), 26)
        assert list(dirty) == [True, True]

    @settings(max_examples=200, deadline=None)
    @given(st.data())
    def test_property_every_new_answer_lands_in_a_dirty_shard(self, data):
        n_tasks = data.draw(st.integers(2, 60))
        n_cuts = data.draw(st.integers(1, 6))
        interior = sorted(data.draw(st.lists(
            st.integers(0, n_tasks), min_size=n_cuts, max_size=n_cuts)))
        cuts = [0] + interior + [n_tasks]
        grown = data.draw(st.integers(n_tasks, n_tasks + 10))
        new_tasks = data.draw(st.lists(st.integers(0, grown - 1),
                                       max_size=20))
        dirty = dirty_shards(cuts, np.array(new_tasks, dtype=int), grown)
        ext = list(cuts[:-1]) + [grown]
        for t in new_tasks:
            owner = np.searchsorted(ext, t, side="right") - 1
            owner = min(max(owner, 0), len(cuts) - 2)
            assert dirty[owner], (cuts, grown, t)


class TestPadRows:
    def test_pads_with_zeros_and_keeps_wide_arrays(self):
        a = np.arange(6, dtype=np.float64).reshape(3, 2)
        padded = pad_rows(a, 5)
        assert padded.shape == (5, 2)
        assert np.array_equal(padded[:3], a)
        assert not padded[3:].any()
        assert pad_rows(a, 3) is a
        assert pad_rows(a, 2) is a


class TestRunnerOnly:
    def test_only_runs_exactly_the_listed_shards(self):
        answers = synthetic()
        method = create("D&S", seed=0, policy=POLICY)
        spec = method.make_em_spec(answers.n_tasks, answers.n_workers,
                                   answers.n_choices)
        runner = make_runner(answers, spec, 4)
        full = runner.call("init_block")
        some = runner.call("init_block", only=[2, 0])
        assert len(some) == 2
        assert np.array_equal(some[0], full[2])
        assert np.array_equal(some[1], full[0])
        assert runner.call("init_block", only=[]) == []


def _fit_pair(tail_tasks, **delta_kwargs):
    """A collecting full fit on the base plus (full, delta) refits on
    the grown answers; returns (full_result, delta_result, state)."""
    base = synthetic()
    grown = synthetic(tail_tasks=tail_tasks)
    cold = create("D&S", seed=0, policy=POLICY).fit(base,
                                                    delta=DeltaPlan())
    state = cold.shard_state
    full = create("D&S", seed=0, policy=POLICY).fit(grown, warm_start=cold)
    dirty = dirty_shards(state.task_cuts, grown.tasks[state.n_answers:],
                         grown.n_tasks)
    delta = create("D&S", seed=0, policy=POLICY).fit(
        grown, warm_start=cold,
        delta=DeltaPlan(prev=state, dirty=dirty, **delta_kwargs))
    return full, delta, state, dirty


class TestDeltaLoop:
    def test_collecting_full_fit_emits_aligned_state(self):
        answers = synthetic()
        result = create("D&S", seed=0, policy=POLICY).fit(
            answers, delta=DeltaPlan())
        state = result.shard_state
        assert state is not None
        assert state.n_shards == 4
        assert state.task_cuts[0] == 0
        assert state.task_cuts[-1] == answers.n_tasks
        assert state.n_answers == answers.n_answers
        assert state.base_answers == answers.n_answers
        for k, block in enumerate(state.blocks):
            assert len(block) == (state.task_cuts[k + 1]
                                  - state.task_cuts[k])
        assert all(s is not None for s in state.stats)
        # The collected blocks are the final posterior, split.
        assert np.array_equal(np.concatenate(state.blocks),
                              result.posterior)

    def test_collect_does_not_change_the_fit(self):
        answers = synthetic()
        plain = create("D&S", seed=0, policy=POLICY).fit(answers)
        collected = create("D&S", seed=0, policy=POLICY).fit(
            answers, delta=DeltaPlan())
        assert np.array_equal(plain.posterior, collected.posterior)
        assert plain.n_iterations == collected.n_iterations

    def test_delta_refit_matches_full_warm_refit(self):
        rng = np.random.default_rng(3)
        full, delta, state, dirty = _fit_pair(rng.integers(0, 50, 200))
        assert dirty.sum() < len(dirty)  # a genuinely partial refit
        assert delta.fit_stats.mode == "delta"
        assert delta.fit_stats.dirty_shards == int(dirty.sum())
        assert np.abs(full.posterior - delta.posterior).max() < 1e-4
        assert (full.truths == delta.truths).mean() >= 0.999

    def test_clean_shards_skip_the_priming_e_step(self):
        rng = np.random.default_rng(4)
        _, delta, state, dirty = _fit_pair(rng.integers(0, 50, 200))
        stats = delta.fit_stats
        # Priming counted exactly the dirty shards.
        assert stats.active_shards[0] == int(dirty.sum())
        assert stats.frozen_shards[0] == len(dirty) - int(dirty.sum())

    def test_adversarial_freeze_tol_never_skips_a_dirty_shard(self):
        # Even with an absurd freeze tolerance (everything freezes on
        # contact) the dirty shard is primed and its answers change the
        # posterior; clean shards keep their cached blocks.
        rng = np.random.default_rng(5)
        base = synthetic()
        # Concentrate a contradicting tail on shard 0's range so its
        # posterior must move.
        tail = np.zeros(300, dtype=np.int64)
        grown = synthetic(tail_tasks=tail)
        cold = create("D&S", seed=0, policy=POLICY).fit(base,
                                                        delta=DeltaPlan())
        state = cold.shard_state
        dirty = dirty_shards(state.task_cuts, grown.tasks[state.n_answers:],
                             grown.n_tasks)
        assert list(dirty) == [True, False, False, False]
        delta = create("D&S", seed=0, policy=POLICY).fit(
            grown, warm_start=cold,
            delta=DeltaPlan(prev=state, dirty=dirty, freeze_tol=1e9,
                            verify_every=1))
        stats = delta.fit_stats
        assert stats.dirty_shards == 1
        assert stats.e_block_calls >= 1  # the dirty shard was primed
        start, stop = state.task_cuts[0], state.task_cuts[1]
        # The dirty shard's posterior reflects the new answers...
        assert np.abs(delta.posterior[start:stop]
                      - cold.posterior[start:stop]).max() > 1e-3
        # ...while clean shards never entered the per-iteration active
        # set (only the dirty shard iterated; frozen blocks moved only
        # through verify adoptions at the final parameters).
        assert all(active <= 1 for active in stats.active_shards)

    def test_tight_freeze_tol_converges_like_full(self):
        rng = np.random.default_rng(6)
        full, delta, _, _ = _fit_pair(rng.integers(0, 200, 200),
                                      freeze_tol=1e-12, verify_every=1)
        assert np.abs(full.posterior - delta.posterior).max() < 1e-7

    def test_delta_requires_warm_parameters(self):
        answers = synthetic()
        cold = create("D&S", seed=0, policy=POLICY).fit(answers,
                                                        delta=DeltaPlan())
        state = cold.shard_state
        method = create("D&S", seed=0, policy=POLICY)
        spec = method.make_em_spec(answers.n_tasks, answers.n_workers,
                                   answers.n_choices)
        runner = make_runner(answers, spec, 4)
        with pytest.raises(ValueError, match="initial_parameters"):
            run_em_sharded(runner, delta=DeltaPlan(
                prev=state, dirty=[True] * state.n_shards))

    def test_mismatched_layout_is_rejected(self):
        # A runner whose shard layout diverged from the cached state
        # (e.g. a runtime that re-placed with different cuts) must be
        # rejected rather than silently misaligning blocks.
        answers = synthetic()
        cold = create("D&S", seed=0, policy=POLICY).fit(answers,
                                                        delta=DeltaPlan())
        state = cold.shard_state
        method = create("D&S", seed=0, policy=POLICY)
        spec = method.make_em_spec(answers.n_tasks, answers.n_workers,
                                   answers.n_choices)
        runner = make_runner(answers, spec, 2)  # 2 shards vs cached 4
        with pytest.raises(ValueError, match="layout"):
            run_em_sharded(runner, initial_parameters=object(),
                           delta=DeltaPlan(prev=state,
                                           dirty=[True, False]))

    def test_extended_cuts_reject_shrunk_task_space(self):
        state = ShardState(task_cuts=(0, 5, 10), sizes=(10, 3, 2),
                           blocks=[], stats=[])
        assert state.extended_cuts(14) == [0, 5, 14]
        with pytest.raises(ValueError, match="append-only"):
            state.extended_cuts(8)


class TestFitStats:
    def test_full_fit_records_telemetry(self):
        answers = synthetic()
        result = create("D&S", seed=0, policy=POLICY).fit(answers)
        stats = result.fit_stats
        assert stats is not None and stats.mode == "full"
        assert stats.n_shards == 4
        assert stats.iterations == result.n_iterations
        assert stats.e_block_calls == 4 * result.n_iterations
        assert stats.total_seconds >= stats.em_seconds > 0
        assert stats.overhead_seconds >= 0
        assert "full refit" in stats.summary()
        payload = stats.as_dict()
        assert payload["mode"] == "full"
        assert payload["overhead_seconds"] == stats.overhead_seconds

    def test_delta_fit_summary_names_the_mode(self):
        rng = np.random.default_rng(7)
        _, delta, _, _ = _fit_pair(rng.integers(0, 50, 200))
        assert "delta refit" in delta.fit_stats.summary()
        assert delta.fit_stats.verify_passes >= 1
