"""Tests for the generic EM loop."""

import numpy as np
import pytest

from repro.exceptions import ConvergenceError
from repro.inference.em import run_em


class TestRunEM:
    def test_fixed_point_converges_immediately(self):
        start = np.array([[0.9, 0.1], [0.2, 0.8]])
        outcome = run_em(
            initial_posterior=start,
            m_step=lambda post: None,
            e_step=lambda params: start,
            tolerance=1e-6,
            max_iter=50,
        )
        assert outcome.converged
        assert outcome.n_iterations == 2  # one to set, one to confirm

    def test_iteration_cap_respected(self):
        flip = np.array([[1.0, 0.0]])
        flop = np.array([[0.0, 1.0]])
        state = {"toggle": False}

        def e_step(params):
            state["toggle"] = not state["toggle"]
            return flip if state["toggle"] else flop

        outcome = run_em(flip, m_step=lambda p: None, e_step=e_step,
                         tolerance=1e-6, max_iter=7)
        assert not outcome.converged
        assert outcome.n_iterations == 7

    def test_golden_clamped_in_initial_and_updates(self):
        seen = []

        def m_step(posterior):
            seen.append(posterior.copy())
            return None

        def e_step(params):
            return np.full((2, 2), 0.5)

        run_em(np.full((2, 2), 0.5), m_step=m_step, e_step=e_step,
               tolerance=1e-6, max_iter=5, golden={0: 1})
        for posterior in seen:
            assert list(posterior[0]) == [0.0, 1.0]

    def test_parameters_returned_from_last_m_step(self):
        outcome = run_em(
            np.array([[0.5, 0.5]]),
            m_step=lambda post: "params!",
            e_step=lambda params: np.array([[0.6, 0.4]]),
            tolerance=1e-6,
            max_iter=10,
        )
        assert outcome.parameters == "params!"

    def test_nan_posterior_raises(self):
        with pytest.raises(ConvergenceError):
            run_em(
                np.array([[0.5, 0.5]]),
                m_step=lambda post: None,
                e_step=lambda params: np.array([[np.nan, 1.0]]),
                tolerance=1e-6,
                max_iter=5,
            )
