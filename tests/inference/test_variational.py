"""Tests for the variational helpers."""

import numpy as np
import pytest

from repro.inference.variational import (
    BetaPrior,
    expected_log_beta_counts,
    log_beta_moment_messages,
    posterior_mean_accuracy,
)


class TestBetaPrior:
    def test_validation(self):
        with pytest.raises(ValueError):
            BetaPrior(a=0.0, b=1.0).validate()
        BetaPrior(a=2.0, b=1.0).validate()  # no raise


class TestPosteriorMean:
    def test_no_data_returns_prior_mean(self):
        prior = BetaPrior(a=2.0, b=1.0)
        out = posterior_mean_accuracy(np.zeros(3), np.zeros(3), prior)
        np.testing.assert_allclose(out, 2.0 / 3.0)

    def test_data_dominates_with_many_counts(self):
        prior = BetaPrior(a=2.0, b=1.0)
        out = posterior_mean_accuracy(np.array([900.0]),
                                      np.array([100.0]), prior)
        assert abs(out[0] - 0.9) < 0.01

    def test_monotone_in_correct_counts(self):
        prior = BetaPrior()
        correct = np.arange(0, 50, dtype=float)
        out = posterior_mean_accuracy(correct, np.full(50, 10.0), prior)
        assert (np.diff(out) > 0).all()


class TestExpectedLogCounts:
    def test_log_expectations_negative(self):
        prior = BetaPrior()
        e_log_p, e_log_q = expected_log_beta_counts(
            np.array([5.0]), np.array([5.0]), prior)
        assert e_log_p[0] < 0
        assert e_log_q[0] < 0

    def test_confident_worker_has_larger_gap(self):
        prior = BetaPrior()
        good_p, good_q = expected_log_beta_counts(
            np.array([90.0]), np.array([10.0]), prior)
        poor_p, poor_q = expected_log_beta_counts(
            np.array([55.0]), np.array([45.0]), prior)
        assert (good_p[0] - good_q[0]) > (poor_p[0] - poor_q[0])


class TestMomentMessages:
    def test_messages_are_valid_log_probabilities(self):
        prior = BetaPrior()
        log_c, log_w = log_beta_moment_messages(
            np.array([10.0, 0.0]), np.array([2.0, 0.0]), prior)
        assert (log_c <= 0).all()
        assert (log_w <= 0).all()
        probs = np.exp(log_c) + np.exp(log_w)
        np.testing.assert_allclose(probs, 1.0, atol=1e-9)
