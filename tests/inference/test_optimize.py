"""Tests for the lightweight optimisers."""

import numpy as np

from repro.inference.optimize import gradient_ascent, projected_simplex


class TestGradientAscent:
    def test_maximises_concave_quadratic(self):
        target = np.array([3.0, -2.0])

        def objective(x):
            diff = x - target
            return -float(diff @ diff), -2.0 * diff

        out = gradient_ascent(objective, np.zeros(2), learning_rate=0.3,
                              max_steps=200)
        np.testing.assert_allclose(out, target, atol=1e-2)

    def test_backtracks_on_overshoot(self):
        def objective(x):
            return -float(x @ x), -2.0 * x

        out = gradient_ascent(objective, np.array([10.0]),
                              learning_rate=5.0, max_steps=100)
        assert abs(out[0]) < 10.0  # made progress despite huge step

    def test_stops_on_nan_gradient(self):
        def objective(x):
            return 0.0, np.array([np.nan])

        out = gradient_ascent(objective, np.array([1.0]))
        assert out[0] == 1.0


class TestProjectedSimplex:
    def test_already_on_simplex_unchanged(self):
        v = np.array([0.2, 0.3, 0.5])
        np.testing.assert_allclose(projected_simplex(v), v, atol=1e-12)

    def test_projection_sums_to_one(self):
        rng = np.random.default_rng(0)
        v = rng.normal(size=(20, 6))
        out = projected_simplex(v)
        np.testing.assert_allclose(out.sum(axis=1), 1.0)
        assert (out >= 0).all()

    def test_dominant_coordinate_wins(self):
        out = projected_simplex(np.array([10.0, 0.0, 0.0]))
        np.testing.assert_allclose(out, [1.0, 0.0, 0.0])

    def test_1d_input_returns_1d(self):
        out = projected_simplex(np.array([0.5, 0.5]))
        assert out.shape == (2,)
