"""Tests for the Gibbs-chain runner."""

import numpy as np
import pytest

from repro.inference.gibbs import run_gibbs


class TestRunGibbs:
    def test_tally_counts_retained_samples(self):
        labels = np.zeros(4, dtype=np.int64)
        result = run_gibbs(labels, n_choices=2,
                           sample_step=lambda lab: lab,
                           n_samples=10, burn_in=3)
        assert result.n_samples == 10
        assert result.label_counts[:, 0].sum() == 40

    def test_posterior_normalised(self):
        rng = np.random.default_rng(0)

        def step(labels):
            return rng.integers(0, 3, size=len(labels))

        result = run_gibbs(np.zeros(5, dtype=np.int64), 3, step,
                           n_samples=20, burn_in=5)
        np.testing.assert_allclose(result.posterior.sum(axis=1), 1.0)

    def test_burn_in_samples_discarded(self):
        calls = {"n": 0}

        def step(labels):
            calls["n"] += 1
            # Return label 1 only during burn-in.
            return (np.ones_like(labels) if calls["n"] <= 5
                    else np.zeros_like(labels))

        result = run_gibbs(np.zeros(3, dtype=np.int64), 2, step,
                           n_samples=8, burn_in=5)
        assert result.label_counts[:, 1].sum() == 0

    def test_thinning_skips_sweeps(self):
        calls = {"n": 0}

        def step(labels):
            calls["n"] += 1
            return labels

        run_gibbs(np.zeros(2, dtype=np.int64), 2, step,
                  n_samples=4, burn_in=0, thinning=3)
        assert calls["n"] == 12

    def test_invalid_arguments_rejected(self):
        labels = np.zeros(2, dtype=np.int64)
        with pytest.raises(ValueError):
            run_gibbs(labels, 2, lambda x: x, n_samples=0)
        with pytest.raises(ValueError):
            run_gibbs(labels, 2, lambda x: x, n_samples=1, burn_in=-1)
        with pytest.raises(ValueError):
            run_gibbs(labels, 2, lambda x: x, n_samples=1, thinning=0)
