"""Tests for the distribution helpers."""

import numpy as np
from scipy import stats

from repro.inference.distributions import (
    beta_expected_log,
    chi_square_confidence,
    dirichlet_expected_log,
    sample_categorical_rows,
    sample_dirichlet_rows,
)


class TestExpectations:
    def test_dirichlet_expected_log_matches_montecarlo(self):
        alpha = np.array([2.0, 3.0, 5.0])
        expected = dirichlet_expected_log(alpha)
        rng = np.random.default_rng(0)
        samples = rng.dirichlet(alpha, size=200_000)
        empirical = np.log(samples).mean(axis=0)
        np.testing.assert_allclose(expected, empirical, atol=5e-3)

    def test_beta_expected_log_consistent_with_dirichlet(self):
        a, b = np.array([3.0]), np.array([4.0])
        e_log_p, e_log_q = beta_expected_log(a, b)
        dir_version = dirichlet_expected_log(np.array([3.0, 4.0]))
        np.testing.assert_allclose([e_log_p[0], e_log_q[0]], dir_version)


class TestSampling:
    def test_dirichlet_rows_normalised(self):
        rng = np.random.default_rng(1)
        alpha = np.abs(rng.normal(size=(10, 4))) + 0.1
        samples = sample_dirichlet_rows(alpha, rng)
        np.testing.assert_allclose(samples.sum(axis=-1), 1.0)
        assert (samples >= 0).all()

    def test_dirichlet_multidim(self):
        rng = np.random.default_rng(2)
        alpha = np.ones((3, 2, 5))
        samples = sample_dirichlet_rows(alpha, rng)
        assert samples.shape == (3, 2, 5)
        np.testing.assert_allclose(samples.sum(axis=-1), 1.0)

    def test_dirichlet_mean_approaches_expectation(self):
        rng = np.random.default_rng(3)
        alpha = np.array([[1.0, 2.0, 7.0]])
        draws = np.stack([sample_dirichlet_rows(alpha, rng)[0]
                          for _ in range(20_000)])
        np.testing.assert_allclose(draws.mean(axis=0), alpha[0] / 10.0,
                                   atol=0.01)

    def test_categorical_rows_frequency(self):
        rng = np.random.default_rng(4)
        probabilities = np.tile([0.1, 0.6, 0.3], (50_000, 1))
        draws = sample_categorical_rows(probabilities, rng)
        freqs = np.bincount(draws, minlength=3) / len(draws)
        np.testing.assert_allclose(freqs, [0.1, 0.6, 0.3], atol=0.01)

    def test_categorical_handles_unnormalised_rows(self):
        rng = np.random.default_rng(5)
        probabilities = np.array([[2.0, 2.0]])
        draws = [sample_categorical_rows(probabilities, rng)[0]
                 for _ in range(200)]
        assert set(draws) == {0, 1}


class TestChiSquare:
    def test_matches_scipy(self):
        counts = np.array([1, 10, 100])
        expected = stats.chi2.ppf(0.975, df=counts)
        np.testing.assert_allclose(chi_square_confidence(counts), expected)

    def test_zero_count_gives_zero(self):
        out = chi_square_confidence(np.array([0, 5]))
        assert out[0] == 0.0
        assert out[1] > 0

    def test_monotone_in_count(self):
        out = chi_square_confidence(np.arange(1, 50))
        assert (np.diff(out) > 0).all()
