"""The lease-protocol verifier: state machine, leak ledgers, and the
instrumented runtime."""

import numpy as np
import pytest

from repro.checks import protocol
from repro.checks.protocol import LeaseProtocolVerifier
from repro.core.answers import AnswerSet
from repro.core.tasktypes import TaskType
from repro.exceptions import ProtocolError


@pytest.fixture
def verifier():
    return LeaseProtocolVerifier()


# -- state machine (pure unit) ----------------------------------------
def test_clean_cycle_leaves_empty_ledgers(verifier):
    verifier.segment_created("psm_a")
    verifier.pool_spawned(1)
    verifier.lease_acquired(10, 100)
    verifier.lease_dispatch(10, 100)
    verifier.lease_released(10)
    verifier.pool_shutdown(1)
    verifier.segment_released("psm_a")
    verifier.assert_clean()


def test_double_segment_release_raises(verifier):
    verifier.segment_created("psm_a")
    verifier.segment_released("psm_a")
    with pytest.raises(ProtocolError, match="released twice"):
        verifier.segment_released("psm_a")


def test_double_lease_release_raises(verifier):
    verifier.lease_acquired(10, 100)
    verifier.lease_released(10)
    with pytest.raises(ProtocolError, match="released twice"):
        verifier.lease_released(10)


def test_dispatch_without_lease_raises(verifier):
    with pytest.raises(ProtocolError, match="no live lease"):
        verifier.lease_dispatch(10, 100)


def test_dispatch_by_stale_lease_raises(verifier):
    verifier.lease_acquired(10, 100)
    verifier.lease_released(10)
    verifier.lease_acquired(10, 200)
    with pytest.raises(ProtocolError, match="stale lease"):
        verifier.lease_dispatch(10, 100)


def test_second_concurrent_lease_raises(verifier):
    verifier.lease_acquired(10, 100)
    with pytest.raises(ProtocolError, match="second lease"):
        verifier.lease_acquired(10, 200)


def test_leaked_segment_fails_assert_clean(verifier):
    verifier.segment_created("psm_leak")
    with pytest.raises(ProtocolError, match="psm_leak"):
        verifier.assert_clean()
    verifier.segment_released("psm_leak")
    verifier.assert_clean()


def test_leaked_pool_fails_assert_clean(verifier):
    verifier.pool_spawned(7)
    with pytest.raises(ProtocolError, match="pool"):
        verifier.assert_clean()


def test_lock_ordering_violation_raises(verifier):
    verifier.lock_acquired("runtime", 1)
    with pytest.raises(ProtocolError, match="lock order"):
        verifier.lock_acquired("registry", 0)
    with pytest.raises(ProtocolError, match="lock order"):
        verifier.registry_checkpoint()
    verifier.lock_released("runtime", 1)
    verifier.registry_checkpoint()


def test_lock_holds_are_timed(verifier):
    verifier.lock_acquired("runtime", 1)
    verifier.lock_released("runtime", 1)
    assert len(verifier.lock_holds) == 1
    assert verifier.max_lock_hold() >= 0.0
    verifier.assert_clean()


# -- fault recovery events (pure unit) --------------------------------
def test_pool_respawn_swaps_the_ledger_entry(verifier):
    verifier.pool_spawned(1)
    verifier.pool_respawned(1, 2)
    assert verifier.respawn_count == 1
    assert verifier.outstanding()["pools"] == [2]
    verifier.pool_shutdown(2)
    verifier.assert_clean()


def test_respawn_of_an_unknown_pool_raises(verifier):
    with pytest.raises(ProtocolError, match="never spawned"):
        verifier.pool_respawned(9, 10)


def test_phase_retry_requires_the_live_lease(verifier):
    with pytest.raises(ProtocolError, match="no live lease"):
        verifier.phase_retry(10, 100)
    verifier.lease_acquired(10, 100)
    verifier.phase_retry(10, 100)
    assert verifier.retry_count == 1
    assert verifier.leases[10]["retries"] == 1
    verifier.lease_released(10)
    verifier.lease_acquired(10, 200)
    with pytest.raises(ProtocolError, match="stale lease"):
        verifier.phase_retry(10, 100)
    verifier.lease_released(10)
    verifier.assert_clean()


def test_phase_degraded_requires_the_live_lease(verifier):
    with pytest.raises(ProtocolError, match="no live lease"):
        verifier.phase_degraded(10, 100, shard=1)
    verifier.lease_acquired(10, 100)
    verifier.phase_degraded(10, 100, shard=1)
    assert verifier.degrade_count == 1
    assert verifier.leases[10]["degraded"] == 1
    verifier.lease_released(10)
    verifier.lease_acquired(10, 200)
    with pytest.raises(ProtocolError, match="stale lease"):
        verifier.phase_degraded(10, 100, shard=1)
    verifier.lease_released(10)
    verifier.assert_clean()


def test_verifier_is_opt_in(monkeypatch):
    monkeypatch.delenv("REPRO_CHECKS", raising=False)
    assert protocol.get_verifier() is None
    monkeypatch.setenv("REPRO_CHECKS", "1")
    assert protocol.get_verifier() is not None


# -- instrumented runtime (integration) -------------------------------
@pytest.fixture
def small_answers():
    rng = np.random.default_rng(0)
    records = [
        (int(t), int(w), int(v))
        for t, w, v in zip(rng.integers(0, 30, 200),
                           rng.integers(0, 8, 200),
                           rng.integers(0, 2, 200))
    ]
    return AnswerSet.from_records(records, TaskType.DECISION_MAKING)


@pytest.fixture
def instrumented(monkeypatch):
    """A fresh verifier wired into the runtime hooks, REPRO_CHECKS or
    not — tests must not depend on the environment."""
    from repro.engine import runtime

    verifier = LeaseProtocolVerifier()
    monkeypatch.setattr(runtime, "_VERIFIER", verifier)
    return verifier


def test_runtime_lease_cycle_reports_clean(instrumented, small_answers):
    from repro.engine.runtime import ShardRuntime

    with ShardRuntime(n_shards=2, max_workers=1) as runtime:
        with runtime.lease(small_answers, "D&S") as lease:
            lease.call("init_block")
            out = instrumented.outstanding()
            assert len(out["segments"]) == 3  # tasks/workers/values
            assert len(out["pools"]) == 1
            assert out["leases"] and out["locks"]
            live = instrumented.leases[id(runtime)]
            assert live["dispatches"] == 1
    instrumented.assert_clean()
    assert instrumented.max_lock_hold() > 0.0


def test_runtime_double_release_is_a_protocol_error(
        instrumented, small_answers):
    from repro.engine.runtime import ShardRuntime

    with ShardRuntime(n_shards=2, max_workers=1) as runtime:
        lease = runtime.lease(small_answers, "D&S")
        lease.close()
        # close() is idempotent by contract; forge the guard away to
        # provoke the raw double release the verifier must catch.
        lease._released = False
        with pytest.raises(ProtocolError, match="released twice"):
            lease.close()
    instrumented.assert_clean()


def test_runtime_leaked_segment_is_reported(instrumented, small_answers):
    from repro.engine.runtime import ShardRuntime

    runtime = ShardRuntime(n_shards=2, max_workers=1)
    try:
        runtime.lease(small_answers, "D&S").close()
        with pytest.raises(ProtocolError, match="leaked segment"):
            instrumented.assert_clean()
    finally:
        runtime.close()
    instrumented.assert_clean()
