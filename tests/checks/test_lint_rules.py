"""The invariant linter: every rule fires on its fixture violation —
and nowhere in the real source tree."""

from pathlib import Path

import pytest

from repro.checks.lint import (
    PRAGMA_RE,
    SourceFile,
    lint_file,
    run_lint,
)
from repro.checks.rules import ALL_RULES, slug_of

FIXTURES = Path(__file__).parent / "fixtures"
SRC_ROOT = Path(__file__).resolve().parents[2] / "src" / "repro"

#: rule id -> (fixture file, rel path the rule sees, marker comment).
FIXTURE_FOR = {
    "R001": ("r001_global_rng.py", "r001_global_rng.py"),
    "R002": ("r002_untyped_raise.py", "engine/r002_untyped_raise.py"),
    "R003": ("r003_capability_probe.py", "r003_capability_probe.py"),
    "R004": ("r004_unpaired_acquire.py", "r004_unpaired_acquire.py"),
    "R005": ("r005_broad_except.py", "r005_broad_except.py"),
    "R006": ("r006_legacy_kwarg.py", "r006_legacy_kwarg.py"),
    "R007": ("r007_adhoc_retry.py", "r007_adhoc_retry.py"),
}

RULE_BY_ID = {rule.id: rule for rule in ALL_RULES}


def load_fixture(rule_id: str) -> SourceFile:
    filename, rel = FIXTURE_FOR[rule_id]
    return SourceFile.load(FIXTURES / filename, rel)


def violation_line(src: SourceFile, rule_id: str) -> int:
    marker = f"# VIOLATION {rule_id}"
    lines = [lineno for lineno, line
             in enumerate(src.text.splitlines(), start=1)
             if marker in line]
    assert len(lines) == 1, f"fixture must mark exactly one {rule_id}"
    return lines[0]


def test_all_seven_rules_are_registered():
    assert sorted(RULE_BY_ID) == [f"R00{i}" for i in range(1, 8)]
    assert sorted(FIXTURE_FOR) == sorted(RULE_BY_ID)


@pytest.mark.parametrize("rule_id", sorted(FIXTURE_FOR))
def test_rule_fires_exactly_on_its_fixture_violation(rule_id):
    src = load_fixture(rule_id)
    findings = lint_file(src, [RULE_BY_ID[rule_id]])
    assert [f.line for f in findings] == [violation_line(src, rule_id)]
    assert findings[0].rule == rule_id


@pytest.mark.parametrize("rule_id", sorted(FIXTURE_FOR))
def test_no_other_rule_fires_on_the_fixture(rule_id):
    """Each fixture isolates one violation: the other five rules see a
    clean file, so a firing proves the *rule*, not fixture noise."""
    src = load_fixture(rule_id)
    others = [rule for rule in ALL_RULES if rule.id != rule_id]
    assert lint_file(src, others) == []


def test_real_source_tree_is_clean():
    """The acceptance gate: zero findings, zero pragmas over src/."""
    report = run_lint(SRC_ROOT)
    assert report.findings == []
    assert report.reasonless == []
    assert report.ok(strict=True)


def test_r002_is_path_scoped():
    """The same bare raise outside engine/store/inference is legal."""
    filename, _ = FIXTURE_FOR["R002"]
    src = SourceFile.load(FIXTURES / filename, "datasets/loader.py")
    assert lint_file(src, [RULE_BY_ID["R002"]]) == []


def test_r003_is_scoped_out_of_core():
    filename, _ = FIXTURE_FOR["R003"]
    src = SourceFile.load(FIXTURES / filename, "core/registry.py")
    assert lint_file(src, [RULE_BY_ID["R003"]]) == []


def test_pragma_suppresses_with_reason(tmp_path):
    path = tmp_path / "mod.py"
    path.write_text(
        "import numpy as np\n"
        "def f():\n"
        "    return np.random.rand(3)"
        "  # checks: allow-global-rng(fixture exercising suppression)\n"
    )
    report = run_lint(tmp_path)
    assert report.findings == []
    assert len(report.suppressed) == 1
    finding, pragma = report.suppressed[0]
    assert finding.rule == "R001"
    assert pragma.reason == "fixture exercising suppression"
    assert report.reasonless == []
    assert report.ok(strict=True)


def test_pragma_on_preceding_line_suppresses(tmp_path):
    path = tmp_path / "mod.py"
    path.write_text(
        "import numpy as np\n"
        "def f():\n"
        "    # checks: allow-global-rng(statement spans lines)\n"
        "    return np.random.rand(\n"
        "        3)\n"
    )
    report = run_lint(tmp_path)
    assert report.findings == []
    assert len(report.suppressed) == 1


def test_reasonless_pragma_fails_strict_only(tmp_path):
    path = tmp_path / "mod.py"
    path.write_text(
        "import numpy as np\n"
        "def f():\n"
        "    return np.random.rand(3)  # checks: allow-global-rng()\n"
    )
    report = run_lint(tmp_path)
    assert report.findings == []
    assert len(report.reasonless) == 1
    assert report.ok(strict=False)
    assert not report.ok(strict=True)


def test_wrong_slug_does_not_suppress(tmp_path):
    path = tmp_path / "mod.py"
    path.write_text(
        "import numpy as np\n"
        "def f():\n"
        "    return np.random.rand(3)  # checks: allow-broad-except(no)\n"
    )
    report = run_lint(tmp_path)
    assert [f.rule for f in report.findings] == ["R001"]


def test_pragma_regex_shape():
    match = PRAGMA_RE.search(
        "x = 1  # checks: allow-unpaired-acquire(worker detach hook)")
    assert match is not None
    assert match.group(1) == "unpaired-acquire"
    assert match.group(2) == "worker detach hook"
    assert slug_of("R004") == "unpaired-acquire"


class TestR007AdhocRetry:
    def load(self, tmp_path, code, rel="mod.py"):
        path = tmp_path / "mod.py"
        path.write_text(code)
        return SourceFile.load(path, rel)

    def test_bare_sleep_from_time_in_a_while_loop_fires(self, tmp_path):
        src = self.load(tmp_path, (
            "from time import sleep\n\n"
            "def retry():\n"
            "    while True:\n"
            "        sleep(1)\n"))
        findings = lint_file(src, [RULE_BY_ID["R007"]])
        assert [f.line for f in findings] == [5]

    def test_local_sleep_function_is_not_flagged(self, tmp_path):
        src = self.load(tmp_path, (
            "def sleep(x):\n"
            "    return x\n\n"
            "def loop():\n"
            "    for i in range(3):\n"
            "        sleep(i)\n"))
        assert lint_file(src, [RULE_BY_ID["R007"]]) == []

    def test_sleep_outside_a_loop_is_not_flagged(self, tmp_path):
        src = self.load(tmp_path, (
            "import time\n\n"
            "def nap():\n"
            "    time.sleep(1)\n"))
        assert lint_file(src, [RULE_BY_ID["R007"]]) == []

    def test_loop_outside_the_enclosing_def_is_not_flagged(self, tmp_path):
        src = self.load(tmp_path, (
            "import time\n\n"
            "for _ in range(3):\n"
            "    def nap():\n"
            "        time.sleep(1)\n"))
        assert lint_file(src, [RULE_BY_ID["R007"]]) == []

    def test_faults_module_is_exempt(self, tmp_path):
        src = self.load(tmp_path, (
            "import time\n\n"
            "def sleeper():\n"
            "    while True:\n"
            "        time.sleep(1)\n"), rel="faults.py")
        assert lint_file(src, [RULE_BY_ID["R007"]]) == []

    def test_the_real_backoff_helper_is_clean(self):
        src = SourceFile.load(SRC_ROOT / "faults.py", "faults.py")
        assert lint_file(src, [RULE_BY_ID["R007"]]) == []
