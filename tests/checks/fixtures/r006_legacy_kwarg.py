"""R006 fixture: one deprecated legacy kwarg spelling."""

from repro.core.policy import ExecutionPolicy
from repro.engine import InferenceEngine


def modern():
    return InferenceEngine(policy=ExecutionPolicy(n_shards=4))


def legacy():
    return InferenceEngine(n_shards=4)  # VIOLATION R006
