"""R004 fixture: one SharedMemory acquisition with no paired release."""

from multiprocessing import shared_memory


def paired(size):
    segment = shared_memory.SharedMemory(create=True, size=size)
    try:
        return segment.name
    finally:
        segment.close()
        segment.unlink()


def leak(size):
    segment = shared_memory.SharedMemory(create=True, size=size)  # VIOLATION R004
    return segment.name
