"""R003 fixture: one ``supports_*`` capability probe outside core/."""


def run_sharded(method_cls):
    if getattr(method_cls, "supports_sharding", False):  # VIOLATION R003
        return "sharded"
    return "plain"


def unrelated_probe(obj):
    return getattr(obj, "name", None)  # fine: not a capability flag
