"""R001 fixture: exactly one global-state RNG call."""

import numpy as np


def seeded_draw(n):
    generator = np.random.default_rng(0)  # allowed: explicit generator
    return generator.random(n)


def global_draw(n):
    return np.random.rand(n)  # VIOLATION R001
