"""R007 fixture: a ``time.sleep`` retry loop (the ad-hoc backoff ban)."""

import time


def flaky_fetch(fetch):
    for attempt in range(5):
        try:
            return fetch()
        except OSError:
            time.sleep(0.1 * attempt)  # VIOLATION R007
    raise OSError("gave up retrying")


def polite_pause():
    # A sleep outside any loop is not a retry; R007 must not fire here.
    time.sleep(0.01)
