"""R002 fixture: one bare ValueError on an (engine-scoped) crash path.

The rule is path-scoped; the tests load this file under the relative
path ``engine/r002_untyped_raise.py``.
"""


class TypedError(ValueError):
    """Stands in for a repro.exceptions subclass."""


def validate(n_shards):
    if n_shards is None:
        raise TypedError("typed raises are fine")
    if n_shards < 1:
        raise ValueError(f"n_shards must be >= 1, got {n_shards}")  # VIOLATION R002
    return n_shards
