"""R005 fixture: one silently-swallowing broad except."""


def surfaced(fn):
    try:
        return fn()
    except Exception:
        raise  # fine: re-raises


def swallowed(fn):
    try:
        return fn()
    except Exception:  # VIOLATION R005
        return None
