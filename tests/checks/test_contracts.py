"""The capability contract checker: the registry table is derived,
and a drifted declaration is caught."""

import pytest

from repro.checks.contracts import (
    KNOWN_EXEMPTIONS,
    check_contracts,
    derive_capabilities,
    derived_table,
)
from repro.core.registry import available_methods, capabilities, method_class


def test_registry_contracts_are_clean():
    assert check_contracts() == []


def test_derived_table_covers_the_registry():
    table = derived_table()
    assert set(table) == set(available_methods())


@pytest.mark.parametrize("name", sorted(available_methods()))
def test_derived_capabilities_match_declared(name):
    """The hand-pinned table in tests/core/test_capabilities.py is now
    a derived artifact: declaration == derivation, method by method."""
    assert derive_capabilities(name) == capabilities(name)


def test_flipped_declaration_is_detected(monkeypatch):
    """The seeded-mismatch acceptance check: flip one declared
    capability and the checker must flag exactly that method/field."""
    cls = method_class("D&S")
    assert cls.supports_golden is True
    monkeypatch.setattr(cls, "supports_golden", False)
    findings = check_contracts(["D&S"])
    assert len(findings) == 1
    assert "Capabilities.golden=False" in findings[0].message
    assert "implies True" in findings[0].message


def test_flipped_declaration_fails_repro_check(monkeypatch, capsys):
    """End to end: the CLI gate exits non-zero on the same seeded
    mismatch."""
    from repro.cli import main

    cls = method_class("KOS")
    assert cls.supports_sharding is True
    monkeypatch.setattr(cls, "supports_sharding", False)
    assert main(["check"]) == 1
    out = capsys.readouterr().out
    assert "KOS" in out and "sharding" in out


def test_gained_capability_is_detected(monkeypatch):
    """Drift in the other direction: declaring a capability the
    implementation lacks is flagged too."""
    cls = method_class("MV")
    assert cls.supports_sharding is False
    monkeypatch.setattr(cls, "supports_sharding", True)
    findings = check_contracts(["MV"])
    assert any("Capabilities.sharding=True" in f.message
               and "implies False" in f.message for f in findings)


def test_exemptions_are_real_and_reasoned():
    """Every exemption names a registered method, a real capability
    field, and a non-empty reason — and stays load-bearing (the
    derivation would disagree without it)."""
    assert KNOWN_EXEMPTIONS, "drop this test if the ledger empties"
    for (name, field), reason in KNOWN_EXEMPTIONS.items():
        assert name in available_methods()
        assert hasattr(capabilities(name), field)
        assert reason.strip()


def test_lfc_n_exemption_is_load_bearing():
    """LFC_N declares initial_quality but the numeric fit never reads
    it (documented in lfc.py); the exemption is what keeps the
    contract green."""
    from repro.checks.contracts import _body_reads

    cls = method_class("LFC_N")
    assert cls.supports_initial_quality is True
    assert not _body_reads(cls, "initial_quality")
    assert ("LFC_N", "initial_quality") in KNOWN_EXEMPTIONS
