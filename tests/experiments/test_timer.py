"""Tests for the Timer helper."""

import time

from repro.experiments.runner import Timer


class TestTimer:
    def test_measures_elapsed_time(self):
        with Timer() as timer:
            time.sleep(0.02)
        assert timer.elapsed >= 0.015

    def test_elapsed_zero_inside_block(self):
        with Timer() as timer:
            assert timer.elapsed == 0.0

    def test_reusable(self):
        timer = Timer()
        with timer:
            pass
        first = timer.elapsed
        with timer:
            time.sleep(0.01)
        assert timer.elapsed >= first
