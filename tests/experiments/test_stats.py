"""Tests for the dataset-statistics experiments (Table 5, Figs 2–3)."""

import numpy as np

from repro.experiments.stats import (
    figure2,
    figure2_tail_shares,
    figure3,
    table5,
)


class TestTable5:
    def test_rows_have_expected_columns(self, small_product, small_emotion):
        rows = table5({"D_Product": small_product,
                       "N_Emotion": small_emotion})
        assert len(rows) == 2
        for row in rows:
            assert {"dataset", "n_tasks", "n_truth", "n_answers",
                    "redundancy", "n_workers", "consistency_C"} <= set(row)

    def test_consistency_ranges(self, small_product, small_emotion):
        rows = {r["dataset"]: r for r in table5(
            {"D_Product": small_product, "N_Emotion": small_emotion})}
        assert 0.0 <= rows["D_Product"]["consistency_C"] <= 1.0
        assert rows["N_Emotion"]["consistency_C"] > 1.0  # numeric scale


class TestFigure2:
    def test_histograms_cover_all_workers(self, small_product):
        hists = figure2({"D_Product": small_product})
        assert hists["D_Product"].counts.sum() == small_product.n_workers

    def test_tail_shares_show_long_tail(self, small_rel):
        shares = figure2_tail_shares({"S_Rel": small_rel})
        assert shares["S_Rel"] > 0.4


class TestFigure3:
    def test_categorical_histogram_on_unit_interval(self, small_product):
        hists = figure3({"D_Product": small_product})
        hist = hists["D_Product"]
        assert hist.edges[0] >= 0.0
        assert hist.edges[-1] <= 1.0

    def test_numeric_histogram_on_rmse_scale(self, small_emotion):
        hists = figure3({"N_Emotion": small_emotion})
        assert hists["N_Emotion"].edges[-1] > 1.0

    def test_partial_truth_respected(self, small_rel):
        hists = figure3({"S_Rel": small_rel})
        # Workers with no labelled answers are dropped, so the count can
        # be below the pool size but never above.
        assert hists["S_Rel"].counts.sum() <= small_rel.n_workers
