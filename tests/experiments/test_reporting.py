"""Tests for the plain-text reporting helpers."""

from repro.experiments.reporting import format_series, format_table, percentage


class TestFormatTable:
    def test_alignment_and_header(self):
        text = format_table(["name", "value"],
                            [["alpha", 1.5], ["b", 22.125]],
                            title="Demo")
        lines = text.splitlines()
        assert lines[0] == "Demo"
        assert "name" in lines[1]
        assert set(lines[2]) <= {"-", " "}
        assert "alpha" in lines[3]

    def test_float_formatting(self):
        text = format_table(["x"], [[0.123456]])
        assert "0.1235" in text

    def test_nan_rendered(self):
        text = format_table(["x"], [[float("nan")]])
        assert "nan" in text


class TestFormatSeries:
    def test_one_row_per_x(self):
        text = format_series("r", [1, 2], {"MV": [0.5, 0.6],
                                           "D&S": [0.7, 0.8]})
        lines = text.splitlines()
        assert len(lines) == 4  # header + rule + 2 rows
        assert "MV" in lines[0]
        assert "D&S" in lines[0]


class TestPercentage:
    def test_paper_style(self):
        assert percentage(0.8966) == "89.66%"
        assert percentage(1.0) == "100.00%"
