"""Tests for the common experiment runner."""

import numpy as np
import pytest

from repro.core.policy import MethodSpec
from repro.experiments.runner import (
    MethodRun,
    average_scores,
    repeat_with_seeds,
    run_many,
    run_method,
)


class TestRunMethod:
    def test_scores_and_timing(self, small_product):
        run = run_method("MV", small_product, seed=0)
        assert run.method == "MV"
        assert run.dataset == "D_Product"
        assert set(run.scores) == {"accuracy", "f1"}
        assert run.elapsed_seconds > 0

    def test_golden_excluded_from_scoring(self, small_product):
        golden = {0: float(small_product.truth[0])}
        run = run_method("ZC", small_product, seed=0, golden=golden)
        assert np.isfinite(run.scores["accuracy"])

    def test_method_spec_kwargs_forwarded(self, small_product):
        run = run_method(MethodSpec("BCC", n_samples=5, burn_in=2),
                         small_product, seed=0)
        assert run.n_iterations == 7

    def test_legacy_method_kwargs_still_work(self, small_product):
        with pytest.warns(DeprecationWarning, match="method_kwargs"):
            run = run_method("BCC", small_product, seed=0,
                             method_kwargs={"n_samples": 5, "burn_in": 2})
        assert run.n_iterations == 7


class TestRunMany:
    def test_defaults_to_all_applicable(self, small_emotion):
        runs = run_many(small_emotion, seed=0)
        assert {r.method for r in runs} == \
            {"Mean", "Median", "CATD", "PM", "LFC_N"}

    def test_explicit_subset(self, small_product):
        runs = run_many(small_product, ["MV", "D&S"], seed=0)
        assert [r.method for r in runs] == ["MV", "D&S"]

    def test_legacy_method_names_keyword(self, small_product):
        with pytest.warns(DeprecationWarning, match="method_names"):
            runs = run_many(small_product, method_names=["MV"], seed=0)
        assert [r.method for r in runs] == ["MV"]


class TestAveraging:
    def test_average_scores(self):
        runs = [
            MethodRun("MV", "d", {"accuracy": 0.8}, 0.0, 0, True),
            MethodRun("MV", "d", {"accuracy": 0.6}, 0.0, 0, True),
        ]
        assert average_scores(runs) == {"accuracy": 0.7}

    def test_empty_runs(self):
        assert average_scores([]) == {}


class TestRepeatWithSeeds:
    def test_distinct_seeds(self):
        seeds = repeat_with_seeds(lambda seed: seed, 5, base_seed=0)
        assert len(set(seeds)) == 5

    def test_reproducible(self):
        first = repeat_with_seeds(lambda seed: seed, 4, base_seed=3)
        second = repeat_with_seeds(lambda seed: seed, 4, base_seed=3)
        assert first == second

    def test_invalid_count_rejected(self):
        with pytest.raises(ValueError):
            repeat_with_seeds(lambda seed: seed, 0)
