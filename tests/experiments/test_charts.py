"""Tests for the ASCII chart renderer."""

import pytest

from repro.experiments.charts import ascii_chart, sparkline


class TestAsciiChart:
    def test_basic_structure(self):
        text = ascii_chart([1, 2, 3], {"MV": [0.5, 0.7, 0.8]},
                           title="demo", height=8, width=30)
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert sum("A" in line for line in lines) > 0
        assert "A=MV" in lines[-1]

    def test_two_series_get_distinct_glyphs(self):
        text = ascii_chart([1, 2], {"a": [0.0, 1.0], "b": [1.0, 0.0]},
                           height=6, width=20)
        assert "A=a" in text
        assert "B=b" in text
        body = "\n".join(text.splitlines()[:-1])
        assert "A" in body
        assert "B" in body

    def test_y_range_labels(self):
        text = ascii_chart([0, 1], {"x": [2.0, 10.0]}, height=5, width=10)
        assert "10" in text
        assert "2" in text

    def test_flat_series_does_not_crash(self):
        text = ascii_chart([0, 1, 2], {"x": [0.5, 0.5, 0.5]},
                           height=5, width=12)
        assert "A" in text

    def test_validation(self):
        with pytest.raises(ValueError):
            ascii_chart([1], {"x": [0.5]})
        with pytest.raises(ValueError):
            ascii_chart([1, 2], {})
        with pytest.raises(ValueError):
            ascii_chart([1, 2], {"x": [0.5]})  # not parallel


class TestSparkline:
    def test_monotone_series(self):
        line = sparkline([1, 2, 3, 4])
        assert line[0] == "▁"
        assert line[-1] == "█"

    def test_flat_series(self):
        assert sparkline([2, 2, 2]) == "▄▄▄"

    def test_nan_blanked(self):
        assert " " in sparkline([1.0, float("nan"), 2.0])

    def test_empty_when_all_nan(self):
        assert sparkline([float("nan")]) == ""
