"""Tests for the hidden-test experiment (Figures 7–9)."""

import numpy as np
import pytest

from repro.experiments.hidden import (
    HIDDEN_TEST_METHODS,
    hidden_test_experiment,
    sample_golden,
)


class TestSampleGolden:
    def test_size_and_truths(self, small_product, rng):
        golden = sample_golden(small_product, 20.0, rng)
        expected = round(small_product.n_tasks * 0.2)
        assert abs(len(golden) - expected) <= 1
        for task, value in golden.items():
            assert value == small_product.truth[task]

    def test_only_labelled_tasks_eligible(self, small_rel, rng):
        golden = sample_golden(small_rel, 50.0, rng)
        mask = small_rel.truth_mask
        for task in golden:
            assert mask[task]

    def test_zero_percent_empty(self, small_product, rng):
        assert sample_golden(small_product, 0.0, rng) == {}

    def test_invalid_percentage_rejected(self, small_product, rng):
        with pytest.raises(ValueError):
            sample_golden(small_product, 120.0, rng)


class TestHiddenTestExperiment:
    def test_section633_method_list_has_9(self):
        assert len(HIDDEN_TEST_METHODS) == 9

    def test_series_structure(self, small_product):
        sweep = hidden_test_experiment(
            small_product, percentages=(0, 30), methods=["ZC", "PM"],
            n_repeats=2)
        assert sweep.percentages == [0.0, 30.0]
        series = sweep.series_for("accuracy")
        assert set(series) == {"ZC", "PM"}

    def test_unsupported_methods_filtered(self, small_product):
        sweep = hidden_test_experiment(
            small_product, percentages=(0,), methods=["MV", "ZC"],
            n_repeats=1)
        assert set(sweep.series_for("accuracy")) == {"ZC"}

    def test_scores_remain_finite_at_50_percent(self, small_product):
        sweep = hidden_test_experiment(
            small_product, percentages=(50,), methods=["ZC"], n_repeats=2)
        values = sweep.series_for("accuracy")["ZC"]
        assert np.isfinite(values).all()
