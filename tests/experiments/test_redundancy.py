"""Tests for the redundancy sweeps (Figures 4–6)."""

from repro.experiments.redundancy import sweep_redundancy


class TestSweepRedundancy:
    def test_series_structure(self, small_possent):
        sweep = sweep_redundancy(small_possent, redundancies=[1, 3],
                                 methods=["MV", "D&S"], n_repeats=2)
        assert sweep.redundancies == [1, 3]
        accuracy = sweep.series_for("accuracy")
        assert set(accuracy) == {"MV", "D&S"}
        assert len(accuracy["MV"]) == 2

    def test_quality_increases_with_redundancy(self, small_possent):
        """The paper's headline Figure 4 shape: quality rises with r."""
        sweep = sweep_redundancy(small_possent, redundancies=[1, 10],
                                 methods=["MV"], n_repeats=3)
        series = sweep.series_for("accuracy")["MV"]
        assert series[1] > series[0]

    def test_numeric_errors_decrease_with_redundancy(self, small_emotion):
        sweep = sweep_redundancy(small_emotion, redundancies=[1, 8],
                                 methods=["Mean"], n_repeats=3)
        series = sweep.series_for("mae")["Mean"]
        assert series[1] < series[0]

    def test_default_redundancies_span_dataset(self, small_emotion):
        sweep = sweep_redundancy(small_emotion, methods=["Mean"],
                                 n_repeats=1)
        assert sweep.redundancies[0] == 1
        assert sweep.redundancies[-1] >= 9
