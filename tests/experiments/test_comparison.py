"""Tests for the Table 6 comparison harness."""

from repro.experiments.comparison import TABLE6_ORDER, table6, table6_rows


class TestTable6:
    def test_skips_inapplicable_combinations(self, small_product,
                                             small_emotion):
        runs = table6({"D_Product": small_product,
                       "N_Emotion": small_emotion},
                      methods=["MV", "Mean"])
        pairs = {(r.method, r.dataset) for r in runs}
        assert ("MV", "D_Product") in pairs
        assert ("Mean", "N_Emotion") in pairs
        assert ("MV", "N_Emotion") not in pairs
        assert ("Mean", "D_Product") not in pairs

    def test_order_covers_all_17(self):
        assert len(TABLE6_ORDER) == 17

    def test_rows_render_missing_cells(self, small_product, small_emotion):
        runs = table6({"D_Product": small_product,
                       "N_Emotion": small_emotion},
                      methods=["MV", "Mean"])
        rows = table6_rows(runs, ["D_Product", "N_Emotion"])
        by_method = {row[0]: row for row in rows}
        assert by_method["MV"][3] == "×"  # MV on N_Emotion
        assert by_method["Mean"][1] == "×"  # Mean on D_Product

    def test_each_cell_has_metrics_and_time(self, small_product):
        runs = table6({"D_Product": small_product}, methods=["MV"])
        rows = table6_rows(runs, ["D_Product"])
        metrics_cell, time_cell = rows[0][1], rows[0][2]
        assert "/" in metrics_cell  # accuracy/f1
        assert time_cell.endswith("s")
