"""Tests for the qualification-test experiment (Table 7)."""

import numpy as np

from repro.experiments.qualification import (
    QUALIFICATION_METHODS,
    bootstrap_initial_quality,
    qualification_experiment,
)


class TestBootstrapInitialQuality:
    def test_shape_and_range(self, small_product, rng):
        quality = bootstrap_initial_quality(small_product, 20, rng)
        assert quality.shape == (small_product.n_workers,)
        assert (quality >= 0).all()
        assert (quality <= 1).all()

    def test_good_workers_score_higher(self, clean_binary, rng):
        from repro.datasets.schema import Dataset

        answers, truth = clean_binary
        dataset = Dataset(name="toy", answers=answers, truth=truth)
        quality = bootstrap_initial_quality(dataset, 50, rng)
        # Fixture: worker 0 is 95% accurate, worker 7 is 35%.
        assert quality[0] > quality[7]

    def test_numeric_mapping(self, small_emotion, rng):
        quality = bootstrap_initial_quality(small_emotion, 20, rng)
        assert (quality >= 0).all() and (quality <= 1).all()


class TestQualificationExperiment:
    def test_only_supporting_methods_run(self, small_product):
        outcomes = qualification_experiment(
            small_product, methods=["MV", "ZC", "BCC"],
            n_golden=10, n_repeats=2)
        assert [o.method for o in outcomes] == ["ZC"]

    def test_table7_method_list_has_8(self):
        assert len(QUALIFICATION_METHODS) == 8

    def test_delta_computed(self, small_product):
        outcomes = qualification_experiment(
            small_product, methods=["ZC"], n_golden=10, n_repeats=2)
        outcome = outcomes[0]
        for metric, delta in outcome.delta.items():
            assert delta == outcome.with_test[metric] - \
                outcome.baseline[metric]
            assert np.isfinite(delta)

    def test_numeric_dataset_uses_lfc_n(self, small_emotion):
        outcomes = qualification_experiment(
            small_emotion, n_golden=10, n_repeats=2)
        names = [o.method for o in outcomes]
        assert "LFC_N" in names
        assert "ZC" not in names
