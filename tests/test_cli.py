"""Tests for the command-line interface."""

import csv

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_all_subcommands_parse(self):
        parser = build_parser()
        for argv in (
            ["methods"],
            ["capabilities"],
            ["datasets", "--scale", "0.1"],
            ["run", "--dataset", "D_Product", "--methods", "MV"],
            ["sweep", "--dataset", "D_PosSent", "--methods", "MV"],
            ["infer", "answers.csv", "--method", "ZC"],
            ["stream", "answers.csv", "--method", "ZC",
             "--chunk-size", "100"],
            ["stream", "answers.csv", "--executor", "process",
             "--shards", "4"],
            ["batch", "--datasets", "D_PosSent", "--methods", "MV",
             "--workers", "2"],
            ["batch", "--methods", "D&S", "--shards", "4",
             "--shard-executor", "process"],
            ["plan-redundancy", "--dataset", "D_PosSent"],
        ):
            args = parser.parse_args(argv)
            assert args.command == argv[0]

    def test_unknown_dataset_rejected(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["run", "--dataset", "D_Nope"])


class TestCommands:
    def test_methods_lists_all_17(self, capsys):
        assert main(["methods"]) == 0
        out = capsys.readouterr().out
        for name in ("MV", "D&S", "GLAD", "Minimax", "LFC_N", "Median"):
            assert name in out

    def test_capabilities_prints_registry_table(self, capsys):
        assert main(["capabilities"]) == 0
        out = capsys.readouterr().out
        for column in ("method", "sharded", "warm-start", "delta",
                       "seed-posterior"):
            assert column in out
        lines = {line.split()[0]: line.split()[1:]
                 for line in out.splitlines()
                 if line and line.split()[0] in ("MV", "CATD", "KOS")}
        # MV cannot shard; CATD shards with warm-start and a delta
        # contract; KOS delta-refits from its cached message state.
        assert lines["MV"] == ["no", "no", "no", "no"]
        assert lines["CATD"] == ["yes", "yes", "yes", "no"]
        assert lines["KOS"] == ["yes", "yes", "yes", "no"]

    def test_datasets_prints_table5(self, capsys):
        assert main(["datasets", "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "D_Product" in out
        assert "N_Emotion" in out

    def test_run_prints_scores(self, capsys):
        code = main(["run", "--dataset", "D_Product", "--scale", "0.05",
                     "--methods", "MV", "ZC"])
        assert code == 0
        out = capsys.readouterr().out
        assert "MV" in out
        assert "accuracy" in out

    def test_sweep_prints_series(self, capsys):
        code = main(["sweep", "--dataset", "D_PosSent", "--scale", "0.05",
                     "--methods", "MV", "--redundancies", "1", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "accuracy vs redundancy" in out

    def test_infer_round_trip(self, tmp_path, capsys):
        path = tmp_path / "answers.csv"
        with open(path, "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(["task", "worker", "answer"])
            for worker in ("w1", "w2", "w3"):
                writer.writerow(["t1", worker, "yes"])
                writer.writerow(["t2", worker, "no"])
        assert main(["infer", str(path), "--method", "MV"]) == 0
        out = capsys.readouterr().out
        assert "t1,yes" in out
        assert "t2,no" in out

    def test_infer_empty_file_fails(self, tmp_path, capsys):
        path = tmp_path / "empty.csv"
        path.write_text("task,worker,answer\n")
        assert main(["infer", str(path)]) == 1

    def test_stream_replays_in_chunks(self, tmp_path, capsys):
        path = tmp_path / "answers.csv"
        with open(path, "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(["task", "worker", "answer"])
            for task in range(20):
                for worker in ("w1", "w2", "w3"):
                    writer.writerow([f"t{task}", worker,
                                     "yes" if task % 2 else "no"])
        code = main(["stream", str(path), "--method", "D&S",
                     "--chunk-size", "30"])
        assert code == 0
        out = capsys.readouterr().out
        assert "cold refit" in out
        assert "warm refit" in out
        assert "t0,no" in out
        assert "t1,yes" in out

    def test_stream_empty_file_fails(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("task,worker,answer\n")
        assert main(["stream", str(path)]) == 1

    def test_malformed_row_fails_loudly(self, tmp_path, capsys):
        path = tmp_path / "bad.csv"
        path.write_text("t1,w1,yes\nt2,w2\n")
        for command in ("infer", "stream"):
            assert main([command, str(path), "--method", "MV"]) == 1
            assert "malformed row" in capsys.readouterr().err

    def test_stream_unknown_method_fails_loudly(self, tmp_path, capsys):
        path = tmp_path / "answers.csv"
        path.write_text("t1,w1,yes\nt1,w2,no\n")
        assert main(["stream", str(path), "--method", "Bogus"]) == 1
        assert "unknown method: Bogus" in capsys.readouterr().err

    def test_stream_inapplicable_method_fails_loudly(self, tmp_path, capsys):
        path = tmp_path / "answers.csv"
        path.write_text("t1,w1,yes\nt1,w2,no\n")
        assert main(["stream", str(path), "--method", "Mean"]) == 1
        assert "does not support decision-making" in capsys.readouterr().err

    def test_infer_inapplicable_method_fails_loudly(self, tmp_path, capsys):
        path = tmp_path / "answers.csv"
        path.write_text("t1,w1,yes\nt1,w2,no\n")
        assert main(["infer", str(path), "--method", "Mean"]) == 1
        assert "does not support decision-making" in capsys.readouterr().err

    def test_batch_invalid_workers_fails_loudly(self, capsys):
        assert main(["batch", "--datasets", "D_PosSent", "--methods",
                     "MV", "--scale", "0.05", "--workers", "0"]) == 1
        assert "--workers must be >= 1" in capsys.readouterr().err

    def test_stream_invalid_workers_fails_like_batch(self, tmp_path,
                                                     capsys):
        # stream and batch historically disagreed: stream accepted
        # --workers 0.  Validation is now shared and identical.
        path = tmp_path / "answers.csv"
        path.write_text("t1,w1,yes\nt1,w2,no\n")
        assert main(["stream", str(path), "--method", "MV",
                     "--workers", "0"]) == 1
        assert "--workers must be >= 1" in capsys.readouterr().err

    @pytest.mark.parametrize("argv", [
        ["stream", "answers.csv", "--shards", "0"],
        ["batch", "--datasets", "D_PosSent", "--shards", "0",
         "--scale", "0.05"],
    ])
    def test_invalid_shards_rejected_uniformly(self, argv, capsys):
        assert main(argv) == 1
        assert "--shards must be >= 1" in capsys.readouterr().err

    def test_stream_invalid_chunk_size_rejected(self, tmp_path, capsys):
        path = tmp_path / "answers.csv"
        path.write_text("t1,w1,yes\nt1,w2,no\n")
        assert main(["stream", str(path), "--chunk-size", "0"]) == 1
        assert "--chunk-size must be >= 1" in capsys.readouterr().err

    def test_stream_shards_beyond_task_count_clamped(self, tmp_path,
                                                     capsys):
        # More shards than tasks is not an error: shard_by_tasks clamps
        # deterministically and the run succeeds.
        path = tmp_path / "answers.csv"
        with open(path, "w", newline="") as handle:
            writer = csv.writer(handle)
            for task in ("t1", "t2", "t3"):
                for worker in ("w1", "w2", "w3"):
                    writer.writerow([task, worker,
                                     "yes" if task == "t1" else "no"])
        assert main(["stream", str(path), "--method", "D&S",
                     "--shards", "64"]) == 0
        out = capsys.readouterr().out
        assert "t1,yes" in out
        assert "t3,no" in out

    def test_batch_shards_beyond_task_count_clamped(self, capsys):
        code = main(["batch", "--datasets", "D_PosSent", "--methods",
                     "D&S", "--scale", "0.05", "--workers", "1",
                     "--shards", "100000"])
        assert code == 0
        assert "Batch grid: 1 jobs" in capsys.readouterr().out

    def test_stream_process_executor_end_to_end(self, tmp_path, capsys):
        path = tmp_path / "answers.csv"
        with open(path, "w", newline="") as handle:
            writer = csv.writer(handle)
            for task in range(12):
                for worker in ("w1", "w2", "w3"):
                    writer.writerow([f"t{task}", worker,
                                     "yes" if task % 2 else "no"])
        code = main(["stream", str(path), "--method", "D&S",
                     "--chunk-size", "12", "--shards", "2",
                     "--workers", "1", "--executor", "process"])
        assert code == 0
        out = capsys.readouterr().out
        assert "warm refit" in out
        assert "t0,no" in out and "t1,yes" in out

    def test_batch_shard_executor_process_end_to_end(self, capsys):
        from repro.engine.runtime import get_runtime_registry

        try:
            code = main(["batch", "--datasets", "D_PosSent", "--methods",
                         "D&S", "ZC", "--scale", "0.05", "--workers", "1",
                         "--shards", "2", "--shard-executor", "process"])
        finally:
            get_runtime_registry().close_all()
        assert code == 0
        out = capsys.readouterr().out
        assert "Batch grid: 2 jobs" in out

    def test_batch_empty_grid_fails_loudly(self, capsys):
        # LFC_N is numeric-only; every selected dataset is categorical.
        assert main(["batch", "--datasets", "D_PosSent", "--methods",
                     "LFC_N", "--scale", "0.05"]) == 1
        assert "no (dataset, method)" in capsys.readouterr().err

    def test_batch_prints_grid(self, capsys):
        code = main(["batch", "--datasets", "D_PosSent", "--methods",
                     "MV", "ZC", "--scale", "0.05", "--workers", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Batch grid: 2 jobs" in out
        assert "MV" in out and "ZC" in out
        assert "wall time" in out

    def test_batch_unknown_method_fails_loudly(self, capsys):
        assert main(["batch", "--datasets", "D_PosSent", "--methods",
                     "Bogus", "--scale", "0.05"]) == 1
        assert "unknown methods: Bogus" in capsys.readouterr().err

    def test_stream_from_stdin_without_pre_scan(self, monkeypatch, capsys):
        """A declared-schema stdin stream is never pre-scanned: the
        classifier is poisoned and the run must still succeed."""
        import io

        import repro.engine.sources as sources

        monkeypatch.setattr(
            sources, "infer_schema",
            lambda records: pytest.fail("stdin stream must not pre-scan"))
        rows = "".join(f"t{task},w{worker},{'yes' if task % 2 else 'no'}\n"
                       for task in range(10) for worker in range(3))
        monkeypatch.setattr("sys.stdin", io.StringIO(rows))
        code = main(["stream", "--source", "stdin", "--task-type",
                     "decision", "--method", "D&S", "--chunk-size", "12"])
        assert code == 0
        out = capsys.readouterr().out
        assert "cold refit" in out
        assert "warm refit" in out
        assert "t0,no" in out
        assert "t1,yes" in out

    def test_stream_stdin_requires_task_type(self, capsys):
        assert main(["stream", "--source", "stdin"]) == 1
        assert "--task-type" in capsys.readouterr().err

    def test_stream_numeric_task_type(self, monkeypatch, capsys):
        import io

        rows = "t1,w1,2.0\nt1,w2,4.0\nt2,w1,1.5\nt2,w2,2.5\n"
        monkeypatch.setattr("sys.stdin", io.StringIO(rows))
        code = main(["stream", "--source", "stdin", "--task-type",
                     "numeric", "--method", "Mean", "--chunk-size", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "t1,3.0" in out
        assert "t2,2.0" in out

    def test_stream_declared_task_type_skips_csv_pre_scan(
            self, tmp_path, monkeypatch, capsys):
        import repro.engine.sources as sources

        monkeypatch.setattr(
            sources, "infer_schema",
            lambda records: pytest.fail("declared schema must not scan"))
        path = tmp_path / "answers.csv"
        with open(path, "w", newline="") as handle:
            writer = csv.writer(handle)
            for task in range(8):
                for worker in ("w1", "w2", "w3"):
                    writer.writerow([f"t{task}", worker,
                                     "yes" if task % 2 else "no"])
        code = main(["stream", str(path), "--task-type", "decision",
                     "--method", "D&S", "--chunk-size", "12"])
        assert code == 0
        assert "t0,no" in capsys.readouterr().out

    def test_stream_csv_without_path_fails_loudly(self, capsys):
        assert main(["stream"]) == 1
        assert "CSV path is required" in capsys.readouterr().err

    def test_stream_unified_executor_choices(self, tmp_path, capsys):
        path = tmp_path / "answers.csv"
        path.write_text("t1,w1,yes\nt1,w2,yes\nt2,w1,no\nt2,w2,no\n")
        for executor in ("auto", "serial", "thread"):
            assert main(["stream", str(path), "--method", "MV",
                         "--executor", executor]) == 0
            assert "t1,yes" in capsys.readouterr().out

    def test_plan_redundancy(self, capsys):
        code = main(["plan-redundancy", "--dataset", "D_PosSent",
                     "--scale", "0.05", "--method", "MV",
                     "--repeats", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "saturation redundancy" in out


class TestTcpSource:
    """``repro stream --source tcp:HOST:PORT`` — the loopback-socket
    spelling of the live line-delimited stream."""

    def _serve(self, rows):
        """A one-connection loopback server feeding ``rows`` as CSV."""
        import socket
        import threading

        server = socket.create_server(("127.0.0.1", 0))
        port = server.getsockname()[1]

        def feed():
            conn, _ = server.accept()
            with conn:
                conn.sendall(("\n".join(rows) + "\n").encode())
            server.close()

        thread = threading.Thread(target=feed, daemon=True)
        thread.start()
        return port, thread

    def test_stream_from_tcp_socket(self, capsys):
        rows = [f"t{i % 7},w{j},{(i + j) % 2}"
                for i in range(21) for j in range(3)]
        port, thread = self._serve(rows)
        code = main(["stream", "--source", f"tcp:127.0.0.1:{port}",
                     "--task-type", "decision", "--method", "MV",
                     "--chunk-size", "16"])
        thread.join(timeout=5)
        assert code == 0
        out = capsys.readouterr().out
        assert "task,inferred_truth" in out
        assert "t0," in out

    def test_tcp_requires_task_type(self, capsys):
        code = main(["stream", "--source", "tcp:127.0.0.1:1",
                     "--method", "MV"])
        assert code == 1
        assert "--task-type" in capsys.readouterr().err

    def test_malformed_tcp_spec_fails_loudly(self, capsys):
        code = main(["stream", "--source", "tcp:nowhere",
                     "--task-type", "decision"])
        assert code == 1
        assert "tcp:HOST:PORT" in capsys.readouterr().err

    def test_unknown_source_fails_loudly(self, capsys):
        code = main(["stream", "--source", "carrier-pigeon",
                     "--task-type", "decision"])
        assert code == 1
        assert "carrier-pigeon" in capsys.readouterr().err

    def test_unreachable_tcp_fails_loudly(self, capsys):
        code = main(["stream", "--source", "tcp:127.0.0.1:1",
                     "--task-type", "decision"])
        assert code == 1
        assert "cannot connect" in capsys.readouterr().err


class TestStreamDeltaFlags:
    def test_stream_delta_refit_verbose(self, tmp_path, capsys):
        path = tmp_path / "answers.csv"
        rows = [f"t{i % 9},w{i % 4},{(i * 3) % 2}" for i in range(120)]
        path.write_text("\n".join(rows) + "\n")
        code = main(["stream", str(path), "--method", "D&S",
                     "--chunk-size", "40", "--shards", "3",
                     "--refit", "delta", "--freeze-tol", "1e-5",
                     "--verify-every", "3", "-v",
                     "--task-type", "decision"])
        assert code == 0
        out = capsys.readouterr().out
        assert "# streaming" in out
        assert "fit:" in out          # -v telemetry lines
        assert "refit" in out


class TestDurableStoreFlags:
    def _write_answers(self, tmp_path, n_tasks=20):
        path = tmp_path / "answers.csv"
        rows = [f"t{i % n_tasks},w{i % 5},{(i * 3) % 2}"
                for i in range(160)]
        path.write_text("\n".join(rows) + "\n")
        return path

    def test_stream_store_then_recover_round_trip(self, tmp_path, capsys):
        path = self._write_answers(tmp_path)
        store = tmp_path / "store"
        code = main(["stream", str(path), "--method", "D&S",
                     "--chunk-size", "50", "--store", str(store),
                     "--snapshot-every", "60"])
        assert code == 0
        stream_out = capsys.readouterr().out
        assert f"# durable store: {store}" in stream_out
        assert (store / "answers.sqlite").is_file()

        assert main(["recover", str(store), "--method", "D&S"]) == 0
        captured = capsys.readouterr()
        assert "recovered 160 answers" in captured.err
        stream_truth = stream_out[stream_out.index("task,inferred_truth"):]
        recover_truth = captured.out[
            captured.out.index("task,inferred_truth"):]
        assert recover_truth.strip() == stream_truth.strip()

    def test_stream_into_used_store_fails_loudly(self, tmp_path, capsys):
        path = self._write_answers(tmp_path)
        store = tmp_path / "store"
        assert main(["stream", str(path), "--store", str(store)]) == 0
        capsys.readouterr()
        assert main(["stream", str(path), "--store", str(store)]) == 1
        assert "recover" in capsys.readouterr().err

    def test_recover_missing_store_fails_loudly(self, tmp_path, capsys):
        assert main(["recover", str(tmp_path / "nope")]) == 1
        assert "no answer store" in capsys.readouterr().err

    def test_snapshot_every_requires_store(self, tmp_path, capsys):
        path = self._write_answers(tmp_path)
        assert main(["stream", str(path), "--snapshot-every", "5"]) == 1
        assert "--snapshot-every requires --store" in capsys.readouterr().err

    def test_recover_sharded_delta(self, tmp_path, capsys):
        path = self._write_answers(tmp_path, n_tasks=40)
        store = tmp_path / "store"
        flags = ["--method", "D&S", "--shards", "4", "--refit", "delta"]
        assert main(["stream", str(path), "--chunk-size", "40",
                     "--store", str(store), "--snapshot-every", "60",
                     *flags]) == 0
        capsys.readouterr()
        assert main(["recover", str(store), "-v", *flags]) == 0
        captured = capsys.readouterr()
        assert "refit" in captured.err
        assert "task,inferred_truth" in captured.out

    def test_stream_missing_csv_fails_loudly(self, tmp_path, capsys):
        assert main(["stream", str(tmp_path / "nope.csv")]) == 1
        assert "cannot read answers" in capsys.readouterr().err


class TestMaxBadLinesFlag:
    def test_stdin_stream_skips_bad_lines(self, tmp_path, capsys,
                                          monkeypatch):
        import io
        import sys as _sys

        monkeypatch.setattr(
            _sys, "stdin",
            io.StringIO("t1,w1,1\nGARBLED\nt1,w2,1\nt2,w1,0\n"))
        code = main(["stream", "--source", "stdin", "--task-type",
                     "decision", "--method", "MV",
                     "--max-bad-lines", "5"])
        assert code == 0
        out = capsys.readouterr().out
        assert "t1,1" in out
        assert "t2,0" in out

    def test_strict_budget_fails_loudly(self, tmp_path, capsys,
                                        monkeypatch):
        import io
        import sys as _sys

        monkeypatch.setattr(
            _sys, "stdin", io.StringIO("t1,w1,1\nGARBLED\nt2,w1,0\n"))
        code = main(["stream", "--source", "stdin", "--task-type",
                     "decision", "--max-bad-lines", "0"])
        assert code == 1
        assert "line 2" in capsys.readouterr().err

    def test_negative_budget_rejected(self, tmp_path, capsys):
        code = main(["stream", "--source", "stdin", "--task-type",
                     "decision", "--max-bad-lines", "-1"])
        assert code == 1
        assert "--max-bad-lines must be >= 0" in capsys.readouterr().err
