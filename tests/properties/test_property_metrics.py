"""Property-based tests for the metrics."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.metrics.quality import accuracy, f1_score, mae, rmse

labels = hnp.arrays(np.int64, st.integers(1, 60),
                    elements=st.integers(0, 3))
paired_labels = st.integers(1, 60).flatmap(
    lambda n: st.tuples(
        hnp.arrays(np.int64, n, elements=st.integers(0, 3)),
        hnp.arrays(np.int64, n, elements=st.integers(0, 3)),
    )
)
paired_floats = st.integers(1, 60).flatmap(
    lambda n: st.tuples(
        hnp.arrays(np.float64, n,
                   elements=st.floats(-100, 100, allow_nan=False)),
        hnp.arrays(np.float64, n,
                   elements=st.floats(-100, 100, allow_nan=False)),
    )
)


class TestAccuracyProperties:
    @given(pair=paired_labels)
    @settings(max_examples=100, deadline=None)
    def test_bounded(self, pair):
        truth, inferred = pair
        assert 0.0 <= accuracy(truth, inferred) <= 1.0

    @given(truth=labels)
    @settings(max_examples=60, deadline=None)
    def test_self_accuracy_is_one(self, truth):
        assert accuracy(truth, truth) == 1.0

    @given(pair=paired_labels, seed=st.integers(0, 2**16))
    @settings(max_examples=60, deadline=None)
    def test_permutation_invariant(self, pair, seed):
        truth, inferred = pair
        perm = np.random.default_rng(seed).permutation(len(truth))
        assert accuracy(truth, inferred) == \
            accuracy(truth[perm], inferred[perm])


class TestF1Properties:
    @given(pair=paired_labels)
    @settings(max_examples=100, deadline=None)
    def test_bounded(self, pair):
        truth, inferred = pair
        assert 0.0 <= f1_score(truth, inferred) <= 1.0

    @given(truth=labels)
    @settings(max_examples=60, deadline=None)
    def test_self_f1_is_one_when_positives_exist(self, truth):
        binary = (truth > 1).astype(np.int64)
        expected = 1.0 if binary.any() else 0.0
        assert f1_score(binary, binary) == expected

    @given(pair=paired_labels)
    @settings(max_examples=60, deadline=None)
    def test_f1_zero_iff_no_true_positive(self, pair):
        truth, inferred = pair
        binary_t = (truth > 1).astype(np.int64)
        binary_i = (inferred > 1).astype(np.int64)
        has_tp = bool(((binary_t == 1) & (binary_i == 1)).any())
        assert (f1_score(binary_t, binary_i) > 0) == has_tp


class TestNumericErrorProperties:
    @given(pair=paired_floats)
    @settings(max_examples=100, deadline=None)
    def test_rmse_at_least_mae(self, pair):
        truth, inferred = pair
        assert rmse(truth, inferred) >= mae(truth, inferred) - 1e-12

    @given(pair=paired_floats)
    @settings(max_examples=60, deadline=None)
    def test_nonnegative_and_zero_on_self(self, pair):
        truth, _ = pair
        assert mae(truth, truth) == 0.0
        assert rmse(truth, truth) == 0.0

    @given(pair=paired_floats, shift=st.floats(-50, 50, allow_nan=False))
    @settings(max_examples=60, deadline=None)
    def test_translation_invariant(self, pair, shift):
        truth, inferred = pair
        assert mae(truth, inferred) == \
            np.float64(mae(truth + shift, inferred + shift)) or \
            abs(mae(truth, inferred) - mae(truth + shift,
                                           inferred + shift)) < 1e-9
