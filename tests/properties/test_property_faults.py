"""Chaos property: recovery is invisible in the numbers.

For any kill schedule the fault plane can express — any victim shard,
any dispatch ordinal, one or two triggers — a fit that loses workers
mid-phase and self-heals must return **bit-identical** posteriors to
the uninterrupted fit at the same shard count.  The property quantifies
the PR-10 contract beyond the hand-picked cases in
``tests/engine/test_faults.py``: determinism of the recovery path is
not an artifact of which shard died.

Process-pool fits are expensive, so the example budget is small and
clean references are cached per ``(method, n_shards)``.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.policy import FaultPolicy, MethodSpec
from repro.core.registry import create
from repro.core.tasktypes import TaskType
from repro.core.answers import AnswerSet
from repro.engine.runtime import ShardRuntime
from repro.faults import FaultPlan, FaultTrigger

METHODS = ["D&S", "KOS"]
SHARD_COUNTS = [2, 4]

_ANSWERS = None
_REFERENCE = {}


def build_answers(seed=0, n_tasks=60, n_workers=8, n_answers=400):
    rng = np.random.default_rng(seed)
    truth = rng.integers(0, 2, n_tasks)
    acc = rng.uniform(0.55, 0.95, n_workers)
    tasks = rng.integers(0, n_tasks, n_answers)
    workers = rng.integers(0, n_workers, n_answers)
    correct = rng.random(n_answers) < acc[workers]
    values = np.where(correct, truth[tasks], 1 - truth[tasks])
    return AnswerSet(tasks, workers, values, TaskType.DECISION_MAKING,
                     n_tasks=n_tasks, n_workers=n_workers)


def answers():
    global _ANSWERS
    if _ANSWERS is None:
        _ANSWERS = build_answers()
    return _ANSWERS


def fit(method, n_shards, plan=None):
    spec = MethodSpec.coerce(method, {}).with_defaults(seed=0)
    policy = FaultPolicy(deadline=30.0) if plan is not None else None
    rt = ShardRuntime(n_shards=n_shards, max_workers=2)
    try:
        lease = rt.lease(answers(), spec, fault_policy=policy,
                         faults=plan)
        with lease:
            result = create(spec).fit(answers(), shard_runner=lease)
        return result, dict(lease.fault_events)
    finally:
        rt.close()


def reference(method, n_shards):
    key = (method, n_shards)
    if key not in _REFERENCE:
        _REFERENCE[key], _ = fit(method, n_shards)
    return _REFERENCE[key]


kill_triggers = st.lists(
    st.builds(
        lambda shard, on: FaultTrigger(kind="kill", shard=shard, on=on),
        shard=st.integers(0, 3),
        on=st.integers(1, 3),
    ),
    min_size=1, max_size=2,
)


class TestKillScheduleInvariance:
    @given(method=st.sampled_from(METHODS),
           n_shards=st.sampled_from(SHARD_COUNTS),
           triggers=kill_triggers)
    @settings(max_examples=5, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_any_kill_schedule_recovers_bit_identically(
            self, method, n_shards, triggers):
        triggers = tuple(
            FaultTrigger(kind="kill", shard=t.shard % n_shards, on=t.on)
            for t in triggers)
        plan = FaultPlan(triggers)
        faulted, events = fit(method, n_shards, plan=plan)
        clean = reference(method, n_shards)
        assert np.array_equal(faulted.posterior, clean.posterior)
        if plan.fired.get("kill"):
            assert events["respawns"] + events["degraded"] >= 1
