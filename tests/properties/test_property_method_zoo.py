"""Sharded parity for the method zoo (CATD/PM/KOS/minimax/BCC/CBCC/VI).

Companion of :mod:`tests.properties.test_property_sharded`, pinning the
same three guarantees for the methods converted in the method-zoo
sharding pass:

1. **Bit-for-bit single-shard parity** — a default ``fit()`` (one
   shard) reproduces the pre-refactor loop exactly, against the frozen
   copies in :mod:`benchmarks.reference_em`.
2. **Multi-shard numerical parity** — any shard count in 2..8 on the
   serial tier matches the unsharded posterior to 1e-10; the process
   tier matches to 1e-8.  The Gibbs samplers (BCC/CBCC) are exempt
   from the multi-shard bound — merging per-shard statistics reorders
   the reductions feeding the rejection samplers — and instead pin
   **seeded determinism**: same seed + same shard count ⇒ identical
   draws, on every tier.
3. **Golden/qualification composition** — clamping and initial-quality
   paths survive the refactor bit-for-bit too.
"""

import numpy as np
import pytest

from benchmarks.reference_em import (
    reference_bcc,
    reference_catd,
    reference_cbcc,
    reference_kos,
    reference_minimax,
    reference_minimax_ordinal,
    reference_pm,
    reference_vi_bp,
    reference_vi_mf,
)
from repro.core.answers import AnswerSet
from repro.core.policy import ExecutionPolicy
from repro.core.registry import create
from repro.core.tasktypes import TaskType

from .test_property_sharded import random_categorical, random_numeric

SHARD_COUNTS = [2, 5, 8]

#: Methods whose sharded phases are deterministic reductions, so any
#: serial shard count stays within float-reassociation distance of the
#: unsharded run.  (BCC/CBCC are Gibbs: see the determinism tests.)
REDUCTION_METHODS = [
    "CATD", "PM", "Minimax", "Minimax-Ord", "VI-MF", "VI-BP", "KOS",
]


def random_decision(seed, n_tasks=40, n_workers=10, n_answers=400):
    """Binary decision-making answers (KOS and VI reject SINGLE_CHOICE)."""
    rng = np.random.default_rng(seed)
    truth = rng.integers(0, 2, n_tasks)
    acc = rng.uniform(0.3, 0.95, n_workers)
    tasks = rng.integers(0, n_tasks, n_answers)
    workers = rng.integers(0, n_workers, n_answers)
    correct = rng.random(n_answers) < acc[workers]
    values = np.where(correct, truth[tasks], 1 - truth[tasks])
    return AnswerSet(tasks, workers, values, TaskType.DECISION_MAKING,
                     n_tasks=n_tasks, n_workers=n_workers)


def _answers_for(method_name, seed=7):
    if method_name in ("KOS", "VI-MF", "VI-BP"):
        return random_decision(seed)
    return random_categorical(seed)


# ----------------------------------------------------------------------
# 1. Bit-for-bit: default fit == pre-refactor loop
# ----------------------------------------------------------------------

@pytest.mark.parametrize("seed", [0, 1])
def test_catd_bitwise_matches_prerefactor(seed):
    answers = random_categorical(seed)
    method = create("CATD", seed=0)
    truths, weights, posterior, tracker = reference_catd(
        answers, method.tolerance, method.max_iter, seed=0)
    new = method.fit(answers)
    assert tracker.iteration == new.n_iterations
    assert np.array_equal(truths, new.truths)
    assert np.array_equal(weights, new.worker_quality)
    assert np.array_equal(posterior, new.posterior)


def test_catd_bitwise_numeric_with_golden_and_quality():
    answers = random_numeric(3)
    golden = {0: 1.5, 7: -2.0}
    quality = np.linspace(0.5, 0.95, answers.n_workers)
    method = create("CATD", seed=0)
    truths, weights, _, _ = reference_catd(
        answers, method.tolerance, method.max_iter, seed=0,
        golden=golden, initial_quality=quality)
    new = method.fit(answers, golden=golden, initial_quality=quality)
    assert np.array_equal(truths, new.truths)
    assert np.array_equal(weights, new.worker_quality)
    assert new.truths[0] == 1.5 and new.truths[7] == -2.0


@pytest.mark.parametrize("seed", [0, 1])
def test_pm_bitwise_matches_prerefactor(seed):
    answers = random_categorical(seed)
    method = create("PM", seed=0)
    truths, weights, posterior, tracker = reference_pm(
        answers, method.tolerance, method.max_iter, seed=0)
    new = method.fit(answers)
    assert tracker.iteration == new.n_iterations
    assert np.array_equal(truths, new.truths)
    assert np.array_equal(weights, new.worker_quality)
    assert np.array_equal(posterior, new.posterior)


def test_pm_bitwise_numeric_with_golden():
    answers = random_numeric(5)
    golden = {1: 0.25}
    method = create("PM", seed=0)
    truths, weights, _, _ = reference_pm(
        answers, method.tolerance, method.max_iter, seed=0, golden=golden)
    new = method.fit(answers, golden=golden)
    assert np.array_equal(truths, new.truths)
    assert np.array_equal(weights, new.worker_quality)


@pytest.mark.parametrize("name,reference", [
    ("VI-MF", reference_vi_mf), ("VI-BP", reference_vi_bp)])
@pytest.mark.parametrize("seed", [0, 1])
def test_vi_bitwise_matches_prerefactor(name, reference, seed):
    answers = random_decision(seed)
    golden = {0: 1.0} if seed else None
    quality = (np.linspace(0.55, 0.9, answers.n_workers)
               if seed else None)
    method = create(name, seed=0)
    truths, vi_quality, posterior, tracker = reference(
        answers, method.tolerance, method.max_iter, seed=0,
        golden=golden, initial_quality=quality)
    new = method.fit(answers, golden=golden, initial_quality=quality)
    assert tracker.iteration == new.n_iterations
    assert tracker.converged == new.converged
    assert np.array_equal(truths, new.truths)
    assert np.array_equal(vi_quality, new.worker_quality)
    assert np.array_equal(posterior, new.posterior)


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_kos_bitwise_matches_prerefactor(seed):
    answers = random_decision(seed)
    method = create("KOS", seed=seed)
    truths, quality, posterior, scores = reference_kos(
        answers, method.n_rounds, seed=seed)
    new = method.fit(answers)
    assert np.array_equal(truths, new.truths)
    assert np.array_equal(quality, new.worker_quality)
    assert np.array_equal(posterior, new.posterior)
    assert np.array_equal(scores, new.extras["task_scores"])


@pytest.mark.parametrize("golden", [None, {0: 1, 3: 2}])
def test_minimax_bitwise_matches_prerefactor(golden):
    answers = random_categorical(4)
    method = create("Minimax", seed=0)
    truths, quality, posterior, tracker, tau, sigma = reference_minimax(
        answers, method.tolerance, method.max_iter, seed=0, golden=golden)
    new = method.fit(answers, golden=golden)
    assert tracker.iteration == new.n_iterations
    assert np.array_equal(truths, new.truths)
    assert np.array_equal(quality, new.worker_quality)
    assert np.array_equal(posterior, new.posterior)
    assert np.array_equal(tau, new.extras["tau"])
    assert np.array_equal(sigma, new.extras["sigma"])


def test_minimax_ordinal_bitwise_matches_prerefactor():
    answers = random_categorical(6)
    method = create("Minimax-Ord", seed=0)
    (truths, quality, posterior, tracker, tau, omega,
     sigma) = reference_minimax_ordinal(
        answers, method.tolerance, method.max_iter, seed=0)
    new = method.fit(answers)
    assert tracker.iteration == new.n_iterations
    assert np.array_equal(truths, new.truths)
    assert np.array_equal(posterior, new.posterior)
    assert np.array_equal(tau, new.extras["tau"])
    assert np.array_equal(omega, new.extras["omega"])
    assert np.array_equal(sigma, new.extras["sigma"])


@pytest.mark.parametrize("golden", [None, {0: 1, 3: 0}])
def test_bcc_bitwise_matches_prerefactor(golden):
    answers = random_categorical(8)
    method = create("BCC", seed=0)
    truths, quality, posterior, mean_confusion = reference_bcc(
        answers, method.n_samples, method.burn_in, seed=0, golden=golden)
    new = method.fit(answers, golden=golden)
    assert np.array_equal(truths, new.truths)
    assert np.array_equal(quality, new.worker_quality)
    assert np.array_equal(posterior, new.posterior)
    assert np.array_equal(mean_confusion, new.extras["confusion"])


def test_cbcc_bitwise_matches_prerefactor():
    answers = random_categorical(9)
    method = create("CBCC", seed=0)
    truths, quality, posterior, membership = reference_cbcc(
        answers, method.n_communities, method.n_samples, method.burn_in,
        seed=0)
    new = method.fit(answers)
    assert np.array_equal(truths, new.truths)
    assert np.array_equal(quality, new.worker_quality)
    assert np.array_equal(posterior, new.posterior)
    assert np.array_equal(membership, new.extras["community"])


# ----------------------------------------------------------------------
# 2a. Multi-shard serial: 1e-10 of the unsharded run
# ----------------------------------------------------------------------

@pytest.mark.parametrize("method_name", REDUCTION_METHODS)
@pytest.mark.parametrize("n_shards", SHARD_COUNTS)
def test_sharded_matches_unsharded(method_name, n_shards):
    answers = _answers_for(method_name)
    base = create(method_name, seed=0).fit(answers)
    sharded = create(
        method_name, seed=0,
        policy=ExecutionPolicy(n_shards=n_shards, executor="serial"),
    ).fit(answers)
    assert sharded.n_iterations == base.n_iterations
    diff = np.max(np.abs(sharded.posterior - base.posterior))
    assert diff <= 1e-10, (
        f"{method_name} n_shards={n_shards}: posterior diff {diff:.2e}")
    assert np.max(np.abs(sharded.worker_quality
                         - base.worker_quality)) <= 1e-10


def test_sharded_single_shard_policy_stays_bitwise():
    """n_shards=1 through the policy path is still the legacy layout."""
    for name in REDUCTION_METHODS + ["BCC", "CBCC"]:
        answers = _answers_for(name)
        base = create(name, seed=0).fit(answers)
        one = create(name, seed=0,
                     policy=ExecutionPolicy(n_shards=1,
                                            executor="serial")).fit(answers)
        assert np.array_equal(base.posterior, one.posterior), name


# ----------------------------------------------------------------------
# 2b. Gibbs determinism: same (seed, shard count) ⇒ identical draws
# ----------------------------------------------------------------------

@pytest.mark.parametrize("name", ["BCC", "CBCC"])
@pytest.mark.parametrize("n_shards", [1, 4])
def test_gibbs_seeded_determinism(name, n_shards):
    answers = random_categorical(10)
    policy = ExecutionPolicy(n_shards=n_shards, executor="serial")
    first = create(name, seed=3, policy=policy).fit(answers)
    second = create(name, seed=3, policy=policy).fit(answers)
    assert np.array_equal(first.posterior, second.posterior)
    assert np.array_equal(first.truths, second.truths)
    assert np.array_equal(first.worker_quality, second.worker_quality)


# ----------------------------------------------------------------------
# 2c. Process tier: 1e-8 of the serial tier at the same shard count
# ----------------------------------------------------------------------

@pytest.mark.parametrize("name", REDUCTION_METHODS + ["BCC", "CBCC"])
def test_process_tier_matches_serial(name):
    answers = _answers_for(name)
    serial = create(
        name, seed=0,
        policy=ExecutionPolicy(n_shards=4, executor="serial"),
    ).fit(answers)
    process = create(
        name, seed=0,
        policy=ExecutionPolicy(n_shards=4, executor="process",
                               persistent=False, process_threshold=0),
    ).fit(answers)
    diff = np.max(np.abs(process.posterior - serial.posterior))
    assert diff <= 1e-8, f"{name}: process-tier posterior diff {diff:.2e}"
