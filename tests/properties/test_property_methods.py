"""Property-based tests on method invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import create
from repro.core.answers import AnswerSet
from repro.core.tasktypes import TaskType

from .test_property_answers import answer_sets


class TestMajorityVotingProperties:
    @given(answers=answer_sets(n_choices=3))
    @settings(max_examples=40, deadline=None)
    def test_mv_picks_a_modal_label(self, answers):
        result = create("MV", seed=0).fit(answers)
        counts = answers.vote_counts()
        answered = counts.sum(axis=1) > 0
        best = counts.max(axis=1)
        chosen = counts[np.arange(answers.n_tasks), result.truths]
        np.testing.assert_array_equal(chosen[answered], best[answered])

    @given(answers=answer_sets(n_choices=3), seed=st.integers(0, 2**16))
    @settings(max_examples=30, deadline=None)
    def test_mv_invariant_under_worker_relabelling(self, answers, seed):
        """Shuffling worker identities cannot change majority counts."""
        rng = np.random.default_rng(seed)
        perm = rng.permutation(answers.n_workers)
        relabelled = AnswerSet(
            answers.tasks, perm[answers.workers], answers.values,
            answers.task_type, n_choices=answers.n_choices,
            n_tasks=answers.n_tasks, n_workers=answers.n_workers,
        )
        a = create("MV", seed=0, random_ties=False).fit(answers)
        b = create("MV", seed=0, random_ties=False).fit(relabelled)
        np.testing.assert_array_equal(a.truths, b.truths)


class TestMeanMedianProperties:
    @st.composite
    @staticmethod
    def numeric_sets(draw):
        n_tasks = draw(st.integers(1, 15))
        n_workers = draw(st.integers(1, 6))
        pairs = sorted(draw(st.sets(
            st.tuples(st.integers(0, n_tasks - 1),
                      st.integers(0, n_workers - 1)),
            min_size=1, max_size=n_tasks * n_workers)))
        values = draw(st.lists(
            st.floats(-1000, 1000, allow_nan=False),
            min_size=len(pairs), max_size=len(pairs)))
        return AnswerSet([p[0] for p in pairs], [p[1] for p in pairs],
                         values, TaskType.NUMERIC,
                         n_tasks=n_tasks, n_workers=n_workers)

    @given(answers=numeric_sets())
    @settings(max_examples=50, deadline=None)
    def test_aggregates_within_answer_range(self, answers):
        for name in ("Mean", "Median"):
            result = create(name, seed=0).fit(answers)
            for task in range(answers.n_tasks):
                idx = answers.answers_of_task(task)
                if len(idx) == 0:
                    continue
                values = answers.values[idx]
                assert values.min() - 1e-9 <= result.truths[task] \
                    <= values.max() + 1e-9

    @given(answers=numeric_sets(),
           scale=st.floats(0.1, 10, allow_nan=False),
           shift=st.floats(-100, 100, allow_nan=False))
    @settings(max_examples=40, deadline=None)
    def test_mean_is_affine_equivariant(self, answers, scale, shift):
        transformed = AnswerSet(
            answers.tasks, answers.workers,
            answers.values * scale + shift, TaskType.NUMERIC,
            n_tasks=answers.n_tasks, n_workers=answers.n_workers)
        base = create("Mean").fit(answers).truths
        moved = create("Mean").fit(transformed).truths
        answered = answers.task_answer_counts() > 0
        np.testing.assert_allclose(moved[answered],
                                   base[answered] * scale + shift,
                                   rtol=1e-9, atol=1e-6)


class TestIterativeMethodProperties:
    @given(answers=answer_sets(n_choices=2), seed=st.integers(0, 100))
    @settings(max_examples=25, deadline=None)
    def test_zc_posterior_valid_on_arbitrary_input(self, answers, seed):
        binary = AnswerSet(answers.tasks, answers.workers,
                           (answers.values % 2),
                           TaskType.DECISION_MAKING,
                           n_tasks=answers.n_tasks,
                           n_workers=answers.n_workers)
        result = create("ZC", seed=seed).fit(binary)
        assert np.isfinite(result.posterior).all()
        np.testing.assert_allclose(result.posterior.sum(axis=1), 1.0,
                                   atol=1e-6)
        assert (result.worker_quality >= 0).all()
        assert (result.worker_quality <= 1).all()

    @given(answers=answer_sets(n_choices=3), seed=st.integers(0, 100))
    @settings(max_examples=20, deadline=None)
    def test_ds_never_crashes_and_stays_normalised(self, answers, seed):
        result = create("D&S", seed=seed).fit(answers)
        np.testing.assert_allclose(result.posterior.sum(axis=1), 1.0,
                                   atol=1e-6)
        confusion = result.extras["confusion"]
        np.testing.assert_allclose(confusion.sum(axis=2), 1.0, atol=1e-6)
