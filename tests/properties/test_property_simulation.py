"""Property-based tests for the simulation substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulation.assignment import assign_by_task, redundancy_schedule
from repro.simulation.longtail import zipf_activity
from repro.simulation.workers import reliable_worker


class TestZipfProperties:
    @given(n_workers=st.integers(1, 80),
           per_worker=st.integers(1, 50),
           exponent=st.floats(0.0, 3.0, allow_nan=False))
    @settings(max_examples=80, deadline=None)
    def test_total_and_minimum_always_hold(self, n_workers, per_worker,
                                           exponent):
        total = n_workers * per_worker
        counts = zipf_activity(n_workers, total, exponent=exponent)
        assert counts.sum() == total
        assert counts.min() >= 1

    @given(n_workers=st.integers(2, 50), budget=st.integers(100, 2000))
    @settings(max_examples=50, deadline=None)
    def test_counts_sorted_by_rank_without_shuffle(self, n_workers, budget):
        counts = zipf_activity(n_workers, max(budget, n_workers),
                               exponent=1.0)
        # Unshuffled counts are non-increasing in rank.
        assert (np.diff(counts) <= 0).all()


class TestScheduleProperties:
    @given(n_tasks=st.integers(1, 200), total=st.integers(0, 5000))
    @settings(max_examples=80, deadline=None)
    def test_schedule_sums_exactly_and_is_balanced(self, n_tasks, total):
        schedule = redundancy_schedule(n_tasks, total)
        assert schedule.sum() == total
        assert schedule.max() - schedule.min() <= 1


class TestAssignmentProperties:
    @given(n_tasks=st.integers(1, 40),
           n_workers=st.integers(3, 15),
           redundancy=st.integers(1, 3),
           seed=st.integers(0, 2**16))
    @settings(max_examples=50, deadline=None)
    def test_assignment_invariants(self, n_tasks, n_workers, redundancy,
                                   seed):
        rng = np.random.default_rng(seed)
        schedule = np.full(n_tasks, min(redundancy, n_workers))
        tasks, workers = assign_by_task(schedule, np.ones(n_workers), rng)
        # Exact redundancy per task.
        np.testing.assert_array_equal(
            np.bincount(tasks, minlength=n_tasks), schedule)
        # No duplicate (task, worker) pair.
        pairs = set(zip(tasks.tolist(), workers.tolist()))
        assert len(pairs) == len(tasks)
        # Worker indices in range.
        assert workers.min(initial=0) >= 0
        assert workers.max(initial=0) < n_workers


class TestWorkerModelProperties:
    @given(accuracy=st.floats(0.0, 1.0, allow_nan=False),
           n_choices=st.integers(2, 6),
           seed=st.integers(0, 2**16))
    @settings(max_examples=60, deadline=None)
    def test_reliable_worker_rows_always_valid(self, accuracy, n_choices,
                                               seed):
        worker = reliable_worker(accuracy, n_choices)
        np.testing.assert_allclose(worker.confusion.sum(axis=1), 1.0)
        assert (worker.confusion >= 0).all()
        rng = np.random.default_rng(seed)
        answers = worker.answer_many(np.zeros(50, dtype=np.int64), rng)
        assert answers.min() >= 0
        assert answers.max() < n_choices
