"""Sharded-EM parity properties.

Two guarantees are pinned here:

1. **Bit-for-bit single-shard parity** — ``fit(n_shards=1)`` of every
   refactored method reproduces the *pre-refactor* global-array EM
   exactly (not merely to a tolerance).  The reference implementations
   live in :mod:`benchmarks.reference_em` — faithful copies of the
   method code before the map-reduce refactor, shared with the
   ``bench_sharded`` baseline so the reference cannot drift.

2. **Multi-shard numerical parity** — for any ``n_shards`` in 1..8 and
   any iteration budget, sharded EM matches the unsharded posterior to
   1e-10 per iteration (only the merge order of worker-side partial
   sums differs, a last-ulp effect).
"""

import numpy as np
import pytest

from benchmarks.reference_em import (
    reference_confusion_em,
    reference_glad,
    reference_lfc_n,
    reference_zc,
)
from repro.core.answers import AnswerSet
from repro.core.policy import ExecutionPolicy
from repro.core.registry import create
from repro.core.tasktypes import TaskType

CATEGORICAL_METHODS = ["D&S", "LFC", "ZC", "GLAD"]
SHARD_COUNTS = [1, 2, 3, 5, 8]


def random_categorical(seed, n_tasks=60, n_workers=12, n_choices=3,
                       n_answers=600):
    rng = np.random.default_rng(seed)
    truth = rng.integers(0, n_choices, n_tasks)
    acc = rng.uniform(0.35, 0.95, n_workers)
    tasks = rng.integers(0, n_tasks, n_answers)
    workers = rng.integers(0, n_workers, n_answers)
    correct = rng.random(n_answers) < acc[workers]
    noise = rng.integers(0, n_choices, n_answers)
    values = np.where(correct, truth[tasks], noise)
    return AnswerSet(tasks, workers, values, TaskType.SINGLE_CHOICE,
                     n_choices=n_choices, n_tasks=n_tasks,
                     n_workers=n_workers)


def random_numeric(seed, n_tasks=50, n_workers=10, n_answers=400):
    rng = np.random.default_rng(seed)
    truth = rng.normal(0.0, 3.0, n_tasks)
    sigma = rng.uniform(0.2, 2.0, n_workers)
    tasks = rng.integers(0, n_tasks, n_answers)
    workers = rng.integers(0, n_workers, n_answers)
    values = truth[tasks] + rng.normal(0, 1, n_answers) * sigma[workers]
    return AnswerSet(tasks, workers, values, TaskType.NUMERIC,
                     n_tasks=n_tasks, n_workers=n_workers)


# ----------------------------------------------------------------------
# 1. Bit-for-bit: single-shard refactored EM == pre-refactor EM
# ----------------------------------------------------------------------

@pytest.mark.parametrize("seed", [0, 1, 2])
def test_ds_bitwise_matches_prerefactor(seed):
    answers = random_categorical(seed)
    method = create("D&S", seed=0)
    ref = reference_confusion_em(answers, 0.01, 0.0,
                                 method.tolerance, method.max_iter)
    new = method.fit(answers)
    assert ref.n_iterations == new.n_iterations
    assert np.array_equal(ref.posterior, new.posterior)
    assert np.array_equal(ref.parameters.confusion, new.extras["confusion"])
    assert np.array_equal(ref.parameters.prior, new.extras["class_prior"])


@pytest.mark.parametrize("seed", [0, 1])
def test_lfc_bitwise_matches_prerefactor(seed):
    answers = random_categorical(seed)
    method = create("LFC", seed=0)
    ref = reference_confusion_em(answers, 0.2, 0.2,
                                 method.tolerance, method.max_iter)
    new = method.fit(answers)
    assert np.array_equal(ref.posterior, new.posterior)


@pytest.mark.parametrize("seed", [0, 1])
def test_zc_bitwise_matches_prerefactor(seed):
    answers = random_categorical(seed)
    method = create("ZC", seed=0)
    (ref, ref_quality) = reference_zc(answers, method.tolerance,
                                      method.max_iter)
    new = method.fit(answers)
    assert ref.n_iterations == new.n_iterations
    assert np.array_equal(ref.posterior, new.posterior)
    assert np.array_equal(ref_quality, new.worker_quality)


@pytest.mark.parametrize("seed", [0, 1])
def test_glad_bitwise_matches_prerefactor(seed):
    answers = random_categorical(seed)
    method = create("GLAD", seed=0, max_iter=30)
    posterior, alpha, easiness, tracker = reference_glad(
        answers, method.tolerance, method.max_iter)
    new = method.fit(answers)
    assert tracker.iteration == new.n_iterations
    assert np.array_equal(posterior, new.posterior)
    assert np.array_equal(alpha, new.worker_quality)
    assert np.array_equal(easiness, new.extras["task_easiness"])


@pytest.mark.parametrize("seed", [0, 1])
def test_lfc_n_bitwise_matches_prerefactor(seed):
    answers = random_numeric(seed)
    method = create("LFC_N", seed=0)
    truths, variance, tracker = reference_lfc_n(
        answers, method.tolerance, method.max_iter)
    new = method.fit(answers)
    assert tracker.iteration == new.n_iterations
    assert np.array_equal(truths, new.truths)
    assert np.array_equal(variance, new.extras["worker_variance"])


def test_lfc_n_bitwise_with_golden():
    answers = random_numeric(3)
    golden = {0: 1.5, 7: -2.0}
    method = create("LFC_N", seed=0)
    truths, _, _ = reference_lfc_n(answers, method.tolerance,
                                   method.max_iter, golden=golden)
    new = method.fit(answers, golden=golden)
    assert np.array_equal(truths, new.truths)
    assert new.truths[0] == 1.5 and new.truths[7] == -2.0


# ----------------------------------------------------------------------
# 2. Multi-shard: 1e-10 parity per iteration budget, any shard count
# ----------------------------------------------------------------------

@pytest.mark.parametrize("method_name", CATEGORICAL_METHODS)
@pytest.mark.parametrize("n_shards", SHARD_COUNTS)
def test_sharded_matches_unsharded_categorical(method_name, n_shards):
    answers = random_categorical(7)
    for max_iter in (1, 4, 9):
        base = create(method_name, seed=0, max_iter=max_iter).fit(answers)
        sharded = create(method_name, seed=0, max_iter=max_iter,
                     policy=ExecutionPolicy(n_shards=n_shards, executor="serial")).fit(answers)
        assert sharded.n_iterations == base.n_iterations
        diff = np.max(np.abs(sharded.posterior - base.posterior))
        if n_shards == 1:
            assert diff == 0.0
        else:
            assert diff <= 1e-10, (
                f"{method_name} n_shards={n_shards} max_iter={max_iter}: "
                f"posterior diff {diff:.2e}"
            )


@pytest.mark.parametrize("n_shards", SHARD_COUNTS)
def test_sharded_matches_unsharded_numeric(n_shards):
    answers = random_numeric(11)
    for max_iter in (1, 4, 9):
        base = create("LFC_N", seed=0, max_iter=max_iter).fit(answers)
        sharded = create("LFC_N", seed=0, max_iter=max_iter,
                     policy=ExecutionPolicy(n_shards=n_shards, executor="serial")).fit(answers)
        diff = np.max(np.abs(sharded.truths - base.truths))
        if n_shards == 1:
            assert diff == 0.0
        else:
            assert diff <= 1e-10


@pytest.mark.parametrize("method_name", ["D&S", "ZC"])
def test_sharded_with_golden_and_warm(method_name):
    """Sharding composes with golden clamping and warm starts."""
    answers = random_categorical(5)
    golden = {0: 1, 3: 2}
    base = create(method_name, seed=0).fit(answers, golden=golden)
    sharded = create(method_name, seed=0, policy=ExecutionPolicy(n_shards=4, executor="serial")).fit(answers,
                                                          golden=golden)
    assert int(sharded.truths[0]) == 1 and int(sharded.truths[3]) == 2
    assert np.max(np.abs(sharded.posterior - base.posterior)) <= 1e-10

    warm_base = create(method_name, seed=0).fit(answers, warm_start=base)
    warm_sharded = create(method_name, seed=0, policy=ExecutionPolicy(n_shards=4, executor="serial")).fit(
        answers, warm_start=base)
    assert warm_sharded.extras["warm_started"]
    assert warm_sharded.n_iterations == warm_base.n_iterations
    assert np.max(np.abs(warm_sharded.posterior
                         - warm_base.posterior)) <= 1e-10


def test_sharded_thread_pool_matches_serial():
    """shard_workers only changes where shards run, never the numbers."""
    answers = random_categorical(9)
    serial = create("D&S", seed=0, policy=ExecutionPolicy(n_shards=4, executor="serial")).fit(answers)
    threaded = create("D&S", seed=0, policy=ExecutionPolicy(n_shards=4, executor="thread", max_workers=3)).fit(answers)
    assert np.array_equal(serial.posterior, threaded.posterior)
    assert np.array_equal(serial.worker_quality, threaded.worker_quality)


def test_sharded_handles_empty_and_tiny_shards():
    """More shards than tasks: trailing shards own empty task ranges."""
    answers = random_categorical(13, n_tasks=5, n_workers=4, n_answers=30)
    base = create("D&S", seed=0).fit(answers)
    sharded = create("D&S", seed=0, policy=ExecutionPolicy(n_shards=8, executor="serial")).fit(answers)
    assert np.max(np.abs(sharded.posterior - base.posterior)) <= 1e-10
