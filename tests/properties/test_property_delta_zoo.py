"""Delta-refit safety properties for the whole method zoo.

The load-bearing invariant of every per-family delta contract: a shard
that received new answers (*dirty*) is always re-primed — its cached
block is discarded and recomputed — no matter how adversarial the
freeze tolerance, verify cadence or batch schedule.  Freezing and
verify scheduling are allowed to trade accuracy for work only on
*clean* shards; a tolerance can never argue a dirty shard back to its
stale state.

A second property pins the KOS layout-independent seeding: the initial
``y`` message of an answer edge depends only on ``(task, worker)`` and
the master entropy draw — never on the edge's position in shard order.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.policy import ExecutionPolicy
from repro.core.tasktypes import TaskType
from repro.engine import InferenceEngine
from repro.inference.sharded import dirty_shards
from repro.methods.kos import edge_seed_messages

N_TASKS = 30
N_WORKERS = 20
N_SHARDS = 4


def _stream(seed):
    """Unique (task, worker) pairs: a base covering every task (in task
    order, so external ids equal internal indices), then a shuffled
    tail the growth batches draw from."""
    rng = np.random.default_rng(seed)
    pairs = [(t, w) for t in range(N_TASKS) for w in range(N_WORKERS)]
    order = rng.permutation(len(pairs))
    base = sorted(pairs[i] for i in order[:240])
    tail = [pairs[i] for i in order[240:]]
    values = rng.integers(0, 2, len(pairs))
    return ([(t, w, int(values[t * N_WORKERS + w])) for t, w in base],
            [(t, w, int(values[t * N_WORKERS + w])) for t, w in tail])


@given(
    seed=st.integers(0, 2**10),
    method=st.sampled_from(["D&S", "KOS"]),
    freeze_exp=st.integers(2, 12),
    verify_every=st.integers(1, 7),
    batch_sizes=st.lists(st.integers(5, 60), min_size=1, max_size=3),
)
@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_no_schedule_lets_a_dirty_shard_skip_repriming(
        seed, method, freeze_exp, verify_every, batch_sizes):
    base, tail = _stream(seed)
    policy = ExecutionPolicy(n_shards=N_SHARDS, executor="serial",
                             refit="delta",
                             freeze_tol=10.0 ** -freeze_exp,
                             verify_every=verify_every)
    with InferenceEngine(TaskType.DECISION_MAKING, policy=policy,
                         seed=0) as engine:
        engine.add_answers(base)
        previous = engine.infer(method, tolerance=1e-5, max_iter=60)
        offset = 0
        for size in batch_sizes:
            batch = tail[offset:offset + size]
            offset += size
            if not batch:
                break
            engine.add_answers(batch)
            result = engine.infer(method, tolerance=1e-5, max_iter=60)
            if result.fit_stats.mode == "delta":
                # The dirty set is a pure function of the batch and the
                # pinned cuts — tolerances cannot shrink it — and every
                # dirty shard was re-primed by at least one fresh
                # E-step/task-round.
                expected = dirty_shards(
                    previous.shard_state.task_cuts,
                    np.array([t for t, _, _ in batch]))
                assert result.fit_stats.dirty_shards == int(expected.sum())
                assert expected.sum() >= 1
                assert (result.fit_stats.e_block_calls
                        >= result.fit_stats.dirty_shards)
            previous = result


@given(seed=st.integers(0, 2**16), n_edges=st.integers(1, 300))
@settings(max_examples=40, deadline=None)
def test_kos_edge_seeds_are_layout_independent(seed, n_edges):
    rng = np.random.default_rng(seed)
    tasks = rng.integers(0, 1000, n_edges)
    workers = rng.integers(0, 1000, n_edges)
    entropy = int(rng.integers(0, 2**63))
    y = edge_seed_messages(tasks, workers, entropy)
    # Any permutation — any shard layout, any epoch interleaving —
    # seeds the same message on the same (task, worker) edge.
    perm = rng.permutation(n_edges)
    np.testing.assert_array_equal(
        edge_seed_messages(tasks[perm], workers[perm], entropy), y[perm])
    # And the seeds are value-, not position-, keyed: duplicating an
    # edge duplicates its message.
    doubled = edge_seed_messages(np.concatenate([tasks, tasks]),
                                 np.concatenate([workers, workers]),
                                 entropy)
    np.testing.assert_array_equal(doubled[:n_edges], doubled[n_edges:])
    # Messages are N(1, 1)-distributed draws, never degenerate.
    assert np.all(np.isfinite(y))
