"""Property-based tests for the AnswerSet container."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.answers import AnswerSet
from repro.core.tasktypes import TaskType


@st.composite
def answer_sets(draw, max_tasks=30, max_workers=10, n_choices=3):
    """Random categorical answer sets with no duplicate (task, worker)."""
    n_tasks = draw(st.integers(1, max_tasks))
    n_workers = draw(st.integers(1, max_workers))
    pairs = draw(st.sets(
        st.tuples(st.integers(0, n_tasks - 1),
                  st.integers(0, n_workers - 1)),
        min_size=1, max_size=n_tasks * n_workers,
    ))
    pairs = sorted(pairs)
    values = draw(st.lists(st.integers(0, n_choices - 1),
                           min_size=len(pairs), max_size=len(pairs)))
    return AnswerSet(
        [p[0] for p in pairs], [p[1] for p in pairs], values,
        TaskType.SINGLE_CHOICE, n_choices=n_choices,
        n_tasks=n_tasks, n_workers=n_workers,
    )


class TestAnswerSetInvariants:
    @given(answers=answer_sets())
    @settings(max_examples=60, deadline=None)
    def test_adjacency_partitions_answers(self, answers):
        total = sum(len(answers.answers_of_task(t))
                    for t in range(answers.n_tasks))
        assert total == answers.n_answers
        total_w = sum(len(answers.answers_of_worker(w))
                      for w in range(answers.n_workers))
        assert total_w == answers.n_answers

    @given(answers=answer_sets())
    @settings(max_examples=60, deadline=None)
    def test_vote_counts_consistent_with_adjacency(self, answers):
        counts = answers.vote_counts()
        np.testing.assert_array_equal(
            counts.sum(axis=1), answers.task_answer_counts())

    @given(answers=answer_sets(), r=st.integers(1, 5),
           seed=st.integers(0, 2**16))
    @settings(max_examples=60, deadline=None)
    def test_subsample_never_exceeds_r(self, answers, r, seed):
        rng = np.random.default_rng(seed)
        sub = answers.subsample_redundancy(r, rng)
        assert (sub.task_answer_counts() <= r).all()
        assert sub.n_tasks == answers.n_tasks
        assert sub.n_workers == answers.n_workers

    @given(answers=answer_sets(), seed=st.integers(0, 2**16))
    @settings(max_examples=40, deadline=None)
    def test_subsample_idempotent_at_full_redundancy(self, answers, seed):
        rng = np.random.default_rng(seed)
        max_r = int(answers.task_answer_counts().max())
        sub = answers.subsample_redundancy(max_r, rng)
        assert sub.n_answers == answers.n_answers

    @given(answers=answer_sets())
    @settings(max_examples=40, deadline=None)
    def test_onehot_row_sums(self, answers):
        assert (answers.onehot().sum(axis=1) == 1).all()
