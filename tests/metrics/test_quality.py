"""Tests for the evaluation metrics (paper Equations 3–5)."""

import numpy as np
import pytest

from repro.core.tasktypes import TaskType
from repro.metrics.quality import (
    accuracy,
    evaluate,
    f1_score,
    mae,
    precision_recall,
    rmse,
)


class TestAccuracy:
    def test_basic(self):
        assert accuracy(np.array([1, 0, 1]), np.array([1, 0, 0])) == \
            pytest.approx(2 / 3)

    def test_mask(self):
        truth = np.array([1, 0, 1])
        inferred = np.array([1, 0, 0])
        assert accuracy(truth, inferred, np.array([True, True, False])) == 1.0

    def test_empty_mask_gives_nan(self):
        out = accuracy(np.array([1]), np.array([1]), np.array([False]))
        assert np.isnan(out)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            accuracy(np.array([1, 0]), np.array([1]))


class TestF1:
    def test_perfect(self):
        truth = np.array([1, 1, 0, 0])
        assert f1_score(truth, truth) == 1.0

    def test_all_negative_prediction_zero(self):
        # The paper's BCC-at-r=1 case: predicting everything F gives
        # F1 = 0.
        truth = np.array([1, 1, 0, 0])
        predicted = np.zeros(4, dtype=int)
        assert f1_score(truth, predicted) == 0.0

    def test_no_positives_anywhere_zero(self):
        truth = np.zeros(4, dtype=int)
        assert f1_score(truth, truth) == 0.0

    def test_matches_sklearn_formula(self):
        truth = np.array([1, 1, 1, 0, 0, 0, 0, 0])
        pred = np.array([1, 1, 0, 1, 1, 0, 0, 0])
        precision, recall = precision_recall(truth, pred)
        expected = 2 / (1 / precision + 1 / recall)
        assert f1_score(truth, pred) == pytest.approx(expected)

    def test_high_accuracy_low_f1_on_imbalance(self):
        """The paper's D_Product argument: the all-F baseline has 88%
        accuracy but 0 F1."""
        truth = np.array([1] * 12 + [0] * 88)
        baseline = np.zeros(100, dtype=int)
        assert accuracy(truth, baseline) == pytest.approx(0.88)
        assert f1_score(truth, baseline) == 0.0

    def test_custom_positive_label(self):
        truth = np.array([2, 2, 0])
        pred = np.array([2, 0, 0])
        assert f1_score(truth, pred, positive_label=2) == pytest.approx(2 / 3)


class TestNumericErrors:
    def test_mae(self):
        assert mae(np.array([0.0, 2.0]), np.array([1.0, 0.0])) == 1.5

    def test_rmse_penalises_large_errors(self):
        truth = np.zeros(2)
        spread = np.array([0.0, 2.0])
        even = np.array([1.0, 1.0])
        assert mae(truth, spread) == mae(truth, even)
        assert rmse(truth, spread) > rmse(truth, even)

    def test_zero_for_perfect(self):
        truth = np.array([1.5, -2.5])
        assert mae(truth, truth) == 0.0
        assert rmse(truth, truth) == 0.0


class TestEvaluate:
    def test_decision_making_metrics(self):
        out = evaluate(TaskType.DECISION_MAKING, np.array([1, 0]),
                       np.array([1, 1]))
        assert set(out) == {"accuracy", "f1"}

    def test_single_choice_metrics(self):
        out = evaluate(TaskType.SINGLE_CHOICE, np.array([1, 2]),
                       np.array([1, 2]))
        assert set(out) == {"accuracy"}

    def test_numeric_metrics(self):
        out = evaluate(TaskType.NUMERIC, np.array([1.0]), np.array([2.0]))
        assert set(out) == {"mae", "rmse"}
