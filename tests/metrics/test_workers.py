"""Tests for per-worker statistics (Figures 2–3)."""

import numpy as np

from repro.core.answers import AnswerSet
from repro.core.tasktypes import TaskType
from repro.metrics.workers import (
    histogram,
    long_tail_ratio,
    quality_histogram,
    redundancy_histogram,
    worker_accuracy,
    worker_redundancy,
    worker_rmse,
)


class TestWorkerRedundancy:
    def test_counts(self, paper_example):
        assert list(worker_redundancy(paper_example)) == [6, 5, 6]

    def test_histogram_totals(self, paper_example):
        hist = redundancy_histogram(paper_example, bins=3)
        assert hist.counts.sum() == 3  # three workers

    def test_long_tail_ratio_bounds(self, small_product):
        ratio = long_tail_ratio(small_product.answers)
        assert 0.2 <= ratio <= 1.0


class TestWorkerAccuracy:
    def test_against_known_truth(self, paper_example, paper_example_truth):
        acc = worker_accuracy(paper_example, paper_example_truth)
        # w3 answers: t1=T(✓) t2=F(✓) t3=F(✓) t4=F(✓) t5=F(✓) t6=T(✓).
        assert acc[2] == 1.0
        # w1: t1=F(✗) t2=T(✗) t3=T(✗) t4=F(✓) t5=F(✓) t6=F(✗) -> 2/6.
        assert acc[0] == np.float64(2 / 6)

    def test_truth_mask_restricts(self, paper_example, paper_example_truth):
        mask = np.zeros(6, dtype=bool)
        mask[3] = True  # only t4 counts
        acc = worker_accuracy(paper_example, paper_example_truth, mask)
        assert acc[0] == 1.0  # w1 answered t4 correctly
        assert acc[1] == 0.0  # w2 answered t4 incorrectly

    def test_silent_worker_nan(self):
        answers = AnswerSet([0], [0], [1], TaskType.DECISION_MAKING,
                            n_workers=2)
        acc = worker_accuracy(answers, np.array([1]))
        assert acc[0] == 1.0
        assert np.isnan(acc[1])


class TestWorkerRMSE:
    def test_known_errors(self):
        answers = AnswerSet([0, 1, 0, 1], [0, 0, 1, 1],
                            [1.0, 1.0, 3.0, 3.0], TaskType.NUMERIC)
        truth = np.array([0.0, 0.0])
        rmse = worker_rmse(answers, truth)
        assert rmse[0] == 1.0
        assert rmse[1] == 3.0


class TestHistogram:
    def test_nan_dropped(self):
        hist = histogram(np.array([0.5, np.nan, 0.7]), bins=2)
        assert hist.counts.sum() == 2

    def test_rows_format(self):
        hist = histogram(np.array([1.0, 2.0, 3.0]), bins=3)
        rows = hist.rows()
        assert len(rows) == 3
        assert rows[0][2] == 1

    def test_quality_histogram_dispatch(self, small_emotion):
        hist = quality_histogram(small_emotion.answers, small_emotion.truth)
        assert hist.counts.sum() > 0
