"""Tests for inter-worker agreement statistics."""

import numpy as np
import pytest

from repro.core.answers import AnswerSet
from repro.core.tasktypes import TaskType
from repro.metrics.agreement import (
    cohen_kappa,
    fleiss_kappa,
    pairwise_agreement_matrix,
)


def grid_answers(matrix, n_choices=2):
    """(n_workers, n_tasks) label grid -> AnswerSet (full redundancy)."""
    matrix = np.asarray(matrix)
    n_workers, n_tasks = matrix.shape
    tasks, workers, values = [], [], []
    for worker in range(n_workers):
        for task in range(n_tasks):
            tasks.append(task)
            workers.append(worker)
            values.append(int(matrix[worker, task]))
    task_type = (TaskType.DECISION_MAKING if n_choices == 2
                 else TaskType.SINGLE_CHOICE)
    return AnswerSet(tasks, workers, values, task_type,
                     n_choices=n_choices)


class TestFleissKappa:
    def test_perfect_agreement_with_label_variety(self):
        answers = grid_answers([[0, 1, 0, 1], [0, 1, 0, 1], [0, 1, 0, 1]])
        assert fleiss_kappa(answers) == pytest.approx(1.0)

    def test_random_answers_near_zero(self):
        rng = np.random.default_rng(0)
        answers = grid_answers(rng.integers(0, 2, size=(8, 400)))
        assert abs(fleiss_kappa(answers)) < 0.06

    def test_needs_two_answers_per_task(self):
        answers = AnswerSet([0, 1], [0, 1], [1, 0],
                            TaskType.DECISION_MAKING)
        assert np.isnan(fleiss_kappa(answers))

    def test_degenerate_unanimity_nan(self):
        answers = grid_answers(np.zeros((3, 5), dtype=int))
        assert np.isnan(fleiss_kappa(answers))


class TestCohenKappa:
    def test_identical_workers(self):
        answers = grid_answers([[0, 1, 0, 1, 1], [0, 1, 0, 1, 1]])
        assert cohen_kappa(answers, 0, 1) == pytest.approx(1.0)

    def test_independent_workers_near_zero(self):
        rng = np.random.default_rng(1)
        answers = grid_answers(rng.integers(0, 2, size=(2, 500)))
        assert abs(cohen_kappa(answers, 0, 1)) < 0.1

    def test_systematic_disagreement_negative(self):
        a = np.array([0, 1] * 10)
        answers = grid_answers(np.stack([a, 1 - a]))
        assert cohen_kappa(answers, 0, 1) < -0.9

    def test_insufficient_overlap_nan(self):
        answers = AnswerSet([0, 1], [0, 1], [1, 0],
                            TaskType.DECISION_MAKING)
        assert np.isnan(cohen_kappa(answers, 0, 1))


class TestPairwiseMatrix:
    def test_symmetric_with_unit_diagonal(self):
        rng = np.random.default_rng(2)
        answers = grid_answers(rng.integers(0, 2, size=(5, 50)))
        matrix = pairwise_agreement_matrix(answers)
        np.testing.assert_allclose(matrix, matrix.T, equal_nan=True)
        np.testing.assert_allclose(np.diag(matrix), 1.0)

    def test_known_agreement_rate(self):
        answers = grid_answers([[0, 0, 0, 0], [0, 0, 1, 1]])
        matrix = pairwise_agreement_matrix(answers)
        assert matrix[0, 1] == pytest.approx(0.5)

    def test_min_shared_masks_sparse_pairs(self):
        answers = AnswerSet([0, 0, 1], [0, 1, 0], [1, 1, 0],
                            TaskType.DECISION_MAKING)
        matrix = pairwise_agreement_matrix(answers, min_shared=2)
        assert np.isnan(matrix[0, 1])

    def test_clique_visible(self):
        """Two coordinated workers stand out against independents."""
        rng = np.random.default_rng(3)
        independent = rng.integers(0, 4, size=(4, 200))
        clique_member = np.full((2, 200), 1)
        answers = grid_answers(np.vstack([independent, clique_member]),
                               n_choices=4)
        matrix = pairwise_agreement_matrix(answers)
        assert matrix[4, 5] == pytest.approx(1.0)
        assert np.nanmean(matrix[0, 1:4]) < 0.5
