"""Tests for the data-consistency statistic C (Section 6.2.1)."""

import numpy as np
import pytest

from repro.core.answers import AnswerSet
from repro.core.tasktypes import TaskType
from repro.exceptions import TaskTypeMismatchError
from repro.metrics.consistency import (
    categorical_consistency,
    consistency,
    numeric_consistency,
)


def categorical(answers_per_task):
    tasks, workers, values = [], [], []
    worker = 0
    for task, answers in enumerate(answers_per_task):
        for value in answers:
            tasks.append(task)
            workers.append(worker)
            worker += 1
            values.append(value)
    n_choices = max(max(a) for a in answers_per_task if a) + 1
    task_type = (TaskType.DECISION_MAKING if n_choices <= 2
                 else TaskType.SINGLE_CHOICE)
    return AnswerSet(tasks, workers, values, task_type,
                     n_choices=max(n_choices, 2))


class TestCategoricalConsistency:
    def test_unanimous_is_zero(self):
        answers = categorical([[1, 1, 1], [0, 0, 0]])
        assert categorical_consistency(answers) == pytest.approx(0.0)

    def test_even_split_is_one(self):
        answers = categorical([[0, 1], [1, 0]])
        assert categorical_consistency(answers) == pytest.approx(1.0)

    def test_log_base_keeps_range_for_many_choices(self):
        answers = categorical([[0, 1, 2, 3]])
        assert categorical_consistency(answers) == pytest.approx(1.0)

    def test_paper_example_value(self, paper_example):
        # t1: 1/1 split (entropy 1); t2..t6: 2/1 splits
        # (entropy = -(2/3 log2 2/3 + 1/3 log2 1/3) ≈ 0.9183).
        expected = (1.0 + 5 * 0.918295) / 6
        assert categorical_consistency(paper_example) == \
            pytest.approx(expected, abs=1e-4)

    def test_numeric_rejected(self):
        numeric = AnswerSet([0], [0], [1.0], TaskType.NUMERIC)
        with pytest.raises(TaskTypeMismatchError):
            categorical_consistency(numeric)


class TestNumericConsistency:
    def test_identical_answers_zero(self):
        answers = AnswerSet([0, 0, 0], [0, 1, 2], [5.0, 5.0, 5.0],
                            TaskType.NUMERIC)
        assert numeric_consistency(answers) == 0.0

    def test_known_deviation(self):
        # Median of [0, 10] is 5; RMS deviation is 5.
        answers = AnswerSet([0, 0], [0, 1], [0.0, 10.0], TaskType.NUMERIC)
        assert numeric_consistency(answers) == pytest.approx(5.0)

    def test_outlier_increases_c(self):
        tight = AnswerSet([0, 0, 0], [0, 1, 2], [1.0, 1.1, 0.9],
                          TaskType.NUMERIC)
        loose = AnswerSet([0, 0, 0], [0, 1, 2], [1.0, 1.1, 50.0],
                          TaskType.NUMERIC)
        assert numeric_consistency(loose) > numeric_consistency(tight)


class TestDispatch:
    def test_consistency_dispatches(self, paper_example):
        assert consistency(paper_example) == \
            categorical_consistency(paper_example)

    def test_numeric_dispatch(self):
        answers = AnswerSet([0, 0], [0, 1], [0.0, 2.0], TaskType.NUMERIC)
        assert consistency(answers) == numeric_consistency(answers)
