"""Fault-tolerant shard execution: injection plane + self-healing dispatch.

The PR-10 contracts:

* a SIGKILLed worker (scripted or external) is detected, its pool
  respawned with the message ledger replayed, and only the failed
  shards re-dispatched — the recovered fit is **bit-identical** to the
  uninterrupted one;
* a hung phase trips the per-phase deadline instead of blocking
  forever, and recovers the same way;
* past the retry budget the orphaned shards degrade to the master's
  serial spec path (flagged in ``FitStats``) — or raise, when the
  policy says so;
* the hooks are deterministic: the same :class:`FaultPlan` over the
  same stream injects the same faults at the same events.
"""

import os
import signal

import numpy as np
import pytest

from repro import faults
from repro.core.answers import AnswerSet
from repro.core.policy import ExecutionPolicy, FaultPolicy, MethodSpec
from repro.core.registry import create
from repro.core.tasktypes import TaskType
from repro.engine.runtime import ShardRuntime
from repro.engine.sharded import ShardedInferenceEngine
from repro.exceptions import PhaseTimeoutError, WorkerCrashError
from repro.faults import Backoff, FaultPlan, FaultTrigger


def build_answers(seed=0, n_tasks=60, n_workers=8, n_answers=400):
    rng = np.random.default_rng(seed)
    truth = rng.integers(0, 2, n_tasks)
    acc = rng.uniform(0.55, 0.95, n_workers)
    tasks = rng.integers(0, n_tasks, n_answers)
    workers = rng.integers(0, n_workers, n_answers)
    correct = rng.random(n_answers) < acc[workers]
    values = np.where(correct, truth[tasks], 1 - truth[tasks])
    return AnswerSet(tasks, workers, values, TaskType.DECISION_MAKING,
                     n_tasks=n_tasks, n_workers=n_workers)


def runtime_fit(answers, method="D&S", plan=None, policy=None,
                n_shards=4, max_workers=2):
    """One fit on a private runtime; returns (result, fault_events)."""
    spec = MethodSpec.coerce(method, {}).with_defaults(seed=0)
    rt = ShardRuntime(n_shards=n_shards, max_workers=max_workers)
    try:
        lease = rt.lease(answers, spec, fault_policy=policy, faults=plan)
        with lease:
            result = create(spec).fit(answers, shard_runner=lease)
        return result, dict(lease.fault_events)
    finally:
        rt.close()


@pytest.fixture(scope="module")
def answers():
    return build_answers()


@pytest.fixture(scope="module")
def reference(answers):
    """The uninterrupted 4-shard fit every recovery must reproduce."""
    result, events = runtime_fit(answers)
    assert not any(events.values())
    return result


# -- FaultPlan / FaultTrigger (pure unit) ------------------------------
class TestFaultPlan:
    def test_parse_round_trip(self):
        plan = FaultPlan.parse(
            "kill:shard=1,on=2;delay:phase=e_block,seconds=0.5;"
            "commit:count=3;garble:on=5")
        kinds = [t.kind for t in plan.triggers]
        assert kinds == ["kill", "delay", "commit", "garble"]
        assert plan.triggers[0].shard == 1
        assert plan.triggers[0].on == 2
        assert plan.triggers[1].phase == "e_block"
        assert plan.triggers[1].seconds == 0.5
        assert plan.triggers[2].count == 3

    def test_parse_rejects_malformed_field(self):
        with pytest.raises(ValueError, match="key=value"):
            FaultPlan.parse("kill:shard")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultTrigger("explode")

    def test_on_and_count_are_one_based(self):
        with pytest.raises(ValueError, match="1-based"):
            FaultTrigger("kill", on=0)

    def test_counted_firing_window(self):
        plan = FaultPlan([FaultTrigger("kill", on=2, count=2)])
        fired = [plan.on_dispatch(0, "e_block") is not None
                 for _ in range(5)]
        assert fired == [False, True, True, False, False]
        assert plan.fired["kill"] == 2

    def test_shard_and_phase_filters_gate_the_event_count(self):
        plan = FaultPlan([FaultTrigger("kill", shard=1, phase="e_block")])
        assert plan.on_dispatch(0, "e_block") is None  # wrong shard
        assert plan.on_dispatch(1, "accumulate") is None  # wrong phase
        assert plan.on_dispatch(1, "e_block") == ("kill",)

    def test_delay_carries_seconds(self):
        plan = FaultPlan([FaultTrigger("delay", seconds=0.25)])
        assert plan.on_dispatch(0, "e_block") == ("delay", 0.25)

    def test_commit_and_garble_hooks(self):
        plan = FaultPlan.parse("commit:on=2;garble")
        assert not plan.on_commit()
        assert plan.on_commit()
        assert plan.on_source_line()
        assert not plan.on_source_line()

    def test_reset_replays_the_script(self):
        plan = FaultPlan.parse("kill:on=1")
        assert plan.on_dispatch(0, "e_block") is not None
        assert plan.on_dispatch(0, "e_block") is None
        plan.reset()
        assert plan.fired["kill"] == 0
        assert plan.on_dispatch(0, "e_block") is not None

    def test_log_records_fired_events(self):
        plan = FaultPlan.parse("kill:shard=2")
        plan.on_dispatch(2, "accumulate")
        assert plan.log == [("kill", (2, "accumulate"))]


class TestBackoff:
    def test_deterministic_per_seed(self):
        a = [Backoff(seed=7).delay(i) for i in range(6)]
        b = [Backoff(seed=7).delay(i) for i in range(6)]
        assert a == b

    def test_capped_exponential_with_jitter_bounds(self):
        backoff = Backoff(base=0.1, cap=0.4, seed=0)
        for attempt in range(8):
            raw = min(0.4, 0.1 * 2.0 ** attempt)
            delay = backoff.delay(attempt)
            assert 0.5 * raw <= delay <= raw

    def test_zero_base_never_sleeps(self):
        assert Backoff(base=0.0, cap=0.0).sleep(5) == 0.0

    def test_negative_parameters_rejected(self):
        with pytest.raises(ValueError):
            Backoff(base=-0.1)


class TestArming:
    @pytest.fixture(autouse=True)
    def cold_plane(self, monkeypatch):
        monkeypatch.setattr(faults, "_PLAN", None)
        monkeypatch.setattr(faults, "_ENV_PARSED", False)
        monkeypatch.delenv("REPRO_FAULTS", raising=False)

    def test_cold_plane_is_free(self):
        assert faults.get_plan() is None

    def test_env_spec_parsed_lazily(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "commit:on=2")
        plan = faults.get_plan()
        assert plan is not None
        assert not plan.on_commit()
        assert plan.on_commit()

    def test_arm_and_disarm_override_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "commit")
        plan = FaultPlan.parse("garble")
        faults.arm(plan)
        assert faults.get_plan() is plan
        faults.disarm()
        assert faults.get_plan() is None


# -- FaultPolicy (pure unit) -------------------------------------------
class TestFaultPolicy:
    def test_defaults(self):
        policy = FaultPolicy()
        assert policy.deadline == 120.0
        assert policy.retries == 2
        assert policy.degrade is True

    @pytest.mark.parametrize("kwargs", [
        {"deadline": 0.0}, {"deadline": -1.0}, {"retries": -1},
        {"backoff_base": -0.1}, {"backoff_cap": -1.0},
    ])
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            FaultPolicy(**kwargs)

    def test_unbounded_deadline_is_explicit_none(self):
        assert FaultPolicy(deadline=None).deadline is None

    def test_policy_carries_fault_fields_into_the_plan(self, answers):
        plan = FaultPlan.parse("kill:on=99")
        fp = FaultPolicy(retries=1)
        resolved = ExecutionPolicy(n_shards=2, executor="serial",
                                   fault_policy=fp, faults=plan
                                   ).resolve(answers)
        assert resolved.fault_policy == fp
        assert resolved.faults is plan

    def test_policy_rejects_a_planless_faults_object(self):
        with pytest.raises(ValueError):
            ExecutionPolicy(faults=object())


# -- recovery on the live runtime --------------------------------------
class TestKillRecovery:
    def test_scripted_kill_recovers_bit_identical(self, answers,
                                                  reference):
        plan = FaultPlan.parse("kill:shard=1,on=2")
        result, events = runtime_fit(
            answers, plan=plan, policy=FaultPolicy(deadline=30.0))
        assert events["respawns"] >= 1
        assert events["retries"] >= 1
        assert plan.fired["kill"] == 1
        assert np.array_equal(reference.posterior, result.posterior)

    def test_external_sigkill_recovers_bit_identical(self, answers,
                                                     reference):
        """The non-scripted spelling: a real child process dies."""
        spec = MethodSpec.coerce("D&S", {})
        rt = ShardRuntime(n_shards=4, max_workers=2)
        try:
            lease = rt.lease(answers, spec,
                             fault_policy=FaultPolicy(deadline=30.0))
            with lease:
                pids = [pid for pool in rt._pools
                        for pid in (pool._processes or {})]
                assert pids, "lease sync must have spawned workers"
                os.kill(pids[-1], signal.SIGKILL)
                result = create(spec).fit(answers, shard_runner=lease)
            assert lease.fault_events["respawns"] >= 1
            assert np.array_equal(reference.posterior, result.posterior)
        finally:
            rt.close()

    def test_fit_stats_surface_the_recovery(self, answers, reference):
        plan = FaultPlan.parse("kill:shard=0,on=2")
        policy = ExecutionPolicy(
            n_shards=4, executor="process", persistent=False,
            max_workers=2, faults=plan,
            fault_policy=FaultPolicy(deadline=30.0))
        with ShardedInferenceEngine(policy) as engine:
            result = engine.fit(answers, "D&S")
        assert result.fit_stats.respawns >= 1
        assert result.fit_stats.retries >= 1
        assert "respawns" in result.fit_stats.summary()
        assert np.array_equal(reference.posterior, result.posterior)


class TestDeadline:
    def test_hung_phase_times_out_and_recovers(self, answers, reference):
        plan = FaultPlan.parse("delay:phase=e_block,seconds=20")
        result, events = runtime_fit(
            answers, plan=plan, policy=FaultPolicy(deadline=1.0))
        assert events["timeouts"] >= 1
        assert events["respawns"] >= 1
        assert np.array_equal(reference.posterior, result.posterior)


class TestDegradation:
    def test_exhausted_retries_degrade_to_serial(self, answers,
                                                 reference):
        plan = FaultPlan.parse("kill:shard=1,count=99")
        result, events = runtime_fit(
            answers, plan=plan,
            policy=FaultPolicy(deadline=30.0, retries=1))
        assert events["degraded"] >= 1
        # Deterministic phases: the degraded-serial execution reads the
        # same segment bytes, so even this path is bit-identical.
        assert np.array_equal(reference.posterior, result.posterior)

    def test_degraded_slot_is_sticky_for_the_lease(self, answers):
        plan = FaultPlan.parse("kill:shard=1,count=99")
        spec = MethodSpec.coerce("D&S", {})
        rt = ShardRuntime(n_shards=4, max_workers=2)
        try:
            lease = rt.lease(answers, spec,
                             fault_policy=FaultPolicy(deadline=30.0,
                                                      retries=0),
                             faults=plan)
            with lease:
                create(spec).fit(answers, shard_runner=lease)
            first = lease.fault_events["degraded"]
            # One respawn per degraded slot, then the slot stays
            # master-side: degraded phases keep accruing, kills don't.
            assert first >= 2
            assert lease.fault_events["respawns"] >= 1
            assert rt.degraded_phases == first
            # A fresh lease starts healthy again (no armed plan now).
            lease2 = rt.lease(answers, spec,
                              fault_policy=FaultPolicy(deadline=30.0))
            with lease2:
                create(spec).fit(answers, shard_runner=lease2)
            assert lease2.fault_events["degraded"] == 0
        finally:
            rt.close()

    def test_degrade_disabled_raises_worker_crash(self, answers):
        plan = FaultPlan.parse("kill:shard=1,count=99")
        with pytest.raises(WorkerCrashError, match="lost its workers"):
            runtime_fit(answers, plan=plan,
                        policy=FaultPolicy(deadline=30.0, retries=0,
                                           degrade=False))

    def test_degrade_disabled_raises_timeout_on_hangs(self, answers):
        plan = FaultPlan.parse("delay:phase=e_block,seconds=20,count=99")
        with pytest.raises(PhaseTimeoutError, match="timed out"):
            runtime_fit(answers, plan=plan,
                        policy=FaultPolicy(deadline=0.5, retries=0,
                                           degrade=False))

    def test_gibbs_degraded_parity(self, answers):
        """The sampling family: degraded BCC stays within 1e-6 (its
        shard phases are deterministic — every draw is master-side)."""
        ref, events = runtime_fit(answers, method="BCC")
        assert not any(events.values())
        plan = FaultPlan.parse("kill:shard=1,count=999")
        out, events = runtime_fit(
            answers, method="BCC", plan=plan,
            policy=FaultPolicy(deadline=30.0, retries=0))
        assert events["degraded"] >= 1
        assert np.abs(ref.posterior - out.posterior).max() <= 1e-6


class TestStatefulReplay:
    """KOS pins mutable message state (``ops.y``/``ops.x``) in its
    workers, so a respawn must replay the phase log — the configure
    replay alone would leave ``ops.y`` unseeded."""

    def test_kos_kill_mid_rounds_recovers_bit_identically(self, answers):
        ref, events = runtime_fit(answers, method="KOS")
        assert not any(events.values())
        plan = FaultPlan.parse("kill:shard=1,on=4")
        out, events = runtime_fit(
            answers, method="KOS", plan=plan,
            policy=FaultPolicy(deadline=30.0))
        assert plan.fired["kill"] == 1
        assert events["respawns"] >= 1
        assert np.array_equal(ref.posterior, out.posterior)

    def test_kos_degrades_bit_identically(self, answers):
        """Past the retry budget the master replays the same phase log
        onto its own serial ops, so even degraded KOS stays exact."""
        ref, _ = runtime_fit(answers, method="KOS")
        plan = FaultPlan.parse("kill:shard=1,count=999")
        out, events = runtime_fit(
            answers, method="KOS", plan=plan,
            policy=FaultPolicy(deadline=30.0, retries=0))
        assert events["degraded"] >= 1
        assert np.array_equal(ref.posterior, out.posterior)

    def test_stateless_specs_skip_the_phase_log(self, answers):
        spec = MethodSpec.coerce("D&S", {}).with_defaults(seed=0)
        rt = ShardRuntime(n_shards=4, max_workers=2)
        try:
            with rt.lease(answers, spec) as lease:
                create(spec).fit(answers, shard_runner=lease)
                assert rt._phase_log == {}
        finally:
            rt.close()
