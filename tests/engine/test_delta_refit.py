"""Engine-level delta refits: parity, bit-identity, sessions, runtime.

The contract under test:

* ``refit="delta"`` matches ``refit="full"`` — final posteriors within
  1e-6, labels agreeing — for **all five** sharded EM methods, on both
  the in-process and the persistent-process tiers;
* ``refit="full"`` (the default) takes literally the pre-delta code
  path and stays **bit-identical** to it;
* the in-process :class:`~repro.engine.runtime.SerialShardSession` and
  the worker-side spec retention extend warm state across refits
  instead of rebuilding it.
"""

import os

import numpy as np
import pytest

from repro.core.policy import ExecutionPolicy
from repro.core.registry import create
from repro.core.tasktypes import TaskType
from repro.engine import InferenceEngine
from repro.engine.runtime import SerialShardSession

N_SHARDS = 4


def make_batches(task_type=TaskType.DECISION_MAKING, n_tasks=150,
                 n_workers=12, base=1600, steps=3, growth=200, seed=0):
    """A base batch (task-creation order) plus growth batches skewed
    toward one task range, as ``(task, worker, value)`` records."""
    rng = np.random.default_rng(seed)
    categorical = task_type is not TaskType.NUMERIC
    truth = (rng.integers(0, 2, n_tasks) if categorical
             else rng.normal(0.0, 2.0, n_tasks))
    acc = rng.beta(6, 2, n_workers)
    batches = []
    tasks = np.sort(rng.integers(0, n_tasks, base), kind="stable")
    for step in range(steps + 1):
        if step:
            tasks = rng.integers(0, n_tasks // 3, growth)
        workers = rng.integers(0, n_workers, len(tasks))
        if categorical:
            correct = rng.random(len(tasks)) < acc[workers]
            values = np.where(correct, truth[tasks], 1 - truth[tasks])
        else:
            values = truth[tasks] + rng.normal(
                0.0, 0.3 + (1 - acc[workers]), len(tasks))
        batches.append(list(zip(tasks.tolist(), workers.tolist(),
                                values.tolist())))
    return batches


def stream_through(batches, task_type, method, refit, executor="serial",
                   tolerance=1e-7, **policy_kwargs):
    # Parity between the full and delta trajectories scales with the
    # convergence tolerance (both stop within it of the same fixed
    # point), so the parity tests run tight.
    policy = ExecutionPolicy(n_shards=N_SHARDS, executor=executor,
                             refit=refit, **policy_kwargs)
    with InferenceEngine(task_type, policy=policy, seed=0) as engine:
        results = []
        for batch in batches:
            engine.add_answers(batch)
            results.append(engine.infer(method, tolerance=tolerance,
                                        max_iter=500))
    return results


CATEGORICAL_METHODS = ["D&S", "LFC", "ZC", "GLAD"]

#: The non-EM families grown into the delta contract: master-driven
#: gradient rounds (minimax), variational blocks (VI) — all with exact
#: warm restarts — plus the message-passing and Gibbs families below.
ZOO_GRADIENT_METHODS = ["Minimax", "Minimax-Ord", "VI-MF", "VI-BP"]


class TestDeltaParity:
    @pytest.mark.parametrize("method", CATEGORICAL_METHODS)
    def test_categorical_parity(self, method):
        batches = make_batches()
        full = stream_through(batches, TaskType.DECISION_MAKING, method,
                              "full")
        delta = stream_through(batches, TaskType.DECISION_MAKING, method,
                               "delta")
        assert delta[-1].fit_stats.mode == "delta"
        assert np.abs(full[-1].posterior
                      - delta[-1].posterior).max() <= 1e-6
        agree = (full[-1].truths == delta[-1].truths).mean()
        assert agree >= 0.999
        quality_diff = np.abs(full[-1].worker_quality
                              - delta[-1].worker_quality).max()
        assert quality_diff < 1e-3

    def test_numeric_parity(self):
        batches = make_batches(task_type=TaskType.NUMERIC)
        full = stream_through(batches, TaskType.NUMERIC, "LFC_N", "full")
        delta = stream_through(batches, TaskType.NUMERIC, "LFC_N", "delta")
        assert delta[-1].fit_stats.mode == "delta"
        assert np.abs(full[-1].truths - delta[-1].truths).max() <= 1e-6

    def test_delta_primes_only_dirty_shards(self):
        batches = make_batches()
        delta = stream_through(batches, TaskType.DECISION_MAKING, "D&S",
                               "delta")
        stats = delta[-1].fit_stats
        # Growth is confined to the low task range: not every shard is
        # dirty, and the clean ones started frozen.
        assert 0 < stats.dirty_shards < stats.n_shards
        assert stats.frozen_shards[0] == stats.n_shards - stats.dirty_shards

    def test_process_tier_matches_serial_delta(self):
        batches = make_batches()
        serial = stream_through(batches, TaskType.DECISION_MAKING, "D&S",
                                "delta")
        process = stream_through(batches, TaskType.DECISION_MAKING, "D&S",
                                 "delta", executor="process",
                                 max_workers=2)
        assert process[-1].fit_stats.mode == "delta"
        assert np.abs(serial[-1].posterior
                      - process[-1].posterior).max() <= 1e-8

    def test_thread_tier_runs_delta(self):
        batches = make_batches()
        threaded = stream_through(batches, TaskType.DECISION_MAKING, "D&S",
                                  "delta", executor="thread",
                                  max_workers=2)
        assert threaded[-1].fit_stats.mode == "delta"


class TestDeltaZooParity:
    """Per-family parity gates for the non-EM delta contracts."""

    @pytest.mark.parametrize("method", ZOO_GRADIENT_METHODS)
    def test_gradient_and_variational_parity(self, method):
        batches = make_batches()
        full = stream_through(batches, TaskType.DECISION_MAKING, method,
                              "full")
        delta = stream_through(batches, TaskType.DECISION_MAKING, method,
                               "delta")
        assert delta[-1].fit_stats.mode == "delta"
        assert delta[-1].extras["warm_started"]
        assert not full[-1].extras["warm_started"]
        assert np.abs(full[-1].posterior
                      - delta[-1].posterior).max() <= 1e-6
        assert (full[-1].truths == delta[-1].truths).mean() >= 0.999

    def test_kos_message_restart_parity(self):
        # A well-separated fixture: KOS posteriors are sign decisions
        # (one-hot), so parity is meaningful only where no task sits on
        # a knife edge.
        batches = make_batches(seed=3, n_tasks=120, n_workers=20,
                               base=2400, growth=150)
        full = stream_through(batches, TaskType.DECISION_MAKING, "KOS",
                              "full")
        delta = stream_through(batches, TaskType.DECISION_MAKING, "KOS",
                               "delta")
        assert delta[-1].fit_stats.mode == "delta"
        assert delta[-1].extras["warm_started"]
        assert np.abs(full[-1].posterior
                      - delta[-1].posterior).max() <= 1e-6
        np.testing.assert_array_equal(full[-1].truths, delta[-1].truths)
        # Frozen message blocks skipped task rounds.
        assert (delta[-1].fit_stats.e_block_calls
                < full[-1].fit_stats.e_block_calls)

    @pytest.mark.parametrize("method", ["BCC", "CBCC"])
    def test_gibbs_chain_continuation(self, method):
        batches = make_batches()
        full = stream_through(batches, TaskType.DECISION_MAKING, method,
                              "full")
        delta = stream_through(batches, TaskType.DECISION_MAKING, method,
                               "delta")
        again = stream_through(batches, TaskType.DECISION_MAKING, method,
                               "delta")
        last = delta[-1]
        assert last.fit_stats.mode == "delta"
        assert last.extras["warm_started"]
        # The continued chain is the lifetime average: more retained
        # sweeps than any single full fit, at a fraction of the cost.
        assert last.n_iterations > full[-1].n_iterations
        assert last.fit_stats.iterations < full[-1].fit_stats.iterations
        # A sampler's delta gate is agreement + determinism, not float
        # parity: the continued trajectory is a different (equally
        # valid) draw from the same posterior.
        assert (full[-1].truths == last.truths).mean() >= 0.98
        for first, second in zip(delta, again):
            np.testing.assert_array_equal(first.posterior,
                                          second.posterior)
            np.testing.assert_array_equal(first.truths, second.truths)

    def test_process_tier_matches_serial_zoo_delta(self):
        batches = make_batches()
        serial = stream_through(batches, TaskType.DECISION_MAKING,
                                "Minimax", "delta")
        process = stream_through(batches, TaskType.DECISION_MAKING,
                                 "Minimax", "delta", executor="process",
                                 max_workers=2)
        assert process[-1].fit_stats.mode == "delta"
        assert np.abs(serial[-1].posterior
                      - process[-1].posterior).max() <= 1e-8


class TestDeltaCapabilityWarning:
    def _answers(self):
        from repro.core.answers import AnswerSet

        rng = np.random.default_rng(0)
        return AnswerSet(np.sort(rng.integers(0, 20, 200)),
                         rng.integers(0, 6, 200),
                         rng.integers(0, 2, 200),
                         TaskType.DECISION_MAKING)

    def test_full_only_method_warns_under_delta_policy(self):
        import warnings

        from repro.core.registry import capabilities

        assert not capabilities("MV").delta
        method = create("MV", seed=0)
        with pytest.warns(UserWarning, match="can only refit full"):
            method.fit(self._answers(),
                       policy=ExecutionPolicy(refit="delta"))

    def test_delta_capable_method_does_not_warn(self):
        import warnings

        from repro.core.registry import capabilities

        assert capabilities("KOS").delta
        method = create("KOS", seed=0,
                        policy=ExecutionPolicy(n_shards=2))
        with warnings.catch_warnings():
            warnings.simplefilter("error", UserWarning)
            method.fit(self._answers(),
                       policy=ExecutionPolicy(refit="delta"))

    def test_engine_infer_warns_for_full_only_method(self):
        import warnings

        answers = self._answers()
        records = list(zip(answers.tasks.tolist(),
                           answers.workers.tolist(),
                           answers.values.tolist()))
        with InferenceEngine(TaskType.DECISION_MAKING,
                             policy=ExecutionPolicy(refit="delta"),
                             seed=0) as engine:
            engine.add_answers(records)
            with pytest.warns(UserWarning, match="can only refit full"):
                engine.infer("MV")
            with warnings.catch_warnings():
                warnings.simplefilter("error", UserWarning)
                engine.infer("D&S", tolerance=1e-6)


class TestFullBitIdentity:
    def test_refit_full_is_bit_identical_to_default_policy(self):
        batches = make_batches()
        policy_default = ExecutionPolicy(n_shards=N_SHARDS,
                                         executor="serial")
        explicit = stream_through(batches, TaskType.DECISION_MAKING,
                                  "D&S", "full")
        with InferenceEngine(TaskType.DECISION_MAKING,
                             policy=policy_default, seed=0) as engine:
            for batch in batches:
                engine.add_answers(batch)
                default = engine.infer("D&S", tolerance=1e-7,
                                       max_iter=500)
        assert np.array_equal(explicit[-1].posterior, default.posterior)
        assert np.array_equal(explicit[-1].truths, default.truths)
        # The default mode never builds delta state.
        assert default.shard_state is None

    @pytest.mark.parametrize("method",
                             ["KOS", "Minimax", "VI-MF", "VI-BP", "BCC",
                              "CBCC"])
    def test_zoo_refit_full_is_bit_identical_to_default_policy(self,
                                                               method):
        """The new families ignore warm state without a true delta
        plan, so refit="full" streams take the historical cold path
        bit-for-bit."""
        batches = make_batches()
        policy_default = ExecutionPolicy(n_shards=N_SHARDS,
                                         executor="serial")
        explicit = stream_through(batches, TaskType.DECISION_MAKING,
                                  method, "full")
        with InferenceEngine(TaskType.DECISION_MAKING,
                             policy=policy_default, seed=0) as engine:
            for batch in batches:
                engine.add_answers(batch)
                default = engine.infer(method, tolerance=1e-7,
                                       max_iter=500)
        assert np.array_equal(explicit[-1].posterior, default.posterior)
        assert np.array_equal(explicit[-1].truths, default.truths)
        assert default.shard_state is None

    def test_refit_full_matches_hand_driven_warm_refits(self):
        batches = make_batches()
        full = stream_through(batches, TaskType.DECISION_MAKING, "D&S",
                              "full")
        # The pre-delta spelling: explicit warm_start chaining.
        policy = ExecutionPolicy(n_shards=N_SHARDS, executor="serial")
        with InferenceEngine(TaskType.DECISION_MAKING, policy=policy,
                             seed=0) as engine:
            previous = None
            for batch in batches:
                engine.add_answers(batch)
                snapshot = engine.stream.snapshot()
                instance = create("D&S", seed=0, tolerance=1e-7,
                                  max_iter=500, policy=policy)
                previous = instance.fit(snapshot, warm_start=previous)
        assert np.array_equal(full[-1].posterior, previous.posterior)
        assert np.array_equal(full[-1].truths, previous.truths)


class TestDeltaFallbacks:
    def test_replacement_falls_back_to_collecting_full(self):
        # Unique (task, worker) pairs so only the deliberate overwrite
        # replaces in place.
        rng = np.random.default_rng(0)
        n_tasks, n_workers = 40, 30
        pairs = [(t, w) for t in range(n_tasks) for w in range(n_workers)]
        rng.shuffle(pairs)
        records = [(t, w, int(rng.integers(0, 2))) for t, w in pairs]
        policy = ExecutionPolicy(n_shards=N_SHARDS, executor="serial",
                                 refit="delta")
        with InferenceEngine(TaskType.DECISION_MAKING, policy=policy,
                             seed=0, on_duplicate="replace") as engine:
            engine.add_answers(records[:800])
            engine.infer("D&S")
            # Replace an existing answer in place: the warm contract is
            # broken, so the next refit must be cold+full (and still
            # collect state for the following one).
            task, worker, value = records[0]
            engine.add_answer(task, worker, 1 - value)
            result = engine.infer("D&S")
            assert result.fit_stats.mode == "full"
            assert result.shard_state is not None
            engine.add_answers(records[800:900])
            assert engine.infer("D&S").fit_stats.mode == "delta"

    def test_doubled_stream_replaces_and_refits_full(self):
        batches = make_batches(base=400, growth=600, steps=2)
        results = stream_through(batches, TaskType.DECISION_MAKING, "D&S",
                                 "delta")
        # By the time the stream has more than doubled past the placed
        # base, the engine re-places (full refit) instead of extending.
        modes = [r.fit_stats.mode for r in results]
        assert modes[0] == "full"
        assert "full" in modes[1:]

    def test_label_growth_falls_back_to_full(self):
        rng = np.random.default_rng(0)
        base = [(f"t{rng.integers(20)}", f"w{rng.integers(5)}",
                 str(rng.integers(2))) for _ in range(300)]
        policy = ExecutionPolicy(n_shards=2, executor="serial",
                                 refit="delta")
        with InferenceEngine(TaskType.SINGLE_CHOICE, policy=policy,
                             seed=0) as engine:
            engine.add_answers(base)
            engine.infer("D&S")
            engine.add_answers([("t1", "w9", "2")])  # a brand-new label
            result = engine.infer("D&S")
            assert result.fit_stats.mode == "full"


class TestSerialShardSession:
    def _answers(self, n, seed=0, n_tasks=60, n_workers=8):
        rng = np.random.default_rng(seed)
        from repro.core.answers import AnswerSet

        tasks = np.sort(rng.integers(0, n_tasks, n), kind="stable")
        workers = rng.integers(0, n_workers, n)
        values = rng.integers(0, 2, n)
        return tasks, workers, values, n_tasks, n_workers

    def _answer_set(self, n_total, prefix=None):
        from repro.core.answers import AnswerSet

        tasks, workers, values, n_tasks, n_workers = self._answers(n_total)
        n = prefix or n_total
        return AnswerSet(tasks[:n], workers[:n], values[:n],
                         TaskType.DECISION_MAKING, n_tasks=n_tasks,
                         n_workers=n_workers)

    def test_extend_reuses_layout_and_specs(self):
        base = self._answer_set(800, prefix=600)
        grown = self._answer_set(800)
        session = SerialShardSession(3)
        instance = create("D&S", seed=0)
        r1 = session.runner(base, instance, stream_key="s")
        assert session.last_placement == "place"
        r2 = session.runner(grown, instance, stream_key="s")
        assert session.last_placement == "extend"
        assert session.spec_reuses == 1
        assert r2.spec is r1.spec
        # Same cuts, larger shards.
        assert r2.task_ranges == r1.task_ranges
        assert sum(len(s.tasks) for s in r2.shards) == 800

    def test_extended_shards_match_a_fresh_sort(self):
        from repro.core.shards import ShardedAnswerSet

        base = self._answer_set(800, prefix=600)
        grown = self._answer_set(800)
        session = SerialShardSession(3)
        instance = create("D&S", seed=0)
        session.runner(base, instance, stream_key="s")
        runner = session.runner(grown, instance, stream_key="s")
        fresh = ShardedAnswerSet(grown, 3,
                                 task_cuts=[r[0] for r in
                                            runner.task_ranges]
                                 + [grown.n_tasks])
        for warm_shard, fresh_shard in zip(runner.shards, fresh.shards):
            assert np.array_equal(warm_shard.tasks, fresh_shard.tasks)
            assert np.array_equal(warm_shard.workers, fresh_shard.workers)
            assert np.array_equal(warm_shard.values, fresh_shard.values)

    def test_key_change_replaces(self):
        base = self._answer_set(800, prefix=600)
        grown = self._answer_set(800)
        session = SerialShardSession(3)
        instance = create("D&S", seed=0)
        session.runner(base, instance, stream_key="a")
        session.runner(grown, instance, stream_key="b")
        assert session.last_placement == "place"

    def test_append_only_tripwire(self):
        session = SerialShardSession(2)
        instance = create("D&S", seed=0)
        base = self._answer_set(800, prefix=600)
        session.runner(base, instance, stream_key="s")
        from repro.core.answers import AnswerSet

        rng = np.random.default_rng(9)
        other = AnswerSet(
            np.sort(rng.integers(0, 60, 800)), rng.integers(0, 8, 800),
            rng.integers(0, 2, 800), TaskType.DECISION_MAKING,
            n_tasks=60, n_workers=8)
        with pytest.raises(RuntimeError, match="append-only"):
            session.runner(other, instance, stream_key="s")


class TestWorkerSpecRetention:
    @pytest.mark.skipif(
        bool(os.environ.get("REPRO_FAULTS")),
        reason="a canned fault plan may respawn workers, resetting "
               "their retained specs")
    def test_process_workers_retain_specs_across_refits(self):
        from repro.engine.runtime import ShardRuntime, _rt_probe

        batches = make_batches(steps=2)
        policy = ExecutionPolicy(n_shards=2, executor="process",
                                 refit="delta", max_workers=1)
        with InferenceEngine(TaskType.DECISION_MAKING, policy=policy,
                             seed=0) as engine:
            for batch in batches:
                engine.add_answers(batch)
                engine.infer("D&S")
            runtime = engine._runtime
            probes = [pool.submit(_rt_probe).result()
                      for pool in runtime._pools]
        # Three fits of the same method over a fixed universe: at least
        # one refit reused the worker-side spec (the first extension
        # may reallocate segments, which re-attaches and rebuilds).
        assert sum(p["spec_reuses"] for p in probes) >= 1
