"""StreamingAnswerSet: append-only buffer + snapshot edge cases."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.answers import AnswerSet
from repro.core.tasktypes import TaskType
from repro.engine import StreamingAnswerSet
from repro.exceptions import InvalidAnswerSetError


def _assert_same_answer_set(a: AnswerSet, b: AnswerSet) -> None:
    assert a.task_type == b.task_type
    assert a.n_choices == b.n_choices
    assert a.n_tasks == b.n_tasks
    assert a.n_workers == b.n_workers
    np.testing.assert_array_equal(a.tasks, b.tasks)
    np.testing.assert_array_equal(a.workers, b.workers)
    np.testing.assert_array_equal(a.values, b.values)
    assert a.task_labels == b.task_labels
    assert a.worker_labels == b.worker_labels


class TestRoundTrip:
    def test_matches_from_records_with_fixed_label_order(self):
        records = [
            ("t1", "w1", "cat"), ("t2", "w1", "dog"), ("t1", "w2", "cat"),
            ("t3", "w3", "bird"), ("t2", "w2", "cat"), ("t3", "w1", "dog"),
        ]
        order = ["bird", "cat", "dog"]
        stream = StreamingAnswerSet(TaskType.SINGLE_CHOICE, label_order=order)
        assert stream.add_answers(records) == len(records)
        reference = AnswerSet.from_records(records, TaskType.SINGLE_CHOICE,
                                           label_order=order)
        _assert_same_answer_set(stream.snapshot(), reference)

    def test_matches_from_records_decision_making(self):
        records = [("a", "x", 1), ("b", "x", 0), ("a", "y", 1), ("c", "z", 0)]
        stream = StreamingAnswerSet(TaskType.DECISION_MAKING,
                                    label_order=[0, 1])
        stream.add_answers(records)
        reference = AnswerSet.from_records(records, TaskType.DECISION_MAKING,
                                           label_order=[0, 1])
        _assert_same_answer_set(stream.snapshot(), reference)

    def test_from_answer_set_round_trip(self, paper_example):
        stream = StreamingAnswerSet.from_answer_set(paper_example)
        snap = stream.snapshot()
        assert snap.n_tasks == paper_example.n_tasks
        assert snap.n_workers == paper_example.n_workers
        np.testing.assert_array_equal(snap.values, paper_example.values)
        np.testing.assert_array_equal(snap.tasks, paper_example.tasks)

    @given(st.lists(
        st.tuples(st.integers(0, 8), st.integers(0, 4), st.integers(0, 2)),
        min_size=1, max_size=60,
    ))
    @settings(max_examples=60, deadline=None)
    def test_property_round_trip(self, triples):
        """Any record sequence snapshots identically to from_records."""
        order = [0, 1, 2]
        stream = StreamingAnswerSet(TaskType.SINGLE_CHOICE, label_order=order)
        stream.add_answers(triples)
        reference = AnswerSet.from_records(triples, TaskType.SINGLE_CHOICE,
                                           label_order=order)
        _assert_same_answer_set(stream.snapshot(), reference)


class TestAppendOnlyGrowth:
    def test_interleaved_new_tasks_and_workers_keep_indices_stable(self):
        stream = StreamingAnswerSet(TaskType.DECISION_MAKING,
                                    label_order=[0, 1])
        stream.add_answers([("t1", "w1", 1), ("t2", "w1", 0)])
        first = stream.snapshot()
        # New worker on an old task, then a new task by an old worker,
        # then a brand-new (task, worker) pair.
        stream.add_answers([("t1", "w2", 1), ("t3", "w1", 1),
                            ("t4", "w3", 0)])
        second = stream.snapshot()

        assert second.n_tasks == 4
        assert second.n_workers == 3
        # The earlier snapshot's flat arrays are a strict prefix.
        np.testing.assert_array_equal(second.tasks[: len(first)], first.tasks)
        np.testing.assert_array_equal(second.workers[: len(first)],
                                      first.workers)
        np.testing.assert_array_equal(second.values[: len(first)],
                                      first.values)
        # ...and the label tables extend, never reorder.
        assert second.task_labels[: first.n_tasks] == first.task_labels
        assert second.worker_labels[: first.n_workers] == first.worker_labels

    def test_snapshots_are_immutable_and_independent(self):
        stream = StreamingAnswerSet(TaskType.DECISION_MAKING,
                                    label_order=[0, 1])
        stream.add_answers([("t1", "w1", 1)])
        first = stream.snapshot()
        stream.add_answers([("t2", "w2", 0)])
        assert first.n_answers == 1  # unchanged by later appends
        with pytest.raises((ValueError, RuntimeError)):
            first.values[0] = 0

    def test_snapshot_cached_until_append(self):
        stream = StreamingAnswerSet(TaskType.DECISION_MAKING,
                                    label_order=[0, 1])
        stream.add_answers([("t1", "w1", 1)])
        assert stream.snapshot() is stream.snapshot()
        before = stream.snapshot()
        stream.add_answer("t1", "w2", 0)
        assert stream.snapshot() is not before


class TestDuplicates:
    def test_keep_policy_keeps_both(self):
        stream = StreamingAnswerSet(TaskType.DECISION_MAKING,
                                    label_order=[0, 1])
        stream.add_answers([("t1", "w1", 1), ("t1", "w1", 0)])
        snap = stream.snapshot()
        assert snap.n_answers == 2
        np.testing.assert_array_equal(snap.values, [1, 0])

    def test_replace_policy_overwrites_in_place(self):
        stream = StreamingAnswerSet(TaskType.DECISION_MAKING,
                                    label_order=[0, 1], on_duplicate="replace")
        stream.add_answers([("t1", "w1", 1), ("t2", "w1", 0),
                            ("t1", "w1", 0)])
        snap = stream.snapshot()
        assert snap.n_answers == 2
        np.testing.assert_array_equal(snap.values, [0, 0])

    def test_replace_after_snapshot_invalidates_cached_snapshot(self):
        # Regression: a cached snapshot must never serve a value that an
        # in-place replacement has since overwritten.
        stream = StreamingAnswerSet(TaskType.DECISION_MAKING,
                                    label_order=[0, 1],
                                    on_duplicate="replace")
        stream.add_answers([("t1", "w1", 1), ("t1", "w2", 0)])
        before = stream.snapshot()
        assert stream.snapshot() is before  # cached while unchanged
        stream.add_answer("t1", "w1", 0)    # in-place replacement
        after = stream.snapshot()
        assert after is not before
        np.testing.assert_array_equal(before.values, [1, 0])  # immutable
        np.testing.assert_array_equal(after.values, [0, 0])

    def test_replace_after_snapshot_forces_engine_cold_refit(self):
        from repro.engine import InferenceEngine

        engine = InferenceEngine(TaskType.DECISION_MAKING,
                                 label_order=[0, 1],
                                 on_duplicate="replace", seed=0)
        engine.add_answers([("t1", "w1", 1), ("t1", "w2", 1),
                            ("t2", "w1", 0), ("t2", "w2", 0)])
        assert engine.current_truth("D&S")["t1"] == 1
        # Contradict t1 in place: the replacement invalidates both the
        # snapshot cache and the warm-start contract.
        engine.add_answers([("t1", "w1", 0), ("t1", "w2", 0)])
        truth = engine.current_truth("D&S")
        assert truth["t1"] == 0
        assert engine.last_fit_was_warm("D&S") is False

    def test_replace_bumps_version(self):
        stream = StreamingAnswerSet(TaskType.DECISION_MAKING,
                                    label_order=[0, 1], on_duplicate="replace")
        stream.add_answer("t1", "w1", 1)
        version = stream.version
        stream.add_answer("t1", "w1", 0)
        assert stream.version > version

    def test_error_policy_raises(self):
        stream = StreamingAnswerSet(TaskType.DECISION_MAKING,
                                    label_order=[0, 1], on_duplicate="error")
        stream.add_answer("t1", "w1", 1)
        with pytest.raises(InvalidAnswerSetError, match="duplicate"):
            stream.add_answer("t1", "w1", 0)

    def test_rejected_duplicate_does_not_leak_new_label(self):
        """A duplicate rejection must also roll back the label its value
        would have registered — otherwise n_choices silently grows."""
        stream = StreamingAnswerSet(TaskType.SINGLE_CHOICE,
                                    on_duplicate="error")
        stream.add_answers([("t1", "w1", "a"), ("t2", "w1", "b"),
                            ("t3", "w2", "c")])
        with pytest.raises(InvalidAnswerSetError, match="duplicate"):
            stream.add_answer("t1", "w1", "d")
        assert stream.labels == ["a", "b", "c"]
        assert stream.n_choices == 3

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="on_duplicate"):
            StreamingAnswerSet(TaskType.DECISION_MAKING, on_duplicate="merge")

    def test_batch_rejection_rolls_back_everything(self):
        """add_answers is all-or-nothing: a bad record mid-batch leaves
        no trace of the earlier records in the same batch."""
        stream = StreamingAnswerSet(TaskType.SINGLE_CHOICE,
                                    label_order=["a", "b"])
        stream.add_answers([("t1", "w1", "a")])
        version = stream.version
        with pytest.raises(InvalidAnswerSetError):
            stream.add_answers([("t2", "w2", "b"), ("t3", "w3", "BAD"),
                                ("t4", "w4", "a")])
        assert stream.n_answers == 1
        assert stream.n_tasks == 1
        assert stream.n_workers == 1
        assert stream.version == version
        snap = stream.snapshot()
        assert snap.task_labels == ["t1"]

    def test_batch_rollback_restores_replaced_values(self):
        stream = StreamingAnswerSet(TaskType.SINGLE_CHOICE,
                                    label_order=["a", "b"],
                                    on_duplicate="replace")
        stream.add_answers([("t1", "w1", "a"), ("t2", "w1", "b")])
        with pytest.raises(InvalidAnswerSetError):
            # Replaces (t1, w1) in place, then an unknown label aborts
            # the batch — the overwrite must be undone too.
            stream.add_answers([("t1", "w1", "b"), ("t3", "w2", "c")])
        assert stream.replacements == 0
        assert stream.n_answers == 2
        np.testing.assert_array_equal(stream.snapshot().values, [0, 1])

    def test_replacements_counter_tracks_overwrites(self):
        stream = StreamingAnswerSet(TaskType.DECISION_MAKING,
                                    label_order=[0, 1], on_duplicate="replace")
        stream.add_answers([("t1", "w1", 1), ("t2", "w1", 0)])
        assert stream.replacements == 0
        stream.add_answer("t1", "w1", 0)
        assert stream.replacements == 1
        stream.add_answer("t3", "w2", 1)  # plain append: no bump
        assert stream.replacements == 1

    def test_batch_rollback_pins_replacement_counter(self):
        """A failed batch that overwrote in place before dying must
        restore ``replacements`` to its pre-batch value exactly.

        The engine's warm gate and the durable log's replay check both
        key on this counter; a drifted counter after rollback would
        poison every later warm fit (or fail recovery verification)."""
        stream = StreamingAnswerSet(TaskType.SINGLE_CHOICE,
                                    label_order=["a", "b"],
                                    on_duplicate="replace")
        stream.add_answers([("t1", "w1", "a"), ("t2", "w1", "b")])
        stream.add_answer("t1", "w1", "b")  # acknowledged overwrite
        assert stream.replacements == 1
        before = stream.snapshot()
        version = stream.version
        with pytest.raises(InvalidAnswerSetError):
            # Two more overwrites land mid-batch, then an unknown label
            # aborts: neither landed overwrite may tick the counter.
            stream.add_answers([("t1", "w1", "a"), ("t2", "w1", "a"),
                                ("t3", "w9", "NOPE")])
        assert stream.replacements == 1
        assert stream.version == version
        _assert_same_answer_set(stream.snapshot(), before)


class _RecordingLog:
    """An ``append_batch`` duck type that remembers every commit."""

    def __init__(self, fail: bool = False):
        self.batches: list[dict] = []
        self.fail = fail

    def append_batch(self, records, outcomes, *, version,
                     replacements=None):
        if self.fail:
            raise OSError("disk full")
        self.batches.append({
            "records": list(records), "outcomes": list(outcomes),
            "version": version, "replacements": replacements,
        })


class TestWriteThrough:
    def test_each_batch_commits_once_with_outcomes(self):
        stream = StreamingAnswerSet(TaskType.DECISION_MAKING,
                                    label_order=[0, 1],
                                    on_duplicate="replace")
        log = _RecordingLog()
        stream.attach_log(log)
        stream.add_answers([("t1", "w1", 1), ("t2", "w1", 0)])
        stream.add_answers([("t1", "w1", 0), ("t3", "w2", 1)])
        assert len(log.batches) == 2
        first, second = log.batches
        assert first["records"] == [("t1", "w1", 1), ("t2", "w1", 0)]
        assert first["outcomes"] == [0, 0]
        assert first["version"] == 2
        assert second["outcomes"] == [1, 0]  # the in-place replacement
        assert second["version"] == stream.version
        assert second["replacements"] == 1

    def test_failed_commit_rolls_back_memory(self):
        """A batch whose log write fails is invisible in memory too —
        acknowledgement is transactional across both."""
        stream = StreamingAnswerSet(TaskType.DECISION_MAKING,
                                    label_order=[0, 1])
        stream.add_answers([("t1", "w1", 1)])
        before = stream.snapshot()
        version = stream.version
        stream.attach_log(_RecordingLog(fail=True))
        with pytest.raises(OSError, match="disk full"):
            stream.add_answers([("t2", "w2", 0), ("t3", "w1", 1)])
        assert stream.version == version
        assert stream.n_answers == 1
        _assert_same_answer_set(stream.snapshot(), before)

    def test_detach_stops_writing(self):
        stream = StreamingAnswerSet(TaskType.DECISION_MAKING,
                                    label_order=[0, 1])
        log = _RecordingLog()
        stream.attach_log(log)
        stream.add_answers([("t1", "w1", 1)])
        stream.attach_log(None)
        stream.add_answers([("t2", "w1", 0)])
        assert len(log.batches) == 1

    def test_rejected_batch_never_reaches_the_log(self):
        stream = StreamingAnswerSet(TaskType.SINGLE_CHOICE,
                                    label_order=["a", "b"])
        log = _RecordingLog()
        stream.attach_log(log)
        with pytest.raises(InvalidAnswerSetError):
            stream.add_answers([("t1", "w1", "a"), ("t2", "w1", "BAD")])
        assert log.batches == []


class TestEdgeCases:
    def test_empty_snapshot(self):
        stream = StreamingAnswerSet(TaskType.DECISION_MAKING)
        snap = stream.snapshot()
        assert snap.n_answers == 0
        assert snap.n_tasks == 0
        assert snap.n_workers == 0
        assert snap.n_choices == 2

    def test_empty_numeric_snapshot(self):
        snap = StreamingAnswerSet(TaskType.NUMERIC).snapshot()
        assert snap.n_answers == 0
        assert snap.task_type is TaskType.NUMERIC

    def test_dynamic_labels_discovered_in_first_appearance_order(self):
        stream = StreamingAnswerSet(TaskType.SINGLE_CHOICE)
        stream.add_answers([("t1", "w1", "dog"), ("t2", "w1", "cat")])
        assert stream.labels == ["dog", "cat"]
        np.testing.assert_array_equal(stream.snapshot().values, [0, 1])
        assert stream.decode_value(1) == "cat"

    def test_fixed_label_order_rejects_unknown_label(self):
        stream = StreamingAnswerSet(TaskType.SINGLE_CHOICE,
                                    label_order=["a", "b", "c"])
        with pytest.raises(InvalidAnswerSetError, match="label"):
            stream.add_answer("t1", "w1", "d")

    def test_fixed_n_choices_overflow_rejected(self):
        stream = StreamingAnswerSet(TaskType.SINGLE_CHOICE, n_choices=2)
        stream.add_answers([("t1", "w1", "a"), ("t1", "w2", "b")])
        with pytest.raises(InvalidAnswerSetError, match="n_choices"):
            stream.add_answer("t1", "w3", "c")

    def test_oversized_label_order_rejected_at_construction(self):
        """A label_order wider than the fixed choice space must fail up
        front, not poison later snapshots."""
        with pytest.raises(InvalidAnswerSetError, match="n_choices"):
            StreamingAnswerSet(TaskType.DECISION_MAKING,
                               label_order=["a", "b", "c"])
        with pytest.raises(InvalidAnswerSetError, match="n_choices"):
            StreamingAnswerSet(TaskType.SINGLE_CHOICE, n_choices=2,
                               label_order=["a", "b", "c"])

    def test_decision_making_third_label_rejected_at_ingestion(self):
        """A 3rd distinct label must fail on add, not poison the
        append-only stream so every later snapshot raises."""
        stream = StreamingAnswerSet(TaskType.DECISION_MAKING)
        stream.add_answers([("t1", "w1", "yes"), ("t1", "w2", "no")])
        with pytest.raises(InvalidAnswerSetError, match="n_choices"):
            stream.add_answer("t2", "w1", "maybe")
        # The stream stays healthy after the rejected add.
        assert stream.snapshot().n_answers == 2
        stream = StreamingAnswerSet(TaskType.NUMERIC)
        with pytest.raises(InvalidAnswerSetError, match="finite"):
            stream.add_answer("t1", "w1", float("nan"))

    def test_label_order_on_numeric_rejected(self):
        with pytest.raises(InvalidAnswerSetError):
            StreamingAnswerSet(TaskType.NUMERIC, label_order=[0, 1])

    def test_numeric_stream_snapshot(self):
        stream = StreamingAnswerSet(TaskType.NUMERIC)
        stream.add_answers([("t1", "w1", 2.5), ("t1", "w2", "3.5")])
        snap = stream.snapshot()
        assert snap.values.dtype == np.float64
        np.testing.assert_allclose(snap.values, [2.5, 3.5])
