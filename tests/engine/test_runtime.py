"""Persistent shard runtime: reuse, incremental extend, eviction, leaks.

Covers the PR-3 contracts:

* same-version reuse is bit-identical to a fresh per-fit runner;
* a grown stream extends the placed segments (not a rebuild) and the
  result matches the unsharded fit to 1e-10;
* eviction/close tears everything down exactly once;
* a mid-EM exception leaves no live ``/dev/shm`` segments or child
  processes (the historical leak);
* worker processes detach their shared-memory handles at shutdown
  without resource-tracker warnings.
"""

import multiprocessing
import subprocess
import sys
from multiprocessing import shared_memory

import numpy as np
import pytest

from repro.core.answers import AnswerSet
from repro.core.policy import ExecutionPolicy
from repro.core.registry import create
from repro.core.tasktypes import TaskType
from repro.engine.engine import InferenceEngine
from repro.engine.runtime import RuntimeRegistry, ShardRuntime
from repro.engine.sharded import ProcessShardRunner, ShardedInferenceEngine


def build_answers(seed=0, n_tasks=60, n_workers=8, n_answers=400):
    rng = np.random.default_rng(seed)
    truth = rng.integers(0, 2, n_tasks)
    acc = rng.uniform(0.55, 0.95, n_workers)
    tasks = rng.integers(0, n_tasks, n_answers)
    workers = rng.integers(0, n_workers, n_answers)
    correct = rng.random(n_answers) < acc[workers]
    values = np.where(correct, truth[tasks], 1 - truth[tasks])
    return AnswerSet(tasks, workers, values, TaskType.DECISION_MAKING,
                     n_tasks=n_tasks, n_workers=n_workers)


def grow_answers(answers, extra, n_tasks=None, seed=99):
    """A strictly larger answer set with ``answers`` as its prefix."""
    rng = np.random.default_rng(seed)
    n_tasks = n_tasks or answers.n_tasks
    tasks = np.concatenate([answers.tasks,
                            rng.integers(0, n_tasks, extra)])
    workers = np.concatenate([answers.workers,
                              rng.integers(0, answers.n_workers, extra)])
    values = np.concatenate([answers.values, rng.integers(0, 2, extra)])
    return AnswerSet(tasks, workers, values, TaskType.DECISION_MAKING,
                     n_tasks=n_tasks, n_workers=answers.n_workers)


def assert_unlinked(names):
    for name in names:
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)


class TestLeaseReuse:
    def test_method_sweep_spawns_once_and_reuses_segments(self):
        answers = build_answers()
        with ShardRuntime(n_shards=3, max_workers=2) as rt:
            for method in ("D&S", "ZC", "LFC"):
                with rt.lease(answers, method, {"seed": 0}) as runner:
                    create(method, seed=0).fit(answers, shard_runner=runner)
            assert rt.pool_spawns == 1
            assert rt.placements == 1
            assert rt.reuses == 2

    def test_same_version_reuse_bit_identical_to_fresh_runner(self):
        answers = build_answers(seed=3)
        with ProcessShardRunner(answers, "D&S", {"seed": 0},
                                n_shards=3, max_workers=2) as runner:
            fresh = create("D&S", seed=0).fit(answers, shard_runner=runner)
        with ShardRuntime(n_shards=3, max_workers=2) as rt:
            # Warm the runtime on another fit first, then reuse.
            with rt.lease(answers, "ZC", {"seed": 0}) as runner:
                create("ZC", seed=0).fit(answers, shard_runner=runner)
            with rt.lease(answers, "D&S", {"seed": 0}) as runner:
                reused = create("D&S", seed=0).fit(answers,
                                                   shard_runner=runner)
            assert rt.last_placement == "reuse"
        assert np.array_equal(fresh.posterior, reused.posterior)
        assert np.array_equal(fresh.worker_quality, reused.worker_quality)

    def test_lease_rejects_methods_without_sharding(self):
        answers = build_answers()
        with ShardRuntime(n_shards=2, max_workers=1) as rt:
            with pytest.raises(ValueError, match="sharded"):
                rt.lease(answers, "MV")

    def test_closed_runtime_refuses_leases(self):
        rt = ShardRuntime(n_shards=2)
        rt.close()
        with pytest.raises(RuntimeError, match="closed"):
            rt.lease(build_answers(), "D&S")


class TestIncrementalExtend:
    def test_growth_extends_instead_of_rebuilding(self):
        answers = build_answers()
        grown = grow_answers(answers, 80, n_tasks=70)
        with ShardRuntime(n_shards=4, max_workers=2) as rt:
            with rt.lease(answers, "D&S", {"seed": 0},
                          stream_key="s") as runner:
                create("D&S", seed=0).fit(answers, shard_runner=runner)
            names_before = rt.segment_names()
            with rt.lease(grown, "D&S", {"seed": 0},
                          stream_key="s") as runner:
                result = create("D&S", seed=0).fit(grown,
                                                   shard_runner=runner)
            assert rt.last_placement == "extend"
            assert rt.placements == 1
        # Matches the unsharded fit to far better than 1e-10.
        reference = create("D&S", seed=0).fit(grown)
        assert np.abs(result.posterior
                      - reference.posterior).max() < 1e-10
        assert names_before  # sanity: segments existed before growth

    def test_extend_keeps_matching_across_methods_and_growths(self):
        answers = build_answers(seed=5)
        with ShardRuntime(n_shards=4, max_workers=2) as rt:
            current = answers
            for step, extra in enumerate((40, 60)):
                current = grow_answers(current, extra, seed=step)
                for method in ("ZC", "GLAD"):
                    kwargs = {"seed": 0, "max_iter": 8}
                    with rt.lease(current, method, kwargs,
                                  stream_key="s") as runner:
                        got = create(method, **kwargs).fit(
                            current, shard_runner=runner)
                    ref = create(method, **kwargs).fit(current)
                    assert np.abs(got.posterior
                                  - ref.posterior).max() < 1e-10
            # First growth step is the initial placement; the second
            # extends it.  Methods sweeping in between are pure reuses.
            assert rt.placements == 1
            assert rt.extends == 1
            assert rt.reuses == 2
            assert rt.pool_spawns == 1

    def test_capacity_growth_reallocates_and_still_matches(self):
        answers = build_answers(n_answers=100)
        # 90% growth exceeds the initially placed capacity but stays
        # under the 2x re-place threshold, forcing the reallocate +
        # re-attach extend path.
        grown = grow_answers(answers, 90)
        with ShardRuntime(n_shards=3, max_workers=2) as rt:
            with rt.lease(answers, "D&S", {"seed": 0},
                          stream_key="s") as runner:
                create("D&S", seed=0).fit(answers, shard_runner=runner)
            old_names = set(rt.segment_names())
            with rt.lease(grown, "D&S", {"seed": 0},
                          stream_key="s") as runner:
                result = create("D&S", seed=0).fit(grown,
                                                   shard_runner=runner)
            assert rt.last_placement == "extend"
            assert set(rt.segment_names()) != old_names
        reference = create("D&S", seed=0).fit(grown)
        assert np.abs(result.posterior
                      - reference.posterior).max() < 1e-10
        assert_unlinked(old_names)

    def test_doubled_stream_replaces_to_rebalance(self):
        answers = build_answers(n_answers=100)
        grown = grow_answers(answers, 150)  # > 2x since last sort
        with ShardRuntime(n_shards=3, max_workers=2) as rt:
            with rt.lease(answers, "D&S", {"seed": 0},
                          stream_key="s") as runner:
                create("D&S", seed=0).fit(answers, shard_runner=runner)
            with rt.lease(grown, "D&S", {"seed": 0},
                          stream_key="s") as runner:
                create("D&S", seed=0).fit(grown, shard_runner=runner)
            assert rt.last_placement == "place"
            assert rt.pool_spawns == 1  # pools survive the re-place

    def test_append_only_tripwire_rejects_mutated_prefix(self):
        answers = build_answers()
        tasks = np.concatenate([answers.tasks,
                                np.zeros(10, dtype=np.int64)])
        # Contradict the placed prefix: change its first task index.
        tasks[0] = (answers.tasks[0] + 1) % answers.n_tasks
        mutated = AnswerSet(
            tasks,
            np.concatenate([answers.workers, np.zeros(10, dtype=np.int64)]),
            np.concatenate([answers.values, np.zeros(10, dtype=np.int64)]),
            TaskType.DECISION_MAKING, n_tasks=answers.n_tasks,
            n_workers=answers.n_workers)
        rt = ShardRuntime(n_shards=3, max_workers=1)
        try:
            with rt.lease(answers, "D&S", {"seed": 0},
                          stream_key="s") as runner:
                create("D&S", seed=0).fit(answers, shard_runner=runner)
            with pytest.raises(RuntimeError, match="append-only"):
                rt.lease(mutated, "D&S", {"seed": 0}, stream_key="s")
        finally:
            rt.close()


class TestEvictionAndClose:
    def test_eviction_closes_everything_exactly_once(self, monkeypatch):
        registry = RuntimeRegistry(idle_ttl=0.0)
        rt = registry.acquire(2, 1)
        answers = build_answers()
        with rt.lease(answers, "ZC", {"seed": 0}) as runner:
            create("ZC", seed=0).fit(answers, shard_runner=runner)
        names = rt.segment_names()
        teardowns = []
        original = ShardRuntime._teardown
        monkeypatch.setattr(
            ShardRuntime, "_teardown",
            lambda self: (teardowns.append(1), original(self))[1])
        assert registry.evict_idle() == 1
        assert rt.closed
        rt.close()   # further closes are no-ops
        rt.close()
        assert teardowns == [1]
        assert_unlinked(names)
        assert multiprocessing.active_children() == []
        # The registry respawns on the next acquire.
        fresh = registry.acquire(2, 1)
        assert fresh is not rt and not fresh.closed
        registry.close_all()

    def test_eviction_skips_leased_runtime(self):
        registry = RuntimeRegistry(idle_ttl=0.0)
        rt = registry.acquire(2, 1)
        answers = build_answers()
        lease = rt.lease(answers, "ZC", {"seed": 0})
        try:
            assert registry.evict_idle() == 0
            assert not rt.closed
        finally:
            lease.close()
        registry.close_all()
        assert rt.closed

    def test_acquire_reuses_open_runtime(self):
        registry = RuntimeRegistry()
        a = registry.acquire(3, 2)
        b = registry.acquire(3, 2)
        assert a is b
        assert registry.acquire(4, 2) is not a
        registry.close_all()
        assert len(registry) == 0

    def test_registry_key_normalizes_max_workers(self):
        # None and its resolved slot count are the same configuration;
        # keying them separately would duplicate pools and segments.
        registry = RuntimeRegistry()
        resolved = ShardRuntime.resolve_max_workers(4, None)
        assert registry.acquire(4, None) is registry.acquire(4, resolved)
        registry.close_all()

    def test_registry_lease_retries_past_concurrent_close(self):
        # Any holder may close a shared runtime between another
        # caller's acquire and lease; registry.lease must respawn
        # instead of failing the fit.
        registry = RuntimeRegistry()
        answers = build_answers()
        stale = registry.acquire(2, 1)
        stale.close()
        runtime, lease = registry.lease(2, 1, answers, "ZC", {"seed": 0})
        try:
            assert runtime is not stale and not runtime.closed
            create("ZC", seed=0).fit(answers, shard_runner=lease)
        finally:
            lease.close()
            registry.close_all()

    def test_pre_dispatch_error_keeps_runtime_warm(self):
        # Master-side validation failures never touched the workers, so
        # they must not forfeit the warm pools and placed segments.
        answers = build_answers()
        with ShardRuntime(n_shards=2, max_workers=1) as rt:
            with rt.lease(answers, "D&S", {"seed": 0}) as runner:
                create("D&S", seed=0).fit(answers, shard_runner=runner)
            names = rt.segment_names()
            with pytest.raises(ValueError, match="initial_quality"):
                with rt.lease(answers, "D&S", {"seed": 0}) as runner:
                    create("D&S", seed=0).fit(
                        answers, shard_runner=runner,
                        initial_quality=np.ones(3))
            assert rt.segment_names() == names
            with rt.lease(answers, "ZC", {"seed": 0}) as runner:
                create("ZC", seed=0).fit(answers, shard_runner=runner)
            assert rt.pool_spawns == 1


class TestExceptionLeaks:
    """Satellite regression: a spec phase raising mid-EM must not leak
    pools or ``/dev/shm`` segments."""

    def test_mid_em_exception_leaves_no_leaks(self, monkeypatch):
        from repro.methods.dawid_skene import _ConfusionSpec

        answers = build_answers()

        def boom(self, stats):
            raise RuntimeError("m-step exploded")

        engine = ShardedInferenceEngine(
            ExecutionPolicy(n_shards=2, max_workers=1,
                            executor="process"),
            registry=RuntimeRegistry())
        # First a clean fit, so the runtime is warm and placed.
        engine.fit(answers, "D&S")
        names = engine._runtime.segment_names()
        assert names
        # The master-side spec finalize runs in this process: patch it
        # to blow up in the middle of EM.
        monkeypatch.setattr(_ConfusionSpec, "finalize", boom)
        with pytest.raises(RuntimeError, match="exploded"):
            engine.fit(answers, "D&S")
        # The failing lease reset the runtime: nothing may linger.
        assert_unlinked(names)
        assert multiprocessing.active_children() == []
        monkeypatch.undo()
        # The engine recovers on the next fit.
        result = engine.fit(answers, "D&S")
        assert result.posterior is not None
        engine.close()
        assert multiprocessing.active_children() == []

    def test_one_shot_runner_context_exits_clean_on_error(self):
        answers = build_answers()
        runner = ProcessShardRunner(answers, "ZC", {"seed": 0},
                                    n_shards=2, max_workers=1)
        names = runner.segment_names()
        with pytest.raises(AttributeError):
            with runner:
                runner.call("phase_that_does_not_exist")
        assert_unlinked(names)
        assert multiprocessing.active_children() == []


_SHUTDOWN_SCRIPT = """
import numpy as np
from repro.core.answers import AnswerSet
from repro.core.registry import create
from repro.core.tasktypes import TaskType
from repro.engine.sharded import ProcessShardRunner

rng = np.random.default_rng(0)
answers = AnswerSet(rng.integers(0, 30, 200), rng.integers(0, 6, 200),
                    rng.integers(0, 2, 200), TaskType.DECISION_MAKING,
                    n_tasks=30, n_workers=6)
with ProcessShardRunner(answers, "D&S", {"seed": 0}, n_shards=2,
                        max_workers=2) as runner:
    create("D&S", seed=0).fit(answers, shard_runner=runner)
print("OK")
"""

_LEASED_EXIT_SCRIPT = """
import numpy as np
from repro.core.answers import AnswerSet
from repro.core.tasktypes import TaskType
from repro.engine.runtime import get_runtime_registry

rng = np.random.default_rng(0)
answers = AnswerSet(rng.integers(0, 30, 200), rng.integers(0, 6, 200),
                    rng.integers(0, 2, 200), TaskType.DECISION_MAKING,
                    n_tasks=30, n_workers=6)
registry = get_runtime_registry()
runtime, lease = registry.lease(2, None, answers, "D&S", {"seed": 0})
lease.call("init_block")
print("OK")
# Exit WITHOUT closing the lease: the process-wide atexit hook must
# tear the runtime down even though the lease lock is still held by
# this (the exiting) thread.
"""


class TestWorkerShutdown:
    def test_shutdown_is_warning_free(self):
        """Workers detach their SharedMemory handles via the atexit
        finalizer, so a full fit + close emits no resource-tracker or
        interpreter-teardown warnings (satellite bugfix)."""
        proc = subprocess.run(
            [sys.executable, "-W", "error::UserWarning", "-c",
             _SHUTDOWN_SCRIPT],
            capture_output=True, text=True, timeout=300)
        assert proc.returncode == 0, proc.stderr
        assert "OK" in proc.stdout
        assert "leaked" not in proc.stderr
        assert "Traceback" not in proc.stderr
        assert "Exception ignored" not in proc.stderr

    def test_exit_while_leased_is_warning_free(self):
        """Regression: exiting with a live lease used to deadlock the
        registry's atexit hook — ``close_all`` blocked forever on the
        lease lock the exiting main thread itself held.  The atexit
        path now steals teardown (workers are already done by then:
        concurrent.futures joins them before atexit hooks run)."""
        proc = subprocess.run(
            [sys.executable, "-W", "error::UserWarning", "-c",
             _LEASED_EXIT_SCRIPT],
            capture_output=True, text=True, timeout=120)
        assert proc.returncode == 0, proc.stderr
        assert "OK" in proc.stdout
        assert "leaked" not in proc.stderr
        assert "Traceback" not in proc.stderr
        assert "Exception ignored" not in proc.stderr


class TestEngineIntegration:
    def test_inference_engine_process_tier_extends_stream(self):
        rng = np.random.default_rng(7)

        def batch(n):
            return [(f"t{rng.integers(0, 50)}", f"w{rng.integers(0, 6)}",
                     int(rng.integers(0, 2))) for _ in range(n)]

        with InferenceEngine(TaskType.DECISION_MAKING, seed=0,
                             policy=ExecutionPolicy(n_shards=3,
                                                    max_workers=2,
                                                    executor="process"),
                             registry=RuntimeRegistry()) as engine:
            reference = InferenceEngine(TaskType.DECISION_MAKING, seed=0)
            first, second = batch(300), batch(80)
            engine.add_answers(first)
            reference.add_answers(first)
            r1 = engine.infer("D&S")
            ref1 = reference.infer("D&S")
            assert engine._runtime.last_placement == "place"
            assert np.abs(r1.posterior - ref1.posterior).max() < 1e-10
            engine.add_answers(second)
            reference.add_answers(second)
            r2 = engine.infer("D&S")
            ref2 = reference.infer("D&S")
            assert engine._runtime.last_placement == "extend"
            assert engine._runtime.pool_spawns == 1
            assert np.abs(r2.posterior - ref2.posterior).max() < 1e-10

    def test_successive_engines_never_collide_on_stream_identity(self):
        # Regression: stream keys once used id(stream); a dead engine's
        # id can be reused by a fresh one, which then matched the stale
        # placed segments and tripped the append-only guard (or worse,
        # silently extended them).  Keys are now process-unique tokens.
        registry = RuntimeRegistry()

        def run_engine(n):
            engine = InferenceEngine(TaskType.DECISION_MAKING, seed=0,
                                     policy=ExecutionPolicy(
                                         n_shards=2, max_workers=1,
                                         executor="process"),
                                     registry=registry)
            rng = np.random.default_rng(n)
            engine.add_answers([
                (f"t{rng.integers(0, 20)}", f"w{rng.integers(0, 4)}",
                 int(rng.integers(0, 2)))
                for _ in range(120 + 40 * n)
            ])
            return engine.infer("D&S")  # dropped without close()

        try:
            assert run_engine(0).posterior is not None
            assert run_engine(1).posterior is not None
        finally:
            registry.close_all()

    def test_sharded_engine_persistent_reuses_runtime(self):
        answers = build_answers(seed=11)
        registry = RuntimeRegistry()
        with ShardedInferenceEngine(
                ExecutionPolicy(n_shards=2, max_workers=1,
                                executor="process"),
                registry=registry) as engine:
            a = engine.fit(answers, "D&S")
            b = engine.fit(answers, "ZC")
            runtime = engine._runtime
            assert runtime.pool_spawns == 1
            assert runtime.reuses >= 1
        assert runtime.closed
        serial = ShardedInferenceEngine(
            ExecutionPolicy(n_shards=2, executor="serial"))
        assert np.array_equal(a.posterior,
                              serial.fit(answers, "D&S").posterior)
        assert np.array_equal(b.posterior,
                              serial.fit(answers, "ZC").posterior)

    def test_run_many_process_shard_executor_matches_serial(self):
        from repro.datasets.schema import Dataset
        from repro.experiments.runner import run_many

        answers = build_answers(seed=13)
        truth = np.zeros(answers.n_tasks, dtype=np.int64)
        dataset = Dataset(name="synthetic", answers=answers, truth=truth)
        try:
            sharded = run_many(
                dataset, ["MV", "D&S", "ZC"], seed=0,
                policy=ExecutionPolicy(n_shards=2, executor="process"))
        finally:
            # run_method leases from the process-wide registry; close it
            # so no warm pools outlive this test.
            from repro.engine.runtime import get_runtime_registry

            get_runtime_registry().close_all()
        plain = run_many(dataset, ["MV", "D&S", "ZC"], seed=0,
                         policy=ExecutionPolicy(n_shards=2,
                                                executor="serial"))
        for a, b in zip(sharded, plain):
            assert a.method == b.method
            assert a.scores == pytest.approx(b.scores)
            assert a.n_iterations == b.n_iterations
