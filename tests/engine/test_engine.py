"""InferenceEngine facade and BatchRunner fan-out."""

import threading

import numpy as np
import pytest

from repro.core.tasktypes import TaskType
from repro.datasets.synthetic import generate_categorical
from repro.engine import BatchJob, BatchRunner, InferenceEngine
from repro.experiments.runner import run_grid, run_many, run_method
from repro.simulation.workers import CategoricalWorker


def _feed(engine, seed=0, n_tasks=120, n_workers=8, redundancy=4):
    rng = np.random.default_rng(seed)
    acc = rng.uniform(0.6, 0.95, n_workers)
    truth = rng.integers(0, 2, n_tasks)
    records = []
    for task in range(n_tasks):
        for worker in rng.choice(n_workers, redundancy, replace=False):
            correct = rng.random() < acc[worker]
            records.append((f"t{task}", f"w{worker}",
                            int(truth[task] if correct else 1 - truth[task])))
    engine.add_answers(records)
    return truth


class TestInferenceEngine:
    def test_cached_result_reused_without_refit(self):
        engine = InferenceEngine(TaskType.DECISION_MAKING,
                                 label_order=[0, 1], seed=0)
        _feed(engine)
        first = engine.infer("D&S")
        assert engine.infer("D&S") is first  # no growth -> cache hit

    def test_growth_triggers_warm_refit(self):
        engine = InferenceEngine(TaskType.DECISION_MAKING,
                                 label_order=[0, 1], seed=0)
        _feed(engine)
        engine.infer("D&S")
        assert not engine.last_fit_was_warm("D&S")
        engine.add_answers([("t0", "w_late", 1)])
        result = engine.infer("D&S")
        assert result.extras["warm_started"] is True
        assert engine.last_fit_was_warm("D&S")

    def test_force_cold_skips_warm_state(self):
        engine = InferenceEngine(TaskType.DECISION_MAKING,
                                 label_order=[0, 1], seed=0)
        _feed(engine)
        engine.infer("D&S")
        engine.add_answers([("t0", "w_late", 1)])
        result = engine.infer("D&S", force_cold=True)
        assert result.extras["warm_started"] is False

    def test_force_cold_bypasses_cache_hit(self):
        """force_cold must refit even when the stream is unchanged."""
        engine = InferenceEngine(TaskType.DECISION_MAKING,
                                 label_order=[0, 1], seed=0)
        _feed(engine)
        engine.infer("D&S")
        engine.add_answers([("t0", "w_late", 1)])
        warm = engine.infer("D&S")
        assert warm.extras["warm_started"] is True
        cold = engine.infer("D&S", force_cold=True)  # same stream version
        assert cold is not warm
        assert cold.extras["warm_started"] is False

    def test_methods_without_warm_support_refit_cold(self):
        engine = InferenceEngine(TaskType.DECISION_MAKING,
                                 label_order=[0, 1], seed=0)
        _feed(engine)
        first = engine.infer("MV")
        engine.add_answers([("t0", "w_late", 1)])
        second = engine.infer("MV")
        assert second is not first  # refit happened, just cold

    def test_in_place_replacement_falls_back_to_cold(self):
        """A replaced answer contradicts what the cached state was
        fitted on, so the next refit must be cold."""
        engine = InferenceEngine(TaskType.DECISION_MAKING,
                                 label_order=[0, 1], seed=0,
                                 on_duplicate="replace")
        _feed(engine)
        engine.infer("D&S")
        # Overwrite an existing (task, worker) pair in place.
        snap = engine.stream.snapshot()
        task_id = snap.task_labels[snap.tasks[0]]
        worker_id = snap.worker_labels[snap.workers[0]]
        engine.add_answers([(task_id, worker_id, int(1 - snap.values[0]))])
        assert engine.stream.replacements == 1
        replaced = engine.infer("D&S")
        assert replaced.extras["warm_started"] is False
        # Pure growth afterwards warm-starts again.
        engine.add_answers([("t0", "w_late", 1)])
        grown = engine.infer("D&S")
        assert grown.extras["warm_started"] is True

    def test_label_space_growth_warm_starts_with_padding(self):
        # Label codes are append-only, so a new label no longer forces a
        # cold refit: the cached posterior/confusion state is padded
        # with seed mass for the new label and the iteration resumes.
        engine = InferenceEngine(TaskType.SINGLE_CHOICE, seed=0)
        engine.add_answers([("t1", "w1", "a"), ("t1", "w2", "b"),
                            ("t2", "w1", "b"), ("t2", "w2", "a"),
                            ("t3", "w1", "a")])
        engine.infer("D&S")
        engine.add_answers([("t3", "w2", "c")])  # third label appears
        result = engine.infer("D&S")
        assert result.extras["warm_started"] is True
        assert result.posterior.shape[1] == 3
        assert result.extras["confusion"].shape[1:] == (3, 3)
        # The padded warm refit must agree with a cold fit on the truth.
        cold = engine.infer("D&S", force_cold=True)
        assert (cold.truths == result.truths).mean() == 1.0

    def test_current_truth_decodes_labels(self):
        engine = InferenceEngine(TaskType.DECISION_MAKING,
                                 label_order=["no", "yes"], seed=0)
        engine.add_answers([("t1", "w1", "yes"), ("t1", "w2", "yes"),
                            ("t2", "w1", "no"), ("t2", "w2", "no"),
                            ("t2", "w3", "no")])
        truth = engine.current_truth("MV")
        assert truth == {"t1": "yes", "t2": "no"}

    def test_current_truth_numeric(self):
        engine = InferenceEngine(TaskType.NUMERIC, seed=0)
        engine.add_answers([("t1", "w1", 2.0), ("t1", "w2", 4.0)])
        truth = engine.current_truth("Mean")
        assert truth == {"t1": pytest.approx(3.0)}

    def test_worker_quality_keyed_by_external_id(self):
        engine = InferenceEngine(TaskType.DECISION_MAKING,
                                 label_order=[0, 1], seed=0)
        truth = _feed(engine)
        quality = engine.worker_quality("D&S")
        assert set(quality) == {f"w{i}" for i in range(8)}
        assert all(0.0 <= q <= 1.0 for q in quality.values())

    def test_warm_engine_matches_cold_labels(self):
        """End-to-end: engine warm refits agree with a from-scratch fit."""
        warm_engine = InferenceEngine(TaskType.DECISION_MAKING,
                                      label_order=[0, 1], seed=0)
        _feed(warm_engine)
        warm_engine.infer("D&S")
        late = [("t0", "w_late", 1), ("t1", "w_late", 0),
                ("t200", "w2", 1)]
        warm_engine.add_answers(late)
        warm = warm_engine.infer("D&S")

        cold_engine = InferenceEngine(TaskType.DECISION_MAKING,
                                      label_order=[0, 1], seed=0)
        _feed(cold_engine)
        cold_engine.add_answers(late)
        cold = cold_engine.infer("D&S")

        np.testing.assert_array_equal(warm.truths, cold.truths)
        assert warm.n_iterations < cold.n_iterations

    def test_invalidate_clears_cache(self):
        engine = InferenceEngine(TaskType.DECISION_MAKING,
                                 label_order=[0, 1], seed=0)
        _feed(engine)
        engine.infer("MV")
        engine.infer("ZC")
        assert set(engine.cached_methods()) == {"MV", "ZC"}
        engine.invalidate("MV")
        assert engine.cached_methods() == ["ZC"]
        engine.invalidate()
        assert engine.cached_methods() == []

    def test_method_kwargs_change_invalidates_cache(self):
        engine = InferenceEngine(TaskType.DECISION_MAKING,
                                 label_order=[0, 1], seed=0)
        _feed(engine)
        first = engine.infer("D&S", max_iter=3)
        second = engine.infer("D&S", max_iter=50)
        assert second is not first


def _tiny_dataset(seed=0, name="tiny"):
    rng = np.random.default_rng(seed)
    workers = [CategoricalWorker(confusion=np.array([[0.9, 0.1],
                                                     [0.1, 0.9]]))
               for _ in range(6)]
    truths = rng.integers(0, 2, 60)
    return generate_categorical(name, truths, workers,
                                total_answers=240, rng=rng)


class TestBatchRunner:
    def test_results_in_job_order_and_match_serial(self):
        dataset = _tiny_dataset()
        jobs = [BatchJob(dataset=dataset, method=m, seed=0)
                for m in ("MV", "ZC", "D&S")]
        parallel = BatchRunner(max_workers=3).run(jobs)
        assert [run.method for run in parallel] == ["MV", "ZC", "D&S"]
        for job, run in zip(jobs, parallel):
            serial = run_method(job.method, dataset, seed=0)
            assert run.scores == serial.scores

    def test_single_worker_path(self):
        dataset = _tiny_dataset()
        runs = BatchRunner(max_workers=1).run(
            [BatchJob(dataset=dataset, method="MV")])
        assert len(runs) == 1

    def test_empty_jobs(self):
        assert BatchRunner().run([]) == []

    def test_invalid_max_workers(self):
        with pytest.raises(ValueError):
            BatchRunner(max_workers=0)

    def test_worker_exception_propagates(self):
        dataset = _tiny_dataset()
        jobs = [BatchJob(dataset=dataset, method="MV"),
                BatchJob(dataset=dataset, method="NoSuchMethod")]
        with pytest.raises(Exception):
            BatchRunner(max_workers=2).run(jobs)

    def test_run_grid_skips_inapplicable_methods(self):
        dataset = _tiny_dataset()
        runs = BatchRunner(max_workers=2).run_grid(
            [dataset], methods=["MV", "Mean"])  # Mean is numeric-only
        assert [run.method for run in runs] == ["MV"]

    def test_jobs_actually_overlap(self):
        """The pool really runs jobs concurrently (not serially)."""
        dataset = _tiny_dataset()
        seen = set()
        barrier = threading.Barrier(2, timeout=10)

        class _Probe(BatchRunner):
            @staticmethod
            def _run_one(job):
                barrier.wait()  # deadlocks unless two jobs run at once
                seen.add(job.method)
                return run_method(job.method, job.dataset, seed=job.seed)

        runs = _Probe(max_workers=2).run(
            [BatchJob(dataset=dataset, method="MV"),
             BatchJob(dataset=dataset, method="ZC")])
        assert seen == {"MV", "ZC"}
        assert len(runs) == 2


def test_package_doctests_stay_honest():
    """The streaming-protocol examples in the module docs must run."""
    import doctest

    import repro.engine
    import repro.engine.engine

    for module in (repro.engine, repro.engine.engine):
        assert doctest.testmod(module).failed == 0


class TestRunnerWiring:
    def test_run_many_parallel_matches_serial(self):
        dataset = _tiny_dataset()
        serial = run_many(dataset, ["MV", "ZC"], seed=0)
        parallel = run_many(dataset, ["MV", "ZC"], seed=0, max_workers=2)
        assert [r.method for r in parallel] == [r.method for r in serial]
        for a, b in zip(serial, parallel):
            assert a.scores == b.scores

    def test_run_grid_wrapper(self):
        datasets = [_tiny_dataset(seed=1, name="a"),
                    _tiny_dataset(seed=2, name="b")]
        runs = run_grid(datasets, methods=["MV"], max_workers=2)
        assert [(r.method, r.dataset) for r in runs] == [("MV", "a"),
                                                         ("MV", "b")]
