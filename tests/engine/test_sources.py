"""Declared-schema answer sources (CSV, in-memory, live line streams)."""

import csv
import io

import pytest

from repro.core.tasktypes import TaskType
from repro.engine import InferenceEngine
from repro.engine.sources import (
    CsvAnswerSource,
    IterableAnswerSource,
    LineAnswerSource,
    TaskSchema,
    TcpAnswerSource,
    infer_schema,
    parse_task_type,
)

RECORDS = [
    ("t1", "w1", "yes"), ("t1", "w2", "yes"), ("t1", "w3", "no"),
    ("t2", "w1", "no"), ("t2", "w2", "no"), ("t2", "w3", "no"),
]


def write_csv(path, records, header=True):
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        if header:
            writer.writerow(["task", "worker", "answer"])
        writer.writerows(records)


class TestTaskSchema:
    def test_declare_from_cli_spelling(self):
        schema = TaskSchema.declare("decision", labels=["no", "yes"])
        assert schema.task_type is TaskType.DECISION_MAKING
        assert schema.labels == ("no", "yes")

    @pytest.mark.parametrize("alias,expected", [
        ("decision", TaskType.DECISION_MAKING),
        ("single", TaskType.SINGLE_CHOICE),
        ("numeric", TaskType.NUMERIC),
    ])
    def test_aliases(self, alias, expected):
        assert parse_task_type(alias) is expected

    def test_unknown_alias_rejected(self):
        with pytest.raises(ValueError, match="task type"):
            parse_task_type("regression")

    def test_numeric_schema_rejects_labels(self):
        with pytest.raises(ValueError, match="labels"):
            TaskSchema(TaskType.NUMERIC, labels=("a", "b"))

    def test_engine_kwargs_round_trip(self):
        schema = TaskSchema.declare("decision", labels=["no", "yes"])
        engine = InferenceEngine(**schema.engine_kwargs())
        engine.add_answers(RECORDS)
        assert engine.current_truth("MV") == {"t1": "yes", "t2": "no"}

    def test_infer_schema_matches_legacy_classification(self):
        assert infer_schema(RECORDS).task_type is TaskType.DECISION_MAKING
        three = RECORDS + [("t3", "w1", "maybe")]
        assert infer_schema(three).task_type is TaskType.SINGLE_CHOICE
        assert infer_schema(three).labels == ("maybe", "no", "yes")


class TestIterableSource:
    def test_batches_and_schema(self):
        source = IterableAnswerSource(RECORDS)
        assert source.schema.task_type is TaskType.DECISION_MAKING
        batches = list(source.batches(4))
        assert [len(b) for b in batches] == [4, 2]
        assert [r for b in batches for r in b] == RECORDS

    def test_declared_schema_wins(self):
        schema = TaskSchema(TaskType.SINGLE_CHOICE,
                            labels=("no", "yes", "maybe"))
        assert IterableAnswerSource(RECORDS, schema).schema is schema

    def test_invalid_chunk_size(self):
        with pytest.raises(ValueError, match="chunk_size"):
            list(IterableAnswerSource(RECORDS).batches(0))


class TestCsvSource:
    def test_undeclared_schema_pre_scans(self, tmp_path):
        path = tmp_path / "answers.csv"
        write_csv(path, RECORDS)
        source = CsvAnswerSource(str(path))
        assert not source.declared
        assert source.schema.labels == ("no", "yes")
        assert sum(len(b) for b in source.batches(4)) == len(RECORDS)

    def test_declared_schema_streams_without_pre_scan(self, tmp_path,
                                                      monkeypatch):
        import repro.engine.sources as sources

        path = tmp_path / "answers.csv"
        write_csv(path, RECORDS)
        monkeypatch.setattr(
            sources, "infer_schema",
            lambda records: pytest.fail("declared schema must not scan"))
        source = CsvAnswerSource(str(path),
                                 TaskSchema.declare("decision"))
        assert source.declared
        assert [r for b in source.batches(3) for r in b] == RECORDS

    def test_malformed_row_raises_with_location(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("t1,w1,yes\nt2,w2\n")
        with pytest.raises(ValueError, match="malformed row"):
            list(CsvAnswerSource(str(path)).batches(10))


class TestLineSource:
    def test_requires_declared_schema(self):
        with pytest.raises(ValueError, match="pre-scan"):
            LineAnswerSource(io.StringIO(""), None)

    def test_streams_incrementally(self):
        """A batch is served before the producer finished writing —
        the property that makes a live socket source possible."""
        produced = []

        def lines():
            for task in range(6):
                row = f"t{task},w1,{task % 2}\n"
                produced.append(row)
                yield row

        class LazyStream:
            def __init__(self):
                self._lines = lines()

            def __iter__(self):
                return self._lines

        source = LineAnswerSource(LazyStream(),
                                  TaskSchema.declare("decision"))
        batches = source.batches(2)
        first = next(batches)
        assert len(first) == 2
        # Only the rows needed for the first chunk were consumed.
        assert len(produced) == 2
        assert sum(len(b) for b in batches) == 4

    def test_numeric_stdin_style_stream(self):
        stream = io.StringIO("t1,w1,2.0\nt1,w2,4.0\nt2,w1,1.0\n")
        source = LineAnswerSource(stream, TaskSchema.declare("numeric"))
        engine = InferenceEngine(**source.schema.engine_kwargs())
        for batch in source.batches(2):
            engine.add_answers(batch)
        truth = engine.current_truth("Mean")
        assert truth["t1"] == pytest.approx(3.0)

    def test_header_rows_skipped(self):
        stream = io.StringIO("task,worker,answer\nt1,w1,yes\nt1,w2,yes\n")
        source = LineAnswerSource(stream, TaskSchema.declare("decision"))
        assert sum(len(b) for b in source.batches(10)) == 2


class TestBadLineTolerance:
    """Live-stream malformed lines are skipped and counted, not fatal."""

    def test_skips_and_counts_bad_lines(self):
        stream = io.StringIO("t1,w1,1\nt2,w2\nGARBAGE\nt2,w1,0\n")
        source = LineAnswerSource(stream, TaskSchema.declare("decision"))
        records = [r for batch in source.batches(2) for r in batch]
        assert [r[0] for r in records] == ["t1", "t2"]
        assert source.bad_lines == 2

    def test_budget_zero_restores_strict_behaviour(self):
        stream = io.StringIO("t1,w1,1\nt2,w2\nt2,w1,0\n")
        source = LineAnswerSource(stream, TaskSchema.declare("decision"),
                                  name="<test>", max_bad_lines=0)
        with pytest.raises(ValueError, match="<test>.*line 2"):
            list(source.batches(10))

    def test_exceeding_budget_names_last_offender(self):
        rows = "t1,w1,1\n" + "broken\n" * 3
        source = LineAnswerSource(io.StringIO(rows),
                                  TaskSchema.declare("decision"),
                                  name="tcp:feed:9000", max_bad_lines=2)
        with pytest.raises(ValueError) as excinfo:
            list(source.batches(10))
        message = str(excinfo.value)
        assert "tcp:feed:9000" in message
        assert "max_bad_lines=2" in message
        assert "line 4" in message

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError, match="max_bad_lines"):
            LineAnswerSource(io.StringIO(""),
                             TaskSchema.declare("decision"),
                             max_bad_lines=-1)

    def test_socket_peer_with_garbled_line(self):
        """Regression: one garbled write from a live socket peer used to
        kill the whole stream mid-batch.  The source must keep serving
        the well-formed tail and report the skip count."""
        import socket
        import threading

        server, client = socket.socketpair()
        payload = b"t1,w1,1\nt2,w2\nGARBAGE\nt2,w1,0\nt3,w2,1\n"

        def produce():
            client.sendall(payload)
            client.close()

        thread = threading.Thread(target=produce)
        thread.start()
        reader = server.makefile("r")
        try:
            source = LineAnswerSource(reader,
                                      TaskSchema.declare("decision"),
                                      name="tcp:peer")
            batches = list(source.batches(2))
        finally:
            thread.join()
            reader.close()
            server.close()
        records = [r for batch in batches for r in batch]
        assert [r[0] for r in records] == ["t1", "t2", "t3"]
        assert source.bad_lines == 2
        engine = InferenceEngine(**source.schema.engine_kwargs())
        engine.add_answers(records)
        assert set(engine.current_truth("MV")) == {"t1", "t2", "t3"}


class TestSourceErrorPaths:
    """Empty/missing inputs fail as repro errors naming the file."""

    def test_infer_schema_rejects_zero_records(self):
        from repro.exceptions import AnswerSourceError

        with pytest.raises(AnswerSourceError, match="zero answer"):
            infer_schema([])

    def test_empty_csv_schema_names_path(self, tmp_path):
        from repro.exceptions import AnswerSourceError

        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(AnswerSourceError) as excinfo:
            CsvAnswerSource(str(path)).schema
        assert str(path) in str(excinfo.value)
        assert "header-only" in str(excinfo.value)

    def test_header_only_csv_schema_names_path(self, tmp_path):
        path = tmp_path / "header.csv"
        path.write_text("task,worker,answer\n")
        # Legacy callers catch ValueError; the new error must stay one.
        with pytest.raises(ValueError, match="cannot infer a schema"):
            CsvAnswerSource(str(path)).schema

    def test_missing_file_names_path(self, tmp_path):
        from repro.exceptions import AnswerSourceError

        path = tmp_path / "nope.csv"
        with pytest.raises(AnswerSourceError,
                           match="cannot read answers"):
            list(CsvAnswerSource(str(path)).batches(10))

    def test_malformed_row_error_is_a_repro_error(self, tmp_path):
        from repro.exceptions import AnswerSourceError, ReproError

        path = tmp_path / "bad.csv"
        path.write_text("t1,w1,yes\nt2,w2\n")
        with pytest.raises(AnswerSourceError) as excinfo:
            list(CsvAnswerSource(str(path)).batches(10))
        assert isinstance(excinfo.value, ReproError)
        assert isinstance(excinfo.value, ValueError)
        assert f"{path}:2" in str(excinfo.value)


class _ResetTail:
    """Replays its stream's lines, then raises ``ConnectionResetError``
    instead of EOF — a dropped connection, deterministically."""

    def __init__(self, stream):
        self._stream = stream

    def __iter__(self):
        return self

    def __next__(self):
        line = self._stream.readline()
        if not line:
            raise ConnectionResetError("simulated transport drop")
        return line

    def close(self):
        self._stream.close()


def socketpair_feed(segments):
    """A dial callable over real socketpairs: each call returns the
    read end of a fresh pair preloaded with the next segment's rows.
    ``drop`` segments end in a transport reset instead of a clean EOF.
    Returns ``(connect, state)``; ``state["dials"]`` counts the calls.
    """
    import socket

    state = {"dials": 0}

    def connect():
        index = state["dials"]
        state["dials"] += 1
        if index >= len(segments):
            raise OSError("feeder exhausted")
        rows, drop = segments[index]
        reader, writer = socket.socketpair()
        with writer, writer.makefile("w", newline="") as sink:
            csv.writer(sink).writerows(rows)
        stream = reader.makefile("r")
        reader.close()  # the file object keeps the fd alive
        return _ResetTail(stream) if drop else stream

    return connect, state


class TestTcpAnswerSource:
    SCHEMA = TaskSchema.declare("decision")
    ROWS = [(f"t{i % 4}", f"w{i % 3}", str(i % 2)) for i in range(8)]

    def make_source(self, segments, **kwargs):
        from repro.faults import Backoff

        connect, state = socketpair_feed(segments)
        kwargs.setdefault("backoff", Backoff(base=0.0, cap=0.0))
        source = TcpAnswerSource("feed.test", 9, self.SCHEMA,
                                 connect=connect, **kwargs)
        return source, state

    def drain(self, source, chunk_size=3):
        return [record for batch in source.batches(chunk_size)
                for record in batch]

    def test_reconnect_resumes_mid_stream(self):
        segments = [(self.ROWS[:5], True), (self.ROWS[5:], False)]
        source, state = self.make_source(segments, reconnect=1)
        assert self.drain(source) == self.ROWS
        assert source.reconnects == 1
        assert source.records_read == len(self.ROWS)
        assert state["dials"] == 2

    def test_default_budget_fails_fast(self):
        from repro.exceptions import AnswerSourceError

        segments = [(self.ROWS[:5], True), (self.ROWS[5:], False)]
        source, _ = self.make_source(segments)
        with pytest.raises(AnswerSourceError, match="budget spent"):
            self.drain(source)

    def test_exhausted_budget_reports_resume_point(self):
        from repro.exceptions import AnswerSourceError

        segments = [(self.ROWS[:5], True), (self.ROWS[5:], True)]
        source, _ = self.make_source(segments, reconnect=1)
        with pytest.raises(AnswerSourceError, match="8 records"):
            self.drain(source)
        assert source.reconnects == 1

    def test_clean_eof_never_redials(self):
        source, state = self.make_source([(self.ROWS, False)],
                                         reconnect=5)
        assert self.drain(source) == self.ROWS
        assert source.reconnects == 0
        assert state["dials"] == 1

    def test_failed_redial_consumes_budget_and_retries(self):
        import socket

        from repro.faults import Backoff

        inner, state = socketpair_feed(
            [(self.ROWS[:5], True), (self.ROWS[5:], False)])
        refusals = {"left": 1}

        def flaky_connect():
            if 0 < state["dials"] and refusals["left"] > 0:
                refusals["left"] -= 1
                raise socket.error("connection refused")
            return inner()

        source = TcpAnswerSource("feed.test", 9, self.SCHEMA,
                                 connect=flaky_connect, reconnect=3,
                                 backoff=Backoff(base=0.0, cap=0.0))
        assert self.drain(source) == self.ROWS
        assert source.reconnects == 2  # one refused, one that served

    def test_bad_line_budget_spans_reconnects(self):
        from repro.exceptions import AnswerSourceError

        bad = [("t1", "w1"), ("t2", "w2")]  # two-field rows: malformed
        segments = [(self.ROWS[:2] + bad[:1], True),
                    (bad[1:] + self.ROWS[2:], False)]
        source, _ = self.make_source(segments, reconnect=1,
                                     max_bad_lines=1)
        with pytest.raises(AnswerSourceError, match="max_bad_lines"):
            self.drain(source)
        assert source.bad_lines == 2

    def test_initial_connect_failure_raises(self):
        from repro.exceptions import AnswerSourceError

        def refuse():
            raise OSError("connection refused")

        with pytest.raises(AnswerSourceError, match="initial connect"):
            TcpAnswerSource("feed.test", 9, self.SCHEMA, connect=refuse)

    def test_negative_reconnect_rejected(self):
        with pytest.raises(ValueError, match="reconnect"):
            TcpAnswerSource("feed.test", 9, self.SCHEMA, reconnect=-1)

    def test_feeds_an_engine_across_a_drop(self):
        segments = [(self.ROWS[:5], True), (self.ROWS[5:], False)]
        source, _ = self.make_source(segments, reconnect=1)
        engine = InferenceEngine(**source.schema.engine_kwargs())
        for batch in source.batches(3):
            engine.add_answers(batch)
        assert set(engine.current_truth("MV")) == {"t0", "t1", "t2", "t3"}


class TestGarbleFault:
    def test_garbled_line_is_skipped_and_counted(self):
        from repro import faults

        plan = faults.FaultPlan.parse("garble:on=2")
        faults.arm(plan)
        try:
            stream = io.StringIO("t1,w1,yes\nt2,w2,no\nt3,w3,yes\n")
            source = LineAnswerSource(stream,
                                      TaskSchema.declare("decision"))
            records = [r for b in source.batches(10) for r in b]
        finally:
            faults.disarm()
        assert records == [("t1", "w1", "yes"), ("t3", "w3", "yes")]
        assert source.bad_lines == 1
        assert plan.fired["garble"] == 1

    def test_unarmed_plane_reads_every_line(self):
        stream = io.StringIO("t1,w1,yes\nt2,w2,no\n")
        source = LineAnswerSource(stream, TaskSchema.declare("decision"))
        assert len([r for b in source.batches(10) for r in b]) == 2
        assert source.bad_lines == 0
