"""Declared-schema answer sources (CSV, in-memory, live line streams)."""

import csv
import io

import pytest

from repro.core.tasktypes import TaskType
from repro.engine import InferenceEngine
from repro.engine.sources import (
    CsvAnswerSource,
    IterableAnswerSource,
    LineAnswerSource,
    TaskSchema,
    infer_schema,
    parse_task_type,
)

RECORDS = [
    ("t1", "w1", "yes"), ("t1", "w2", "yes"), ("t1", "w3", "no"),
    ("t2", "w1", "no"), ("t2", "w2", "no"), ("t2", "w3", "no"),
]


def write_csv(path, records, header=True):
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        if header:
            writer.writerow(["task", "worker", "answer"])
        writer.writerows(records)


class TestTaskSchema:
    def test_declare_from_cli_spelling(self):
        schema = TaskSchema.declare("decision", labels=["no", "yes"])
        assert schema.task_type is TaskType.DECISION_MAKING
        assert schema.labels == ("no", "yes")

    @pytest.mark.parametrize("alias,expected", [
        ("decision", TaskType.DECISION_MAKING),
        ("single", TaskType.SINGLE_CHOICE),
        ("numeric", TaskType.NUMERIC),
    ])
    def test_aliases(self, alias, expected):
        assert parse_task_type(alias) is expected

    def test_unknown_alias_rejected(self):
        with pytest.raises(ValueError, match="task type"):
            parse_task_type("regression")

    def test_numeric_schema_rejects_labels(self):
        with pytest.raises(ValueError, match="labels"):
            TaskSchema(TaskType.NUMERIC, labels=("a", "b"))

    def test_engine_kwargs_round_trip(self):
        schema = TaskSchema.declare("decision", labels=["no", "yes"])
        engine = InferenceEngine(**schema.engine_kwargs())
        engine.add_answers(RECORDS)
        assert engine.current_truth("MV") == {"t1": "yes", "t2": "no"}

    def test_infer_schema_matches_legacy_classification(self):
        assert infer_schema(RECORDS).task_type is TaskType.DECISION_MAKING
        three = RECORDS + [("t3", "w1", "maybe")]
        assert infer_schema(three).task_type is TaskType.SINGLE_CHOICE
        assert infer_schema(three).labels == ("maybe", "no", "yes")


class TestIterableSource:
    def test_batches_and_schema(self):
        source = IterableAnswerSource(RECORDS)
        assert source.schema.task_type is TaskType.DECISION_MAKING
        batches = list(source.batches(4))
        assert [len(b) for b in batches] == [4, 2]
        assert [r for b in batches for r in b] == RECORDS

    def test_declared_schema_wins(self):
        schema = TaskSchema(TaskType.SINGLE_CHOICE,
                            labels=("no", "yes", "maybe"))
        assert IterableAnswerSource(RECORDS, schema).schema is schema

    def test_invalid_chunk_size(self):
        with pytest.raises(ValueError, match="chunk_size"):
            list(IterableAnswerSource(RECORDS).batches(0))


class TestCsvSource:
    def test_undeclared_schema_pre_scans(self, tmp_path):
        path = tmp_path / "answers.csv"
        write_csv(path, RECORDS)
        source = CsvAnswerSource(str(path))
        assert not source.declared
        assert source.schema.labels == ("no", "yes")
        assert sum(len(b) for b in source.batches(4)) == len(RECORDS)

    def test_declared_schema_streams_without_pre_scan(self, tmp_path,
                                                      monkeypatch):
        import repro.engine.sources as sources

        path = tmp_path / "answers.csv"
        write_csv(path, RECORDS)
        monkeypatch.setattr(
            sources, "infer_schema",
            lambda records: pytest.fail("declared schema must not scan"))
        source = CsvAnswerSource(str(path),
                                 TaskSchema.declare("decision"))
        assert source.declared
        assert [r for b in source.batches(3) for r in b] == RECORDS

    def test_malformed_row_raises_with_location(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("t1,w1,yes\nt2,w2\n")
        with pytest.raises(ValueError, match="malformed row"):
            list(CsvAnswerSource(str(path)).batches(10))


class TestLineSource:
    def test_requires_declared_schema(self):
        with pytest.raises(ValueError, match="pre-scan"):
            LineAnswerSource(io.StringIO(""), None)

    def test_streams_incrementally(self):
        """A batch is served before the producer finished writing —
        the property that makes a live socket source possible."""
        produced = []

        def lines():
            for task in range(6):
                row = f"t{task},w1,{task % 2}\n"
                produced.append(row)
                yield row

        class LazyStream:
            def __init__(self):
                self._lines = lines()

            def __iter__(self):
                return self._lines

        source = LineAnswerSource(LazyStream(),
                                  TaskSchema.declare("decision"))
        batches = source.batches(2)
        first = next(batches)
        assert len(first) == 2
        # Only the rows needed for the first chunk were consumed.
        assert len(produced) == 2
        assert sum(len(b) for b in batches) == 4

    def test_numeric_stdin_style_stream(self):
        stream = io.StringIO("t1,w1,2.0\nt1,w2,4.0\nt2,w1,1.0\n")
        source = LineAnswerSource(stream, TaskSchema.declare("numeric"))
        engine = InferenceEngine(**source.schema.engine_kwargs())
        for batch in source.batches(2):
            engine.add_answers(batch)
        truth = engine.current_truth("Mean")
        assert truth["t1"] == pytest.approx(3.0)

    def test_header_rows_skipped(self):
        stream = io.StringIO("task,worker,answer\nt1,w1,yes\nt1,w2,yes\n")
        source = LineAnswerSource(stream, TaskSchema.declare("decision"))
        assert sum(len(b) for b in source.batches(10)) == 2
