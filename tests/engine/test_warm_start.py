"""Warm-start regression tests: warm refits must match cold fits.

The contract (see :mod:`repro.engine`): after a stream grows by a small
increment, refitting with ``warm_start=<previous result>`` must (a) land
on the same labels as a cold fit and (b) use strictly fewer EM
iterations.  These tests pin that on a fixed-seed synthetic dataset for
every warm-capable method.
"""

import numpy as np
import pytest

from repro.core import create
from repro.core.answers import AnswerSet
from repro.core.result import InferenceResult
from repro.core.tasktypes import TaskType
from repro.core.warmstart import (
    diagonal_confusion,
    expand_posterior,
    expand_task_vector,
    expand_worker_vector,
)
from repro.engine import StreamingAnswerSet
from repro.inference.em import run_em

WARM_CATEGORICAL = ["D&S", "ZC", "GLAD", "LFC"]


def _grown_stream(seed=0, n_tasks=300, n_workers=12, growth=0.05):
    """A stream plus its pre-growth snapshot: last ``growth`` of the
    answers (including one brand-new task and one brand-new worker)
    arrive after the first snapshot.

    Workers are decent (accuracy 0.65-0.95) and redundancy is 6: in
    noisier regimes EM can land in *different* local optima warm vs
    cold, so strict iteration/label parity is only a contract on
    well-posed data (the paper's replicas are comparably clean).
    """
    rng = np.random.default_rng(seed)
    acc = rng.uniform(0.65, 0.95, n_workers)
    truth = rng.integers(0, 2, n_tasks)
    records = []
    for task in range(n_tasks):
        for worker in rng.choice(n_workers, 6, replace=False):
            correct = rng.random() < acc[worker]
            value = int(truth[task] if correct else 1 - truth[task])
            records.append((f"t{task}", f"w{worker}", value))
    # Shuffle so the withheld increment is spread across tasks (every
    # task keeps some answers in the first snapshot).
    records = [records[i] for i in rng.permutation(len(records))]
    n_new = int(len(records) * growth)
    stream = StreamingAnswerSet(TaskType.DECISION_MAKING, label_order=[0, 1])
    stream.add_answers(records[:-n_new])
    before = stream.snapshot()
    stream.add_answers(records[-n_new:])
    # One unseen task and one unseen worker in the increment.
    stream.add_answers([(f"t{n_tasks}", "w_new", 1),
                        (f"t{n_tasks}", "w0", 1)])
    after = stream.snapshot()
    assert after.n_tasks == before.n_tasks + 1
    assert after.n_workers == before.n_workers + 1
    return before, after


class TestWarmColdParity:
    @pytest.mark.parametrize("name", WARM_CATEGORICAL)
    def test_labels_match_and_iterations_drop(self, name):
        before, after = _grown_stream(seed=0)
        method = create(name, seed=0, max_iter=200)
        previous = method.fit(before)
        cold = method.fit(after)
        warm = method.fit(after, warm_start=previous)

        assert warm.extras.get("warm_started") is True
        assert cold.extras.get("warm_started") is False
        np.testing.assert_array_equal(warm.truths, cold.truths)
        assert warm.n_iterations < cold.n_iterations

    @pytest.mark.parametrize("name", WARM_CATEGORICAL)
    def test_warm_converges(self, name):
        before, after = _grown_stream(seed=1)
        method = create(name, seed=0, max_iter=200)
        warm = method.fit(after, warm_start=method.fit(before))
        assert warm.converged

    def test_numeric_lfc_warm_matches_cold(self, clean_numeric):
        answers, truth, _ = clean_numeric
        # Split off the last 5% of answers as the "new" increment.
        n_new = answers.n_answers // 20
        keep = np.arange(answers.n_answers - n_new)
        before = answers.select(keep)
        method = create("LFC_N", seed=0, max_iter=200)
        previous = method.fit(before)
        cold = method.fit(answers)
        warm = method.fit(answers, warm_start=previous)
        assert warm.extras["warm_started"] is True
        np.testing.assert_allclose(warm.truths, cold.truths, atol=1e-2)
        assert warm.n_iterations <= cold.n_iterations


class TestLabelPadding:
    """Dynamic-label warm starts: state expansion along the choice axis."""

    def test_pad_posterior_adds_seed_mass_and_renormalises(self):
        from repro.core.warmstart import pad_posterior_labels

        posterior = np.array([[0.9, 0.1], [0.2, 0.8]])
        padded = pad_posterior_labels(posterior, 3)
        assert padded.shape == (2, 3)
        np.testing.assert_allclose(padded.sum(axis=1), 1.0)
        assert np.all(padded[:, 2] > 0)
        assert padded[0, 0] > padded[0, 1] > padded[0, 2]

    def test_pad_posterior_rejects_shrinking(self):
        from repro.core.warmstart import pad_posterior_labels

        with pytest.raises(ValueError, match="append-only"):
            pad_posterior_labels(np.ones((2, 3)) / 3, 2)

    def test_pad_confusion_rows_stay_stochastic(self):
        from repro.core.warmstart import pad_confusion_labels

        confusion = np.array([[[0.8, 0.2], [0.3, 0.7]]])
        padded = pad_confusion_labels(confusion, 3)
        assert padded.shape == (1, 3, 3)
        np.testing.assert_allclose(padded.sum(axis=2), 1.0)
        # Old beliefs dominate, new truth rows are uniform.
        assert padded[0, 0, 0] > padded[0, 0, 2]
        np.testing.assert_allclose(padded[0, 2], padded[0, 2, ::-1])

    def test_pad_result_labels_produces_valid_warm_start(self):
        from repro.core.warmstart import pad_result_labels

        records = [("t1", "w1", "a"), ("t1", "w2", "a"), ("t2", "w1", "b"),
                   ("t2", "w2", "b"), ("t3", "w1", "a")]
        # Fit while only labels a/b exist, then the stream discovers "c".
        small = AnswerSet.from_records(records, TaskType.SINGLE_CHOICE,
                                       label_order=["a", "b"])
        previous = create("D&S", seed=0).fit(small)
        assert previous.posterior.shape[1] == 2
        grown = AnswerSet.from_records(records + [("t3", "w2", "c")],
                                       TaskType.SINGLE_CHOICE,
                                       label_order=["a", "b", "c"])
        padded = pad_result_labels(previous, 3)
        assert padded.posterior.shape[1] == 3
        warm = create("D&S", seed=0).fit(grown, warm_start=padded)
        assert warm.extras["warm_started"] is True
        assert warm.posterior.shape == (3, 3)
        cold = create("D&S", seed=0).fit(grown)
        assert (warm.truths == cold.truths).mean() == 1.0

    def test_pad_result_without_posterior_rejected(self):
        from repro.core.result import InferenceResult
        from repro.core.warmstart import pad_result_labels

        result = InferenceResult(method="x", truths=np.zeros(2),
                                 worker_quality=np.ones(1), posterior=None)
        with pytest.raises(ValueError, match="posterior"):
            pad_result_labels(result, 3)


class TestWarmStartValidation:
    def test_shrunken_stream_rejected(self):
        before, after = _grown_stream(seed=2)
        method = create("D&S", seed=0)
        bigger = method.fit(after)
        with pytest.raises(ValueError, match="append-only"):
            method.fit(before, warm_start=bigger)

    def test_choice_count_mismatch_rejected(self, clean_single_choice):
        answers, _ = clean_single_choice
        method = create("D&S", seed=0)
        previous = method.fit(answers)
        binary = AnswerSet([0, 0], [0, 1], [1, 0], TaskType.DECISION_MAKING,
                           n_tasks=answers.n_tasks,
                           n_workers=answers.n_workers)
        with pytest.raises(ValueError, match="choices"):
            method.fit(binary, warm_start=previous)

    def test_non_result_rejected(self, clean_binary):
        answers, _ = clean_binary
        with pytest.raises(ValueError, match="InferenceResult"):
            create("ZC", seed=0).fit(answers, warm_start={"posterior": None})

    def test_methods_without_support_ignore_warm_start(self, clean_binary):
        answers, _ = clean_binary
        method = create("MV", seed=0)
        result = method.fit(answers)
        again = method.fit(answers, warm_start=result)
        np.testing.assert_array_equal(result.truths, again.truths)

    def test_posterior_only_warm_start_uses_mv_fallback(self):
        """A warm state without method extras (e.g. built by hand from a
        posterior) still warm-starts via the expanded posterior."""
        before, after = _grown_stream(seed=3)
        method = create("D&S", seed=0, max_iter=200)
        previous = method.fit(before)
        stripped = InferenceResult(
            method="D&S",
            truths=previous.truths,
            worker_quality=previous.worker_quality,
            posterior=previous.posterior,
        )
        cold = method.fit(after)
        warm = method.fit(after, warm_start=stripped)
        assert warm.extras["warm_started"] is True
        np.testing.assert_array_equal(warm.truths, cold.truths)
        assert warm.n_iterations < cold.n_iterations


class TestRunEMWarmAPI:
    def test_requires_a_starting_point(self):
        with pytest.raises(ValueError, match="initial_posterior"):
            run_em(m_step=lambda p: p, e_step=lambda p: p)

    def test_steps_are_keyword_only_and_required(self):
        with pytest.raises(TypeError):
            run_em(initial_posterior=np.array([[0.5, 0.5]]))

    def test_initial_parameters_take_precedence(self):
        target = np.array([[0.9, 0.1]])
        m_step_inputs = []

        def m_step(posterior):
            m_step_inputs.append(posterior.copy())
            return "params"

        outcome = run_em(
            initial_posterior=np.array([[0.5, 0.5]]),
            m_step=m_step,
            e_step=lambda params: target,
            tolerance=1e-6,
            max_iter=10,
            initial_parameters="warm",
        )
        # The first M-step saw e_step(initial_parameters), not the
        # initial_posterior: parameters took precedence.
        np.testing.assert_allclose(m_step_inputs[0], target)
        assert outcome.converged
        # e_step is a fixed point: one update to set, one to confirm.
        assert outcome.n_iterations == 2


class TestExpansionHelpers:
    def test_expand_posterior_keeps_prefix_and_seeds_majority(self):
        answers = AnswerSet([0, 1, 1, 2, 2, 2], [0, 0, 1, 0, 1, 2],
                            [1, 0, 0, 1, 1, 0], TaskType.DECISION_MAKING)
        previous = np.array([[0.2, 0.8], [0.7, 0.3]])
        out = expand_posterior(previous, answers)
        np.testing.assert_allclose(out[:2], previous)
        # Task 2 got votes [1, 1, 0] -> majority row [1/3, 2/3].
        np.testing.assert_allclose(out[2], [1 / 3, 2 / 3])

    def test_expand_posterior_rejects_too_many_tasks(self):
        answers = AnswerSet([0], [0], [1], TaskType.DECISION_MAKING)
        with pytest.raises(ValueError):
            expand_posterior(np.full((3, 2), 0.5), answers)

    def test_expand_vectors(self):
        out = expand_worker_vector(np.array([1.0, 2.0]), 4, 9.0)
        np.testing.assert_allclose(out, [1.0, 2.0, 9.0, 9.0])
        out = expand_task_vector(np.array([5.0]), 3,
                                 np.array([0.0, 1.0, 2.0]))
        np.testing.assert_allclose(out, [5.0, 1.0, 2.0])
        with pytest.raises(ValueError):
            expand_task_vector(np.array([1.0, 2.0]), 1, 0.0)

    def test_diagonal_confusion_rows_normalised(self):
        confusion = diagonal_confusion(3, 4, accuracy=0.7)
        assert confusion.shape == (3, 4, 4)
        np.testing.assert_allclose(confusion.sum(axis=2), 1.0)
        np.testing.assert_allclose(confusion[:, 0, 0], 0.7)
