"""Process-pool sharded engine, BatchRunner pools, and the MV seed cache."""

import numpy as np
import pytest

from repro.core.answers import AnswerSet
from repro.core.policy import ExecutionPolicy, MethodSpec
from repro.core.registry import create
from repro.core.tasktypes import TaskType
from repro.datasets.schema import Dataset
from repro.engine.batch import BatchJob, BatchRunner
from repro.engine.sharded import ProcessShardRunner, ShardedInferenceEngine


def build_answers(seed=0, n_tasks=80, n_workers=10, n_choices=2,
                  n_answers=600):
    rng = np.random.default_rng(seed)
    truth = rng.integers(0, n_choices, n_tasks)
    acc = rng.uniform(0.5, 0.95, n_workers)
    tasks = rng.integers(0, n_tasks, n_answers)
    workers = rng.integers(0, n_workers, n_answers)
    correct = rng.random(n_answers) < acc[workers]
    values = np.where(correct, truth[tasks],
                      rng.integers(0, n_choices, n_answers))
    answers = AnswerSet(tasks, workers, values,
                        TaskType.DECISION_MAKING if n_choices == 2
                        else TaskType.SINGLE_CHOICE,
                        n_choices=None if n_choices == 2 else n_choices,
                        n_tasks=n_tasks, n_workers=n_workers)
    return answers, truth


def build_dataset(seed=0, **kwargs):
    answers, truth = build_answers(seed=seed, **kwargs)
    return Dataset(name=f"synthetic-{seed}", answers=answers, truth=truth)


class TestProcessShardRunner:
    def test_matches_in_process_sharded_fit_bitwise(self):
        answers, _ = build_answers()
        serial = create("D&S", seed=0,
                        policy=ExecutionPolicy(n_shards=3,
                                               executor="serial")
                        ).fit(answers)
        with ProcessShardRunner(answers, "D&S", n_shards=3,
                                max_workers=2) as runner:
            proc = create("D&S", seed=0).fit(answers, shard_runner=runner)
        assert np.array_equal(serial.posterior, proc.posterior)
        assert np.array_equal(serial.worker_quality, proc.worker_quality)

    def test_glad_gradient_rounds_through_processes(self):
        answers, _ = build_answers(seed=1)
        serial = create(
            MethodSpec("GLAD", seed=0, max_iter=8),
            policy=ExecutionPolicy(n_shards=2, executor="serial"),
        ).fit(answers)
        with ProcessShardRunner(answers, "GLAD", {"max_iter": 8},
                                n_shards=2, max_workers=2) as runner:
            proc = create("GLAD", seed=0, max_iter=8).fit(
                answers, shard_runner=runner)
        assert np.array_equal(serial.posterior, proc.posterior)

    def test_close_releases_shared_memory(self):
        from multiprocessing import shared_memory

        answers, _ = build_answers()
        runner = ProcessShardRunner(answers, "ZC", n_shards=2,
                                    max_workers=1)
        names = runner.segment_names()
        create("ZC", seed=0).fit(answers, shard_runner=runner)
        runner.close()
        runner.close()  # idempotent
        for name in names:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)

    def test_rejects_methods_without_sharding(self):
        answers, _ = build_answers()
        with pytest.raises(ValueError, match="sharded"):
            ProcessShardRunner(answers, "MV", n_shards=2)


class TestShardedInferenceEngine:
    def test_tiers_agree_bitwise(self):
        answers, _ = build_answers(seed=2)
        results = {}
        for mode in ("serial", "thread", "process"):
            engine = ShardedInferenceEngine(
                ExecutionPolicy(n_shards=4, executor=mode, max_workers=2))
            results[mode] = engine.fit(answers, "D&S")
            assert engine.last_mode == mode
        assert np.array_equal(results["serial"].posterior,
                              results["thread"].posterior)
        assert np.array_equal(results["serial"].posterior,
                              results["process"].posterior)

    def test_auto_stays_in_process_below_threshold(self):
        answers, _ = build_answers()
        engine = ShardedInferenceEngine(
            ExecutionPolicy(n_shards=2, executor="auto",
                            process_threshold=10**9))
        engine.fit(answers, "ZC")
        assert engine.last_mode in ("serial", "thread")

    def test_rejects_unsupported_method(self):
        answers, _ = build_answers()
        engine = ShardedInferenceEngine(
            ExecutionPolicy(n_shards=2, executor="serial"))
        with pytest.raises(ValueError, match="sharded"):
            engine.fit(answers, "MV")

    def test_invalid_executor_name(self):
        with pytest.raises(ValueError, match="executor"):
            ShardedInferenceEngine(ExecutionPolicy(executor="gpu"))

    def test_warm_start_passes_through(self):
        answers, _ = build_answers(seed=4)
        engine = ShardedInferenceEngine(
            ExecutionPolicy(n_shards=3, executor="serial"))
        first = engine.fit(answers, "D&S")
        warm = engine.fit(answers, "D&S", warm_start=first)
        assert warm.extras["warm_started"] is True


class TestBatchRunnerPools:
    def test_process_executor_matches_threads(self):
        datasets = [build_dataset(seed=s, n_answers=300) for s in (0, 1)]
        thread_runs = BatchRunner(max_workers=2).run_grid(
            datasets, methods=["MV", "D&S"])
        from concurrent.futures import ProcessPoolExecutor

        process_runs = BatchRunner(
            max_workers=2,
            executor_factory=ProcessPoolExecutor).run_grid(
            datasets, methods=["MV", "D&S"])
        assert [r.method for r in thread_runs] == \
            [r.method for r in process_runs]
        for a, b in zip(thread_runs, process_runs):
            assert a.scores == b.scores

    def test_invalid_executor_rejected(self):
        with pytest.raises(ValueError, match="executor"):
            BatchRunner(executor="fiber")
        with pytest.raises(ValueError, match="executor"):
            BatchRunner(shard_executor="fiber")

    def test_run_grid_with_sharding(self):
        dataset = build_dataset(seed=3, n_answers=400)
        runs = BatchRunner(
            max_workers=1,
            policy=ExecutionPolicy(n_shards=4, executor="serial"),
        ).run_grid([dataset], methods=["MV", "D&S"])
        baseline = BatchRunner(max_workers=1).run_grid(
            [dataset], methods=["MV", "D&S"])
        for sharded, plain in zip(runs, baseline):
            assert sharded.scores == pytest.approx(plain.scores)


class TestSharedMVSeed:
    def test_seed_filled_once_per_dataset(self):
        dataset = build_dataset(seed=5)
        jobs = [BatchJob(dataset=dataset, method=m)
                for m in ("D&S", "ZC", "GLAD", "MV")]
        runner = BatchRunner(max_workers=1)
        runner._seed_posteriors(jobs)
        seeded = [j for j in jobs if j.seed_posterior is not None]
        # MV itself does not consume a seed posterior.
        assert {j.method for j in seeded} == {"D&S", "ZC", "GLAD"}
        # One shared array, not three copies.
        assert seeded[0].seed_posterior is seeded[1].seed_posterior

    def test_numeric_dataset_not_seeded(self):
        rng = np.random.default_rng(0)
        answers = AnswerSet(rng.integers(0, 20, 100),
                            rng.integers(0, 5, 100),
                            rng.normal(0, 1, 100), TaskType.NUMERIC)
        dataset = Dataset(name="num", answers=answers,
                          truth=np.zeros(answers.n_tasks))
        jobs = [BatchJob(dataset=dataset, method="LFC_N")]
        BatchRunner(max_workers=1)._seed_posteriors(jobs)
        assert jobs[0].seed_posterior is None

    def test_seeded_results_identical_to_unseeded(self):
        # The seed is exactly the majority posterior every method would
        # compute for itself, so results must not change at all.
        dataset = build_dataset(seed=6)
        seeded = BatchRunner(max_workers=1, share_mv_seed=True).run_grid(
            [dataset], methods=["D&S", "ZC"])
        plain = BatchRunner(max_workers=1, share_mv_seed=False).run_grid(
            [dataset], methods=["D&S", "ZC"])
        for a, b in zip(seeded, plain):
            assert a.scores == b.scores
            assert a.n_iterations == b.n_iterations

    def test_run_many_serial_path_shares_seed(self):
        from repro.experiments.runner import run_many

        dataset = build_dataset(seed=7)
        runs = run_many(dataset, ["MV", "D&S", "ZC"], seed=0)
        assert [r.method for r in runs] == ["MV", "D&S", "ZC"]
