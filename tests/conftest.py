"""Shared fixtures: toy answer sets and scaled-down dataset replicas."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.answers import AnswerSet
from repro.core.tasktypes import TaskType
from repro.datasets import load_paper_dataset


@pytest.fixture
def rng():
    return np.random.default_rng(1234)


@pytest.fixture(scope="session", autouse=True)
def _lease_protocol_gate():
    """Under ``REPRO_CHECKS=1``, fail the session on leaked runtime
    resources: after closing the global registry, every verifier
    ledger (segments, pools, leases, locks) must be empty."""
    yield
    from repro.checks.protocol import get_verifier

    verifier = get_verifier()
    if verifier is None:
        return
    from repro.engine.runtime import get_runtime_registry

    get_runtime_registry().close_all()
    verifier.assert_clean()


@pytest.fixture
def paper_example() -> AnswerSet:
    """The paper's Table 2: 3 workers, 6 entity-resolution tasks.

    Label encoding: F -> 0, T -> 1.  Ground truth is v*_1 = v*_6 = T and
    F elsewhere; worker w3 is the best worker.
    """
    t, f = 1, 0
    records = [
        ("t1", "w1", f), ("t2", "w1", t), ("t3", "w1", t),
        ("t4", "w1", f), ("t5", "w1", f), ("t6", "w1", f),
        ("t2", "w2", f), ("t3", "w2", f), ("t4", "w2", t),
        ("t5", "w2", t), ("t6", "w2", f),
        ("t1", "w3", t), ("t2", "w3", f), ("t3", "w3", f),
        ("t4", "w3", f), ("t5", "w3", f), ("t6", "w3", t),
    ]
    return AnswerSet.from_records(records, TaskType.DECISION_MAKING,
                                  label_order=[0, 1])


@pytest.fixture
def paper_example_truth() -> np.ndarray:
    """Ground truth for :func:`paper_example` (T=1 for t1 and t6)."""
    return np.array([1, 0, 0, 0, 0, 1])


def _binary_answers(n_tasks, worker_accuracies, redundancy, seed,
                    positive_fraction=0.5):
    """Synthesise a clean binary answer set with known worker accuracy."""
    rng = np.random.default_rng(seed)
    truth = (rng.random(n_tasks) < positive_fraction).astype(np.int64)
    tasks, workers, values = [], [], []
    n_workers = len(worker_accuracies)
    for task in range(n_tasks):
        chosen = rng.choice(n_workers, size=min(redundancy, n_workers),
                            replace=False)
        for worker in chosen:
            correct = rng.random() < worker_accuracies[worker]
            answer = truth[task] if correct else 1 - truth[task]
            tasks.append(task)
            workers.append(int(worker))
            values.append(int(answer))
    answers = AnswerSet(tasks, workers, values, TaskType.DECISION_MAKING,
                        n_tasks=n_tasks, n_workers=n_workers)
    return answers, truth


@pytest.fixture
def clean_binary():
    """300 binary tasks, 8 workers of varied quality, redundancy 5."""
    return _binary_answers(
        n_tasks=300,
        worker_accuracies=[0.95, 0.9, 0.85, 0.8, 0.75, 0.7, 0.6, 0.35],
        redundancy=5,
        seed=7,
    )


@pytest.fixture
def clean_single_choice():
    """200 4-choice tasks answered by reliable workers, redundancy 5."""
    rng = np.random.default_rng(11)
    n_tasks, n_choices, n_workers = 200, 4, 10
    accuracies = rng.uniform(0.55, 0.9, size=n_workers)
    truth = rng.integers(0, n_choices, size=n_tasks)
    tasks, workers, values = [], [], []
    for task in range(n_tasks):
        for worker in rng.choice(n_workers, size=5, replace=False):
            if rng.random() < accuracies[worker]:
                answer = truth[task]
            else:
                answer = (truth[task] + rng.integers(1, n_choices)) % n_choices
            tasks.append(task)
            workers.append(int(worker))
            values.append(int(answer))
    answers = AnswerSet(tasks, workers, values, TaskType.SINGLE_CHOICE,
                        n_choices=n_choices, n_tasks=n_tasks,
                        n_workers=n_workers)
    return answers, truth


@pytest.fixture
def clean_numeric():
    """150 numeric tasks, 6 workers with known sigmas, redundancy 6."""
    rng = np.random.default_rng(23)
    n_tasks, n_workers = 150, 6
    sigmas = np.array([1.0, 2.0, 3.0, 5.0, 8.0, 15.0])
    truth = rng.uniform(-50, 50, size=n_tasks)
    tasks, workers, values = [], [], []
    for task in range(n_tasks):
        for worker in range(n_workers):
            tasks.append(task)
            workers.append(worker)
            values.append(float(truth[task] + rng.normal(0, sigmas[worker])))
    answers = AnswerSet(tasks, workers, values, TaskType.NUMERIC,
                        n_tasks=n_tasks, n_workers=n_workers)
    return answers, truth, sigmas


@pytest.fixture(scope="session")
def small_product():
    """Scale-0.1 D_Product replica (shared across the session)."""
    return load_paper_dataset("D_Product", seed=0, scale=0.1)


@pytest.fixture(scope="session")
def small_possent():
    """Scale-0.2 D_PosSent replica."""
    return load_paper_dataset("D_PosSent", seed=0, scale=0.2)


@pytest.fixture(scope="session")
def small_rel():
    """Scale-0.05 S_Rel replica."""
    return load_paper_dataset("S_Rel", seed=0, scale=0.05)


@pytest.fixture(scope="session")
def small_emotion():
    """Scale-0.5 N_Emotion replica."""
    return load_paper_dataset("N_Emotion", seed=0, scale=0.5)
