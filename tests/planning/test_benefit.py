"""Tests for golden-task benefit estimation (paper §7.4–7.5)."""

import pytest

from repro.planning.benefit import (
    estimate_hidden_benefit,
    estimate_qualification_benefit,
)


class TestQualificationBenefit:
    def test_estimate_structure(self, small_product):
        estimate = estimate_qualification_benefit(
            small_product, "ZC", n_golden=10, n_repeats=3)
        assert estimate.method == "ZC"
        assert estimate.metric == "accuracy"
        assert estimate.n_repeats == 3
        assert estimate.std_delta >= 0
        assert "qualification" in estimate.summary()

    def test_unsupported_method_rejected(self, small_product):
        with pytest.raises(ValueError, match="cannot incorporate"):
            estimate_qualification_benefit(small_product, "MV")

    def test_numeric_metric_sign_adjusted(self, small_emotion):
        estimate = estimate_qualification_benefit(
            small_emotion, "LFC_N", n_golden=10, n_repeats=3)
        assert estimate.metric == "mae"
        # Deltas are "positive = better"; magnitude bounded by the
        # baseline error itself.
        assert abs(estimate.mean_delta) < estimate.baseline


class TestHiddenBenefit:
    def test_estimate_structure(self, small_product):
        estimate = estimate_hidden_benefit(
            small_product, "ZC", percentage=20, n_repeats=3)
        assert "hidden test" in estimate.protocol
        assert estimate.dataset == "D_Product"

    def test_unsupported_method_rejected(self, small_product):
        with pytest.raises(ValueError, match="cannot incorporate"):
            estimate_hidden_benefit(small_product, "CBCC")

    def test_worthwhile_flag_consistent(self, small_product):
        estimate = estimate_hidden_benefit(
            small_product, "CATD", percentage=30, n_repeats=3)
        assert estimate.worthwhile == \
            (estimate.mean_delta > estimate.std_delta)

    def test_golden_tasks_never_hurt_much(self, small_product):
        """Planting true golden labels should not devastate quality —
        a sanity bound on the protocol plumbing."""
        estimate = estimate_hidden_benefit(
            small_product, "D&S", percentage=30, n_repeats=3)
        assert estimate.mean_delta > -0.05
