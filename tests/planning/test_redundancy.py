"""Tests for redundancy planning (paper §7.3)."""

import numpy as np
import pytest

from repro.planning.redundancy import (
    SaturationModel,
    estimate_saturation_redundancy,
    fit_saturation_model,
    redundancy_curve,
)


class TestSaturationRedundancy:
    def test_finds_plateau_start(self):
        r = [1, 2, 3, 4, 5]
        q = [0.6, 0.8, 0.9, 0.902, 0.903]
        assert estimate_saturation_redundancy(r, q, epsilon=0.01) == 3

    def test_never_flattening_returns_max(self):
        r = [1, 2, 3]
        q = [0.5, 0.6, 0.7]
        assert estimate_saturation_redundancy(r, q, epsilon=0.01) == 3

    def test_error_metrics_with_lower_is_better(self):
        r = [1, 2, 3, 4]
        errors = [20.0, 12.0, 11.9, 11.85]
        assert estimate_saturation_redundancy(
            r, errors, epsilon=0.1, higher_is_better=False) == 2

    def test_input_validation(self):
        with pytest.raises(ValueError):
            estimate_saturation_redundancy([1], [0.5])
        with pytest.raises(ValueError):
            estimate_saturation_redundancy([1, 2], [0.5])


class TestSaturationModel:
    def test_fit_recovers_known_parameters(self):
        model_true = SaturationModel(q_inf=0.95, a=0.5, b=0.8)
        r = np.arange(1, 12)
        q = model_true.predict(r)
        fitted = fit_saturation_model(r, q)
        assert abs(fitted.q_inf - 0.95) < 0.01
        assert abs(fitted.b - 0.8) < 0.1

    def test_prediction_monotone_and_bounded(self):
        model = SaturationModel(q_inf=0.9, a=0.4, b=0.5)
        values = model.predict(np.arange(1, 30))
        assert (np.diff(values) > 0).all()
        assert values.max() < 0.9

    def test_marginal_gain_shrinks(self):
        model = SaturationModel(q_inf=0.9, a=0.4, b=0.5)
        assert model.marginal_gain(2) > model.marginal_gain(10)

    def test_redundancy_for_quality(self):
        model = SaturationModel(q_inf=0.9, a=0.4, b=0.5)
        r = model.redundancy_for_quality(0.85)
        assert abs(model.predict(r) - 0.85) < 1e-9

    def test_unreachable_target_is_inf(self):
        model = SaturationModel(q_inf=0.9, a=0.4, b=0.5)
        assert model.redundancy_for_quality(0.95) == float("inf")

    def test_too_few_points_rejected(self):
        with pytest.raises(ValueError):
            fit_saturation_model([1, 2], [0.5, 0.6])


class TestRedundancyCurve:
    def test_measures_rising_curve(self, small_possent):
        curve = redundancy_curve(small_possent, "MV", [1, 5, 10],
                                 n_repeats=2)
        assert len(curve) == 3
        assert curve[-1] > curve[0]

    def test_end_to_end_estimate(self, small_possent):
        grid = [1, 3, 5, 10, 15]
        curve = redundancy_curve(small_possent, "MV", grid, n_repeats=2)
        r_hat = estimate_saturation_redundancy(grid, curve, epsilon=0.01)
        assert r_hat in grid
        model = fit_saturation_model(grid, curve)
        assert 0.5 < model.q_inf <= 1.5
