"""Crash recovery: acknowledged answers survive, truth matches.

Two layers:

* a hypothesis property — over random record tails, batch splits,
  duplicate policies and snapshot cadences, abandon the store after an
  arbitrary acknowledged prefix and require the recovered engine to
  serve the *same truth* (posterior parity <= 1e-10) as an
  uninterrupted engine fed that prefix;
* a real ``SIGKILL`` integration test — a child process streams batches
  through a durable engine and prints ``ACK <version>`` after each
  acknowledged batch; the parent kills it with ``-9`` mid-stream,
  recovers the store, and verifies nothing acknowledged was lost and
  the posterior matches an uninterrupted replay bit-closely.
"""

import os
import signal
import subprocess
import sys
import tempfile

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.policy import ExecutionPolicy, StorePolicy
from repro.core.tasktypes import TaskType
from repro.engine import InferenceEngine

records_strategy = st.lists(
    st.tuples(st.integers(0, 6), st.integers(0, 3), st.integers(0, 1)),
    min_size=1, max_size=60,
)


def _batched(records, size):
    return [records[i:i + size] for i in range(0, len(records), size)]


@given(
    records=records_strategy,
    batch_size=st.integers(1, 7),
    crash_fraction=st.floats(0.0, 1.0),
    on_duplicate=st.sampled_from(["keep", "replace"]),
    snapshot_every=st.sampled_from([1, 5, 10**9]),
    infer_during=st.booleans(),
)
@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_recovery_serves_the_acknowledged_truth(
        records, batch_size, crash_fraction, on_duplicate,
        snapshot_every, infer_during):
    batches = _batched(records, batch_size)
    n_acked = int(round(crash_fraction * len(batches)))
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "store")
        policy = ExecutionPolicy(store=StorePolicy(
            path=path, snapshot_every=snapshot_every))
        engine = InferenceEngine(TaskType.DECISION_MAKING,
                                 label_order=[0, 1], seed=0,
                                 on_duplicate=on_duplicate,
                                 policy=policy)
        for batch in batches[:n_acked]:
            engine.add_answers(batch)
            if infer_during:
                engine.infer("D&S", tolerance=1e-7)
        acked_version = engine.stream.version
        acked_replacements = engine.stream.replacements
        # Simulate the crash: the process dies without engine.close();
        # only what the log committed exists afterwards.
        engine._store.close()
        del engine

        # The uninterrupted run: same records, same refit cadence.
        reference = InferenceEngine(TaskType.DECISION_MAKING,
                                    label_order=[0, 1], seed=0,
                                    on_duplicate=on_duplicate)
        for batch in batches[:n_acked]:
            reference.add_answers(batch)
            if infer_during:
                reference.infer("D&S", tolerance=1e-7)

        with InferenceEngine.recover(path) as recovered:
            assert recovered.stream.version == acked_version
            assert recovered.stream.replacements == acked_replacements
            assert recovered.stream.n_answers == reference.stream.n_answers
            if acked_version == 0:
                return
            # The stream itself recovers bit-exactly — the zero-loss
            # guarantee, regardless of snapshot cadence.
            snap = recovered.stream.snapshot()
            ref_snap = reference.stream.snapshot()
            np.testing.assert_array_equal(snap.tasks, ref_snap.tasks)
            np.testing.assert_array_equal(snap.values, ref_snap.values)
            assert snap.task_labels == ref_snap.task_labels
            result = recovered.infer("D&S", tolerance=1e-7)
            ref = reference.infer("D&S", tolerance=1e-7)
            gap = np.abs(result.posterior - ref.posterior).max()
            if infer_during and snapshot_every == 1:
                # A snapshot exists at the stream head, so recovery is
                # a pure cache hit: bit-identical to the fit the
                # uninterrupted engine served.
                assert gap <= 1e-10
                np.testing.assert_array_equal(result.truths, ref.truths)
            else:
                # Recovery resumes EM from an older snapshot (or cold);
                # both runs converge to the same fixed point within the
                # EM tolerance, and agree on every decisively-labelled
                # task (exact ties may break either way).
                assert gap <= 1e-6
                margin = np.abs(ref.posterior[:, 0] - ref.posterior[:, 1])
                decisive = margin > 1e-4
                np.testing.assert_array_equal(result.truths[decisive],
                                              ref.truths[decisive])


_WRITER_SCRIPT = """
import sys
import numpy as np
from repro.core.policy import ExecutionPolicy, StorePolicy
from repro.core.tasktypes import TaskType
from repro.engine import InferenceEngine

path = sys.argv[1]
rng = np.random.default_rng(42)
truth = rng.integers(0, 2, 40)
engine = InferenceEngine(
    TaskType.DECISION_MAKING, label_order=[0, 1], seed=0,
    policy=ExecutionPolicy(store=StorePolicy(path=path,
                                             snapshot_every=60)))
for i in range(100000):
    batch = []
    for _ in range(20):
        t = int(rng.integers(0, 40))
        w = int(rng.integers(0, 8))
        v = int(truth[t] if rng.random() < 0.8 else 1 - truth[t])
        batch.append((f"t{t}", f"w{w}", v))
    engine.add_answers(batch)
    if i % 5 == 4:
        engine.infer("D&S", tolerance=1e-7)
    print(f"ACK {engine.stream.version}", flush=True)
"""


def _regenerate_batches(n_batches):
    """The writer script's exact record sequence, re-derived."""
    rng = np.random.default_rng(42)
    truth = rng.integers(0, 2, 40)
    batches = []
    for _ in range(n_batches):
        batch = []
        for _ in range(20):
            t = int(rng.integers(0, 40))
            w = int(rng.integers(0, 8))
            v = int(truth[t] if rng.random() < 0.8 else 1 - truth[t])
            batch.append((f"t{t}", f"w{w}", v))
        batches.append(batch)
    return batches


_DELTA_WRITER_SCRIPT = """
import sys
import numpy as np
from repro.core.policy import ExecutionPolicy, StorePolicy
from repro.core.tasktypes import TaskType
from repro.engine import InferenceEngine

path = sys.argv[1]
rng = np.random.default_rng(11)
pairs = [(t, w) for t in range(60) for w in range(30)]
order = rng.permutation(len(pairs))
values = rng.integers(0, 2, len(pairs))
policy = ExecutionPolicy(
    n_shards=3, executor="serial", refit="delta",
    store=StorePolicy(path=path, snapshot_every=40))
engine = InferenceEngine(TaskType.DECISION_MAKING, label_order=[0, 1],
                         seed=0, policy=policy)
offset = 0
for size in [400] + [20] * 60:
    batch = [(f"t{pairs[order[i]][0]}", f"w{pairs[order[i]][1]}",
              int(values[order[i]])) for i in range(offset, offset + size)]
    offset += size
    engine.add_answers(batch)
    engine.infer("BCC", n_samples=10, burn_in=5)
    print(f"ACK {engine.stream.version}", flush=True)
"""


def test_sigkill_recovery_resumes_gibbs_chain_warm(tmp_path):
    """Session payloads (the Gibbs chain state) ride fit snapshots:
    after a SIGKILL the recovered engine's next refit must *continue*
    the cached chain — a warm delta refit, not a cold resample."""
    path = str(tmp_path / "store")
    proc = subprocess.Popen(
        [sys.executable, "-c", _DELTA_WRITER_SCRIPT, path],
        stdout=subprocess.PIPE, text=True)
    try:
        version = 0
        for _ in range(6):
            line = proc.stdout.readline()
            assert line.startswith("ACK ")
            version = int(line.split()[1])
        os.kill(proc.pid, signal.SIGKILL)
    finally:
        proc.wait(timeout=60)
        proc.stdout.close()
    assert proc.returncode == -signal.SIGKILL

    policy = ExecutionPolicy(n_shards=3, executor="serial", refit="delta",
                             store=StorePolicy(path=path))
    with InferenceEngine.recover(path, policy=policy) as recovered:
        assert recovered.stream.version >= version
        # The writer's record sequence, re-derived, so the post-crash
        # batch continues the unique-pair stream.
        rng = np.random.default_rng(11)
        pairs = [(t, w) for t in range(60) for w in range(30)]
        order = rng.permutation(len(pairs))
        values = rng.integers(0, 2, len(pairs))
        start = recovered.stream.version
        recovered.add_answers(
            [(f"t{pairs[order[i]][0]}", f"w{pairs[order[i]][1]}",
              int(values[order[i]])) for i in range(start, start + 20)])
        result = recovered.infer("BCC", n_samples=10, burn_in=5)
        assert result.fit_stats.mode == "delta"
        assert result.extras["warm_started"]
        # Lifetime sweep count proves the chain picked up where the
        # snapshot left it (a cold fit would report 15).
        assert result.n_iterations > 15


def test_sigkill_mid_stream_loses_nothing_acknowledged(tmp_path):
    path = str(tmp_path / "store")
    proc = subprocess.Popen(
        [sys.executable, "-c", _WRITER_SCRIPT, path],
        stdout=subprocess.PIPE, text=True)
    try:
        acked = 0
        for _ in range(12):  # let a dozen batches be acknowledged
            line = proc.stdout.readline()
            assert line.startswith("ACK ")
            acked = int(line.split()[1])
        os.kill(proc.pid, signal.SIGKILL)
    finally:
        proc.wait(timeout=60)
        proc.stdout.close()
    assert proc.returncode == -signal.SIGKILL

    with InferenceEngine.recover(path) as recovered:
        version = recovered.stream.version
        # Zero lost acknowledged answers; batch atomicity means the log
        # ends on a batch boundary (possibly one batch past the last
        # ACK the parent managed to read).
        assert version >= acked
        assert version % 20 == 0
        batches = _regenerate_batches(version // 20)
        reference = InferenceEngine(TaskType.DECISION_MAKING,
                                    label_order=[0, 1], seed=0)
        for i, batch in enumerate(batches):
            reference.add_answers(batch)
            if i % 5 == 4:  # the writer's periodic-refit cadence
                reference.infer("D&S", tolerance=1e-7)
        assert reference.stream.version == version
        result = recovered.infer("D&S", tolerance=1e-7)
        ref = reference.infer("D&S", tolerance=1e-7)
        # Recovery resumes EM from the last *snapshot*; the reference
        # resumes from its last in-memory fit.  Both converge to the
        # same fixed point within the EM tolerance — the acceptance
        # gate is 1e-6 — and must agree exactly on the truth labels.
        assert np.abs(result.posterior - ref.posterior).max() <= 1e-6
        assert (recovered.current_truth("D&S")
                == reference.current_truth("D&S"))
