"""AnswerStore: directory layout, WAL pragmas, format versioning."""

import os

import pytest

from repro.exceptions import ReproError, StoreError
from repro.store import AnswerStore
from repro.store.log import FORMAT_VERSION


class TestOpen:
    def test_creates_directory_and_database(self, tmp_path):
        path = str(tmp_path / "store")
        with AnswerStore(path) as store:
            assert os.path.isfile(os.path.join(path, "answers.sqlite"))
            assert store.spill_dir == os.path.join(path, "spill")
            mode = store.connection.execute(
                "PRAGMA journal_mode").fetchone()[0]
            assert mode == "wal"

    def test_reopen_sees_committed_data(self, tmp_path):
        path = str(tmp_path / "store")
        with AnswerStore(path) as store:
            store.log.write_meta({"format": FORMAT_VERSION})
            store.log.append_batch([("t1", "w1", 1)], [0], version=1)
        with AnswerStore(path) as store:
            assert len(store.log) == 1
            assert store.log.read_meta()["format"] == FORMAT_VERSION

    def test_future_format_refused(self, tmp_path):
        path = str(tmp_path / "store")
        with AnswerStore(path) as store:
            store.log.write_meta({"format": FORMAT_VERSION + 1})
        with pytest.raises(StoreError, match="store format"):
            AnswerStore(path)

    def test_bad_sync_mode_rejected(self, tmp_path):
        with pytest.raises(StoreError, match="sync"):
            AnswerStore(str(tmp_path / "store"), sync="fastest")

    def test_unopenable_path_raises_store_error(self, tmp_path):
        blocker = tmp_path / "file"
        blocker.write_text("")
        with pytest.raises(StoreError, match="cannot open answer store"):
            AnswerStore(str(blocker / "store"))

    def test_store_error_is_a_repro_error(self, tmp_path):
        with pytest.raises(ReproError):
            AnswerStore(str(tmp_path / "store"), sync="nope")

    def test_close_is_idempotent(self, tmp_path):
        store = AnswerStore(str(tmp_path / "store"))
        store.close()
        store.close()
