"""SnapshotStore: save/load/prune keyed by log sequence number."""

import sqlite3

import pytest

from repro.exceptions import StoreError
from repro.store import SnapshotStore


@pytest.fixture
def snapshots():
    return SnapshotStore(sqlite3.connect(":memory:"))


def payload(tag):
    return {"result": tag, "method_kwargs": {}, "n_tasks": 3,
            "n_workers": 2, "n_choices": 2}


class TestSaveLoad:
    def test_load_latest_returns_newest(self, snapshots):
        snapshots.save("D&S", seq=10, replacements=0, payload=payload("a"))
        snapshots.save("D&S", seq=20, replacements=1, payload=payload("b"))
        seq, replacements, loaded = snapshots.load_latest("D&S")
        assert (seq, replacements) == (20, 1)
        assert loaded["result"] == "b"

    def test_max_seq_bounds_the_search(self, snapshots):
        snapshots.save("D&S", seq=10, replacements=0, payload=payload("a"))
        snapshots.save("D&S", seq=20, replacements=0, payload=payload("b"))
        seq, _, loaded = snapshots.load_latest("D&S", max_seq=15)
        assert seq == 10
        assert loaded["result"] == "a"
        assert snapshots.load_latest("D&S", max_seq=5) is None

    def test_unknown_method_is_none(self, snapshots):
        assert snapshots.load_latest("GLAD") is None
        assert snapshots.latest_seq("GLAD") == 0

    def test_methods_and_latest_seq(self, snapshots):
        snapshots.save("MV", seq=5, replacements=0, payload=payload("m"))
        snapshots.save("D&S", seq=8, replacements=0, payload=payload("d"))
        assert snapshots.methods() == ["D&S", "MV"]
        assert snapshots.latest_seq("D&S") == 8
        assert len(snapshots) == 2

    def test_same_seq_resave_overwrites(self, snapshots):
        snapshots.save("MV", seq=5, replacements=0, payload=payload("old"))
        snapshots.save("MV", seq=5, replacements=0, payload=payload("new"))
        assert len(snapshots) == 1
        assert snapshots.load_latest("MV")[2]["result"] == "new"


class TestPrune:
    def test_keep_prunes_oldest_per_method(self, snapshots):
        for seq in (10, 20, 30, 40):
            snapshots.save("D&S", seq=seq, replacements=0,
                           payload=payload(seq), keep=2)
        assert len(snapshots) == 2
        assert snapshots.load_latest("D&S")[0] == 40
        assert snapshots.load_latest("D&S", max_seq=39)[0] == 30
        assert snapshots.load_latest("D&S", max_seq=29) is None

    def test_prune_is_per_method(self, snapshots):
        snapshots.save("MV", seq=10, replacements=0, payload=payload("m"))
        for seq in (10, 20, 30):
            snapshots.save("D&S", seq=seq, replacements=0,
                           payload=payload(seq), keep=2)
        assert snapshots.latest_seq("MV") == 10  # untouched


class TestCorruption:
    def test_corrupt_payload_raises_store_error(self, snapshots):
        snapshots.save("D&S", seq=10, replacements=0, payload=payload("a"))
        snapshots._conn.execute(
            "UPDATE snapshots SET payload = ?", (b"garbage",))
        snapshots._conn.commit()
        with pytest.raises(StoreError, match="corrupt snapshot"):
            snapshots.load_latest("D&S")
