"""AnswerLog: type-tagged field codec + append/replay round trips."""

import sqlite3

import numpy as np
import pytest

from repro.exceptions import StoreError
from repro.store import AnswerLog, decode_field, encode_field


@pytest.fixture
def log():
    return AnswerLog(sqlite3.connect(":memory:"))


class TestFieldCodec:
    @pytest.mark.parametrize("value", [
        "t1", "", "with,comma", "né", 0, 7, -3, 2**40, 0.5, -1e-9,
        float("inf"), True, False, None, [1, "a"], {"k": 2},
    ])
    def test_round_trip_identity(self, value):
        decoded = decode_field(encode_field(value))
        assert decoded == value
        assert type(decoded) is type(value)

    def test_float_round_trips_exactly(self):
        # repr-based encoding: bit-exact, not just approximately equal.
        value = 0.1 + 0.2
        assert decode_field(encode_field(value)) == value

    def test_numpy_scalars_unwrap(self):
        assert decode_field(encode_field(np.int64(3))) == 3
        assert type(decode_field(encode_field(np.int64(3)))) is int
        assert decode_field(encode_field(np.float64(0.25))) == 0.25

    def test_string_that_looks_like_an_int_stays_a_string(self):
        # "1" and 1 are distinct stream index keys; the tag keeps them so.
        assert decode_field(encode_field("1")) == "1"
        assert decode_field(encode_field(1)) == 1

    def test_bool_does_not_collapse_to_int(self):
        assert decode_field(encode_field(True)) is True
        assert decode_field(encode_field(1)) == 1
        assert decode_field(encode_field(1)) is not True

    def test_unserialisable_value_raises_store_error(self):
        with pytest.raises(StoreError, match="not JSON-serialisable"):
            encode_field(object())

    def test_unknown_tag_raises_store_error(self):
        with pytest.raises(StoreError, match="unknown type tag"):
            decode_field("x?!")


class TestAppendReplay:
    def test_append_assigns_consecutive_seqs_ending_at_version(self, log):
        log.append_batch([("t1", "w1", 1), ("t2", "w1", 0)],
                         [0, 0], version=2)
        log.append_batch([("t3", "w2", 1)], [0], version=3)
        assert log.last_seq == 3
        assert len(log) == 3
        replayed = [r for chunk in log.replay() for r in chunk]
        assert replayed == [("t1", "w1", 1), ("t2", "w1", 0),
                            ("t3", "w2", 1)]

    def test_replace_outcomes_counted(self, log):
        log.append_batch([("t1", "w1", 1)], [0], version=1)
        log.append_batch([("t1", "w1", 0)], [1], version=2)
        assert log.replace_count == 1
        assert len(log) == 2

    def test_replay_chunking_preserves_order(self, log):
        records = [(f"t{i}", f"w{i % 3}", i % 2) for i in range(10)]
        log.append_batch(records, [0] * 10, version=10)
        chunks = list(log.replay(chunk_size=3))
        assert [len(c) for c in chunks] == [3, 3, 3, 1]
        assert [r for c in chunks for r in c] == records

    def test_empty_batch_is_a_no_op(self, log):
        log.append_batch([], [], version=0)
        assert len(log) == 0
        assert log.last_seq == 0

    def test_mismatched_outcomes_rejected(self, log):
        with pytest.raises(StoreError, match="2 records but 1 outcomes"):
            log.append_batch([("t1", "w1", 1), ("t2", "w1", 0)],
                             [0], version=2)

    def test_duplicate_seq_raises_store_error(self, log):
        log.append_batch([("t1", "w1", 1)], [0], version=1)
        with pytest.raises(StoreError, match="failed to commit"):
            log.append_batch([("t1", "w1", 0)], [0], version=1)

    def test_mixed_key_types_round_trip(self, log):
        records = [(1, "w1", 0.5), ("1", 2, True), ("t", "w", None)]
        log.append_batch(records, [0, 0, 0], version=3)
        replayed = [r for chunk in log.replay() for r in chunk]
        assert replayed == records
        assert type(replayed[0][0]) is int
        assert type(replayed[1][0]) is str

    def test_unpicklable_field_rejected_before_commit(self, log):
        with pytest.raises(StoreError, match="cannot log a batch"):
            log.append_batch([("t1", "w1", lambda: None)], [0], version=1)
        assert len(log) == 0

    def test_corrupt_payload_raises_store_error(self, log):
        log.append_batch([("t1", "w1", 1)], [0], version=1)
        log._conn.execute("UPDATE log SET payload = ?", (b"garbage",))
        with pytest.raises(StoreError, match="corrupt log batch"):
            list(log.replay())

    def test_truncated_batch_detected(self, log):
        log.append_batch([("t1", "w1", 1), ("t2", "w1", 0)],
                         [0, 0], version=2)
        log._conn.execute("UPDATE log SET last_seq = 3")
        with pytest.raises(StoreError, match="seq range"):
            list(log.replay())


class TestMeta:
    def test_meta_round_trip(self, log):
        assert log.read_meta() == {}
        log.write_meta({"format": 1, "task_type": "decision_making",
                        "label_order": None})
        assert log.read_meta() == {"format": 1,
                                   "task_type": "decision_making",
                                   "label_order": None}

    def test_meta_upsert_overwrites(self, log):
        log.write_meta({"seed": 0})
        log.write_meta({"seed": 7})
        assert log.read_meta()["seed"] == 7


class TestCommitRetry:
    """Transient ``database is locked`` commits are waited out with
    bounded backoff; everything else keeps the rollback contract."""

    def test_injected_lock_fault_is_retried_through(self, log):
        from repro import faults

        plan = faults.FaultPlan.parse("commit")
        faults.arm(plan)
        try:
            log.append_batch([("t1", "w1", 1)], [0], version=1)
        finally:
            faults.disarm()
        assert plan.fired["commit"] == 1
        assert len(log) == 1
        assert log.last_seq == 1

    def test_fault_outlasting_the_budget_raises_store_error(self, log):
        from repro import faults
        from repro.store.log import COMMIT_RETRIES

        plan = faults.FaultPlan.parse(f"commit:count={COMMIT_RETRIES + 5}")
        faults.arm(plan)
        try:
            with pytest.raises(StoreError, match="failed to commit"):
                log.append_batch([("t1", "w1", 1)], [0], version=1)
        finally:
            faults.disarm()
        # All-or-nothing: the exhausted batch left no partial row.
        assert len(log) == 0
        assert plan.fired["commit"] == COMMIT_RETRIES + 1

    def test_real_write_lock_is_waited_out(self, tmp_path):
        import threading

        path = str(tmp_path / "log.db")
        holder = sqlite3.connect(path, check_same_thread=False)
        log = AnswerLog(sqlite3.connect(path, timeout=0.05))
        holder.execute("BEGIN IMMEDIATE")  # hold the write lock
        release = threading.Timer(0.3, holder.commit)
        release.start()
        try:
            log.append_batch([("t1", "w1", 1)], [0], version=1)
        finally:
            release.cancel()
            holder.close()
        assert len(log) == 1

    def test_non_transient_errors_fail_immediately(self, log):
        log.append_batch([("t1", "w1", 1)], [0], version=1)
        # Same seq range again: a UNIQUE violation, not a lock — no
        # retries, straight to the rollback contract.
        with pytest.raises(StoreError, match="failed to commit"):
            log.append_batch([("t1", "w1", 1)], [0], version=1)
        assert len(log) == 1
