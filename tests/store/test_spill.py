"""ShardSpill: byte-faithful mmap round trips for cold shard arrays."""

import os

import numpy as np
import pytest

from repro.store import ShardSpill


@pytest.fixture
def arrays():
    rng = np.random.default_rng(0)
    return (rng.integers(0, 50, 200), rng.integers(0, 6, 200),
            rng.integers(0, 2, 200))


class TestSpill:
    def test_views_are_byte_faithful_mmaps(self, tmp_path, arrays):
        spill = ShardSpill(str(tmp_path))
        views = spill.spill("s4", 2, arrays)
        assert len(views) == 3
        for view, original in zip(views, arrays):
            assert isinstance(view, np.memmap)
            np.testing.assert_array_equal(view, original)
            assert view.dtype == original.dtype
        assert spill.spills == 1

    def test_files_named_by_tag_and_shard(self, tmp_path, arrays):
        spill = ShardSpill(str(tmp_path))
        spill.spill("s4", 2, arrays)
        names = sorted(os.listdir(tmp_path))
        assert names == ["s4-shard0002-tasks.npy",
                         "s4-shard0002-values.npy",
                         "s4-shard0002-workers.npy"]

    def test_discard_removes_files_and_counts(self, tmp_path, arrays):
        spill = ShardSpill(str(tmp_path))
        spill.spill("s4", 0, arrays)
        spill.discard("s4", 0)
        assert os.listdir(tmp_path) == []
        assert spill.restores == 1
        spill.discard("s4", 0)  # idempotent: missing files are fine
        assert spill.restores == 2

    def test_respill_overwrites(self, tmp_path, arrays):
        spill = ShardSpill(str(tmp_path))
        spill.spill("s4", 0, arrays)
        grown = tuple(np.concatenate([a, a]) for a in arrays)
        views = spill.spill("s4", 0, grown)
        assert views[0].shape[0] == 400
