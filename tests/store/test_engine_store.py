"""InferenceEngine + AnswerStore: write-through, snapshots, recovery."""

import dataclasses
import os

import numpy as np
import pytest

from repro.core.policy import ExecutionPolicy, StorePolicy
from repro.core.tasktypes import TaskType
from repro.engine import InferenceEngine
from repro.exceptions import RecoveryError, StoreError
from repro.store import AnswerStore


def make_batches(n_batches=6, per_batch=40, n_tasks=30, n_workers=8,
                 seed=0):
    rng = np.random.default_rng(seed)
    truth = rng.integers(0, 2, n_tasks)
    batches = []
    for _ in range(n_batches):
        batch = []
        for _ in range(per_batch):
            t = int(rng.integers(0, n_tasks))
            w = int(rng.integers(0, n_workers))
            v = int(truth[t] if rng.random() < 0.8 else 1 - truth[t])
            batch.append((f"t{t}", f"w{w}", v))
        batches.append(batch)
    return batches


def store_policy(tmp_path, **kwargs):
    return StorePolicy(path=str(tmp_path / "store"), **kwargs)


def engine_with_store(tmp_path, *, policy_kwargs=None, **store_kwargs):
    policy = ExecutionPolicy(store=store_policy(tmp_path, **store_kwargs),
                             **(policy_kwargs or {}))
    return InferenceEngine(TaskType.DECISION_MAKING, label_order=[0, 1],
                           seed=0, policy=policy)


class TestWriteThrough:
    def test_every_acknowledged_batch_is_logged(self, tmp_path):
        batches = make_batches()
        with engine_with_store(tmp_path) as engine:
            for batch in batches:
                engine.add_answers(batch)
            assert len(engine.store.log) == engine.stream.version
            assert engine.store.log.last_seq == engine.stream.version

    def test_snapshot_cadence(self, tmp_path):
        batches = make_batches(n_batches=4, per_batch=50)
        with engine_with_store(tmp_path, snapshot_every=100) as engine:
            for batch in batches:
                engine.add_answers(batch)
                engine.infer("D&S", tolerance=1e-7)
            # First fit snapshots (seq 50); then every >=100 answers:
            # seq 150 (and nothing at 100 or 200).
            assert engine.store.snapshots.latest_seq("D&S") == 150

    def test_refuses_writing_through_a_used_store(self, tmp_path):
        with engine_with_store(tmp_path) as engine:
            engine.add_answers(make_batches(1)[0])
        with pytest.raises(StoreError, match="recover"):
            engine_with_store(tmp_path)

    def test_close_detaches_the_log(self, tmp_path):
        engine = engine_with_store(tmp_path)
        engine.add_answers(make_batches(1)[0])
        engine.close()
        assert engine.store is None
        engine.add_answers([("tX", "wX", 1)])  # no write-through crash


class TestRecovery:
    def test_replay_parity_with_uninterrupted_run(self, tmp_path):
        batches = make_batches()
        live = InferenceEngine(TaskType.DECISION_MAKING,
                               label_order=[0, 1], seed=0)
        with engine_with_store(tmp_path) as engine:
            for batch in batches:
                engine.add_answers(batch)
                live.add_answers(batch)
        recovered = InferenceEngine.recover(str(tmp_path / "store"))
        with recovered:
            assert recovered.stream.version == live.stream.version
            assert (recovered.current_truth("D&S")
                    == live.current_truth("D&S"))
            r = recovered.infer("D&S", tolerance=1e-7)
            ref = live.infer("D&S", tolerance=1e-7)
            assert np.abs(r.posterior - ref.posterior).max() == 0.0

    def test_recovered_engine_keeps_writing_through(self, tmp_path):
        with engine_with_store(tmp_path) as engine:
            engine.add_answers(make_batches(1)[0])
        with InferenceEngine.recover(str(tmp_path / "store")) as engine:
            engine.add_answers([("tZ", "wZ", 1)])
            assert len(engine.store.log) == engine.stream.version
        # ...and that resumed history recovers again.
        with InferenceEngine.recover(str(tmp_path / "store")) as engine:
            assert "tZ" in engine.current_truth("MV")

    def test_snapshot_seeds_cache_without_refit(self, tmp_path):
        batches = make_batches()
        with engine_with_store(tmp_path, snapshot_every=1) as engine:
            for batch in batches:
                engine.add_answers(batch)
            live = engine.infer("D&S", tolerance=1e-7)
        with InferenceEngine.recover(str(tmp_path / "store")) as engine:
            # The snapshot is at the stream head: infer() is a pure
            # cache hit, bit-identical to the pre-crash fit.
            result = engine.infer("D&S", tolerance=1e-7)
            assert np.abs(result.posterior - live.posterior).max() == 0.0

    def test_replace_policy_round_trips(self, tmp_path):
        policy = ExecutionPolicy(store=store_policy(tmp_path))
        live = InferenceEngine(TaskType.DECISION_MAKING,
                               label_order=[0, 1], seed=0,
                               on_duplicate="replace")
        with InferenceEngine(TaskType.DECISION_MAKING, label_order=[0, 1],
                             seed=0, on_duplicate="replace",
                             policy=policy) as engine:
            for batch in make_batches(3):
                engine.add_answers(batch)
                live.add_answers(batch)
            assert engine.stream.replacements > 0
            assert (engine.store.log.replace_count
                    == engine.stream.replacements)
        with InferenceEngine.recover(str(tmp_path / "store")) as engine:
            assert engine.stream.on_duplicate == "replace"
            assert engine.stream.replacements == live.stream.replacements
            assert (engine.current_truth("D&S")
                    == live.current_truth("D&S"))

    def test_empty_store_path_raises_recovery_error(self, tmp_path):
        with pytest.raises(RecoveryError, match="no answer store"):
            InferenceEngine.recover(str(tmp_path / "virgin"))

    def test_tampered_log_fails_verification(self, tmp_path):
        with engine_with_store(tmp_path) as engine:
            for batch in make_batches(2):
                engine.add_answers(batch)
        path = str(tmp_path / "store")
        with AnswerStore(path) as store:
            # Inflate one batch's replace tally: the replayed stream's
            # replacement counter can no longer match the log's.
            store.connection.execute(
                "UPDATE log SET n_replaced = n_replaced + 1 "
                "WHERE first_seq = (SELECT MIN(first_seq) FROM log)")
            store.connection.commit()
        with pytest.raises(RecoveryError, match="replacement"):
            InferenceEngine.recover(path)

    def test_mismatched_policy_path_rejected(self, tmp_path):
        policy = ExecutionPolicy(store=StorePolicy(path="/elsewhere"))
        with pytest.raises(ValueError, match="does not match"):
            InferenceEngine.recover(str(tmp_path / "store"),
                                    policy=policy)


class TestWarmRecovery:
    def test_delta_session_adopted_from_snapshot(self, tmp_path):
        """Recovering a sharded delta stream resumes with a true delta
        refit over the snapshot's adopted cuts, not a cold fit."""
        policy_kwargs = dict(n_shards=4, executor="serial",
                             refit="delta")
        batches = make_batches(n_batches=8, per_batch=60, n_tasks=80)
        live = InferenceEngine(
            TaskType.DECISION_MAKING, label_order=[0, 1], seed=0,
            policy=ExecutionPolicy(**policy_kwargs))
        with engine_with_store(tmp_path, policy_kwargs=policy_kwargs,
                               snapshot_every=200) as engine:
            for batch in batches[:6]:
                engine.add_answers(batch)
                engine.infer("D&S", tolerance=1e-7)
                live.add_answers(batch)
                live.infer("D&S", tolerance=1e-7)
            # The log now runs past the newest snapshot: recovery must
            # replay the tail, then delta-refit it.
            assert (engine.store.snapshots.latest_seq("D&S")
                    < engine.stream.version)
        recovered = InferenceEngine.recover(
            str(tmp_path / "store"),
            policy=ExecutionPolicy(**policy_kwargs))
        with recovered:
            session = recovered._sessions.get(4)
            assert session is not None
            assert session.last_placement == "adopt"
            result = recovered.infer("D&S", tolerance=1e-7)
            ref = live.infer("D&S", tolerance=1e-7)
            assert result.fit_stats.mode == "delta"
            assert recovered.last_fit_was_warm("D&S")
            assert np.abs(result.posterior - ref.posterior).max() < 1e-10
            # ...and keeps streaming deltas afterwards.
            recovered.add_answers(batches[6])
            live.add_answers(batches[6])
            r2 = recovered.infer("D&S", tolerance=1e-7)
            ref2 = live.infer("D&S", tolerance=1e-7)
            assert np.abs(r2.posterior - ref2.posterior).max() < 1e-10


class TestSpill:
    def test_spill_idle_and_transparent_reads(self, tmp_path):
        policy_kwargs = dict(n_shards=4, executor="serial",
                             refit="delta")
        batches = make_batches(n_batches=4, per_batch=60, n_tasks=80)
        with engine_with_store(tmp_path, policy_kwargs=policy_kwargs,
                               spill_ttl=0.0) as engine:
            for batch in batches[:3]:
                engine.add_answers(batch)
            before = engine.infer("D&S", tolerance=1e-7)
            # ttl=0: the post-fit sweep spills every shard immediately.
            session = engine._sessions[4]
            assert session.spilled == {0, 1, 2, 3}
            spill_dir = engine.store.spill_dir
            assert len(os.listdir(spill_dir)) == 12  # 4 shards x 3 arrays
            # A forced refit reads the mmapped arrays transparently.
            again = engine.infer("D&S", force_cold=True, tolerance=1e-7)
            assert np.abs(again.posterior - before.posterior).max() == 0.0
            # New answers re-materialise the receiving shards (hot again)
            # and drop their spill files.
            engine.add_answers(batches[3])
            engine.infer("D&S", tolerance=1e-7)
            assert engine._spill.restores > 0

    def test_spill_policy_validation(self):
        with pytest.raises(ValueError, match="spill_ttl"):
            StorePolicy(path="/x", spill_ttl=-1.0)
        with pytest.raises(ValueError, match="snapshot_every"):
            StorePolicy(path="/x", snapshot_every=0)
        with pytest.raises(ValueError, match="sync"):
            StorePolicy(path="/x", sync="turbo")
        with pytest.raises(ValueError, match="StorePolicy"):
            ExecutionPolicy(store="/a/path")


class TestRecoverPolicyRoundTrip:
    def test_policy_store_field_survives_recovery(self, tmp_path):
        store = store_policy(tmp_path, snapshot_every=7)
        with engine_with_store(tmp_path) as engine:
            engine.add_answers(make_batches(1)[0])
        policy = ExecutionPolicy(store=store)
        with InferenceEngine.recover(store.path, policy=policy) as engine:
            assert engine.policy.store == store
            assert engine._store_policy.snapshot_every == 7
