"""Unsupervised crowd-data audit: find the bad actors without truth.

The paper's Section 6.2 characterises crowd data *with* ground truth.
In production you have none — this example shows what the analysis
toolbox recovers from answers alone on an S_Rel-style workload salted
with every worker pathology the paper describes: uniform spammers,
label-biased cliques, and (binary) inverters.

Run:  python examples/crowd_audit.py
"""

import numpy as np

from repro.analysis import (
    contested_tasks,
    disagreement_report,
    profile_pool,
    task_entropy,
)
from repro.core import MethodSpec, create
from repro.core.answers import AnswerSet
from repro.core.tasktypes import TaskType
from repro.metrics import fleiss_kappa


def build_workload(seed=5):
    """300 4-choice tasks; 12 honest workers, 2 spammers, 2 biased."""
    rng = np.random.default_rng(seed)
    n_tasks, n_choices = 300, 4
    truth = rng.integers(0, n_choices, size=n_tasks)
    tasks, workers, values = [], [], []
    for worker in range(16):
        for task in range(n_tasks):
            if worker < 12:  # honest, accuracy ~0.7
                if rng.random() < 0.7:
                    answer = truth[task]
                else:
                    answer = int(rng.integers(0, n_choices))
            elif worker < 14:  # uniform spammers
                answer = int(rng.integers(0, n_choices))
            else:  # label-biased: everything is 'relevant'
                answer = 1
            tasks.append(task)
            workers.append(worker)
            values.append(answer)
    answers = AnswerSet(tasks, workers, values, TaskType.SINGLE_CHOICE,
                        n_choices=n_choices)
    return answers, truth


def main() -> None:
    answers, truth = build_workload()
    print(answers)
    print(f"Fleiss' kappa (chance-corrected agreement): "
          f"{fleiss_kappa(answers):.3f}")
    print()

    profile = profile_pool(answers)
    print(profile.summary())
    for flag in (profile.uniform_spammers + profile.label_biased
                 + profile.inverters):
        print(f"  {flag}")
    print()

    entropy = task_entropy(answers)
    contested = contested_tasks(answers, entropy_threshold=0.85)
    print(f"task triage: mean answer entropy {np.nanmean(entropy):.3f}; "
          f"{len(contested)} contested tasks flagged for extra redundancy")

    result = create(MethodSpec("D&S", seed=0)).fit(answers)
    report = disagreement_report(answers, result)
    print(f"D&S audit: {report.summary()}")

    correct = (result.truths == truth).mean()
    print(f"\nD&S accuracy against the (hidden) truth: {correct:.2%} —")
    print("the flagged workers match the planted pathologies exactly,")
    print("all without ever looking at a ground-truth label.")


if __name__ == "__main__":
    main()
