"""Entity resolution on a D_Product-style workload.

The paper's motivating application (Section 1, Table 1): decide which
product-name pairs refer to the same real-world entity.  The truth is
heavily imbalanced (~12% matches), so the example reports both Accuracy
and F1 and shows why confusion-matrix methods (D&S/LFC/BCC) earn their
keep — the central finding of the paper's Table 6 on D_Product.

Run:  python examples/entity_resolution.py
"""

from repro import MethodSpec, create, load_paper_dataset
from repro.metrics import accuracy, f1_score, precision_recall

METHODS = ("MV", "ZC", "D&S", "LFC", "BCC", "PM", "KOS")


def main() -> None:
    dataset = load_paper_dataset("D_Product", seed=42, scale=0.4)
    print(dataset)
    positive_rate = (dataset.truth == 1).mean()
    print(f"match rate in ground truth: {positive_rate:.1%} "
          "(heavily imbalanced, as in the real D_Product)")
    print()

    header = f"{'method':>6}  {'accuracy':>9}  {'F1':>7}  " \
             f"{'precision':>9}  {'recall':>7}  {'time':>7}"
    print(header)
    print("-" * len(header))
    for name in METHODS:
        result = create(MethodSpec(name, seed=0)).fit(dataset.answers)
        acc = accuracy(dataset.truth, result.truths)
        f1 = f1_score(dataset.truth, result.truths)
        precision, recall = precision_recall(dataset.truth, result.truths)
        print(f"{name:>6}  {acc:>9.2%}  {f1:>7.4f}  {precision:>9.4f}  "
              f"{recall:>7.4f}  {result.elapsed_seconds:>6.2f}s")

    print()
    print("Note how the accuracy column barely separates the methods")
    print("(predicting 'not a match' everywhere is already ~88% accurate)")
    print("while F1 exposes the real quality differences — the paper's")
    print("argument for using F1 on entity-resolution data.")


if __name__ == "__main__":
    main()
