"""Online task assignment: the paper's §7(6) as a runnable experiment.

The paper evaluates *static* truth inference; its conclusion asks how
assignment strategies change inference quality.  This example collects
the same budget of answers under four policies and prints the quality
trajectory: uncertainty-aware assignment concentrates redundancy where
it matters and reaches higher accuracy per answer.

(The policies here are *assignment* policies — which worker answers
which task next — not :class:`repro.ExecutionPolicy`, which configures
how a fit executes; this example needs no execution configuration.)

Run:  python examples/online_assignment.py
"""

import numpy as np

from repro.simulation import reliable_worker, spammer
from repro.tasking import compare_policies, create_policy

POLICIES = ("random", "round-robin", "uncertainty", "expected-accuracy")


def main() -> None:
    rng = np.random.default_rng(11)
    truths = rng.integers(0, 2, size=400)
    workers = []
    for _ in range(20):
        if rng.random() < 0.2:
            workers.append(spammer(2))
        else:
            workers.append(reliable_worker(float(rng.uniform(0.6, 0.95)), 2))

    budget = 2400  # 6 answers per task on average
    traces = compare_policies(
        truths, workers, [create_policy(name) for name in POLICIES],
        n_answers=budget, seed=0, refresh_every=400,
    )

    budgets = [point[0] for point in traces["random"].checkpoints]
    header = "answers  " + "  ".join(f"{name:>17}" for name in POLICIES)
    print(header)
    print("-" * len(header))
    for row_index, answers in enumerate(budgets):
        cells = "  ".join(
            f"{traces[name].checkpoints[row_index][1]:>17.4f}"
            for name in POLICIES
        )
        print(f"{answers:>7}  {cells}")

    print()
    best = max(POLICIES, key=lambda name: traces[name].final_accuracy)
    print(f"best policy at budget {budget}: {best} "
          f"({traces[best].final_accuracy:.2%})")
    print("Quality-aware assignment buys accuracy per answer — the")
    print("online-task-assignment direction of the paper's Section 7.")


if __name__ == "__main__":
    main()
