"""Quickstart: infer truth from the paper's own 6-task example.

Rebuilds Table 2 of the paper (3 workers × 6 entity-resolution tasks),
runs Majority Voting and PM on it, and shows how PM recovers the truth
MV gets wrong — the exact walk-through of the paper's Section 3.

Run:  python examples/quickstart.py
"""

from repro import AnswerSet, MethodSpec, TaskType, create

# Table 2 of the paper.  Label encoding: F -> 0, T -> 1.
T, F = 1, 0
RECORDS = [
    # worker w1
    ("t1", "w1", F), ("t2", "w1", T), ("t3", "w1", T),
    ("t4", "w1", F), ("t5", "w1", F), ("t6", "w1", F),
    # worker w2 (did not answer t1)
    ("t2", "w2", F), ("t3", "w2", F), ("t4", "w2", T),
    ("t5", "w2", T), ("t6", "w2", F),
    # worker w3
    ("t1", "w3", T), ("t2", "w3", F), ("t3", "w3", F),
    ("t4", "w3", F), ("t5", "w3", F), ("t6", "w3", T),
]

#: Ground truth: only (r1 = r2) and (r3 = r4) are real matches.
GROUND_TRUTH = [T, F, F, F, F, T]


def main() -> None:
    answers = AnswerSet.from_records(RECORDS, TaskType.DECISION_MAKING,
                                     label_order=[F, T])
    print(answers)
    print()

    label = {0: "F", 1: "T"}
    # What to run is a MethodSpec: the paper name plus construction
    # kwargs, one comparable object instead of a string + dict pair.
    for spec in (MethodSpec("MV", seed=7), MethodSpec("PM", seed=7),
                 MethodSpec("D&S", seed=7)):
        name = spec.name
        result = create(spec).fit(answers)
        decoded = [label[int(v)] for v in result.truths]
        n_correct = sum(int(v) == t
                        for v, t in zip(result.truths, GROUND_TRUTH))
        print(f"{name:>4}: truths = {decoded}   "
              f"({n_correct}/6 correct, {result.n_iterations} iterations)")
        qualities = ", ".join(
            f"w{w + 1}={q:.2f}" for w, q in enumerate(result.worker_quality)
        )
        print(f"      worker qualities: {qualities}")
    print()
    print("The paper's Section 3 observation: w3 is the best worker, and")
    print("PM recovers v*_1 = v*_6 = T, which plain majority voting")
    print("cannot (t1 is a tie and t6 is outvoted).  D&S illustrates the")
    print("other side: a confusion matrix has 4 free parameters per")
    print("worker, far too many to fit from 6 tasks — richer models need")
    print("more data, a recurring theme of the paper's evaluation.")


if __name__ == "__main__":
    main()
