"""Method-selection tour across all five paper datasets.

Implements the paper's Section 7 advice as executable code: runs every
applicable method on (scaled) replicas of the five datasets, prints the
per-dataset leaderboard, and re-derives the recommendations ("use D&S
or LFC for labels, Mean for numbers, MV when redundancy is high").

Run:  python examples/method_selection.py [scale]
"""

import sys

from repro import MethodSpec, all_paper_datasets, create, methods_for_task_type
from repro.experiments.reporting import format_table

PRIMARY_METRIC = {
    "D_Product": "f1",
    "D_PosSent": "accuracy",
    "S_Rel": "accuracy",
    "S_Adult": "accuracy",
    "N_Emotion": "mae",
}


def leaderboard(dataset, metric):
    rows = []
    for name in methods_for_task_type(dataset.task_type):
        spec = (MethodSpec(name, seed=0, max_iter=8)
                if name == "Minimax" else MethodSpec(name, seed=0))
        result = create(spec).fit(dataset.answers)
        scores = dataset.score(result)
        rows.append((name, scores[metric], result.elapsed_seconds))
    reverse = metric != "mae"  # errors sort ascending
    rows.sort(key=lambda row: row[1], reverse=reverse)
    return rows


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.15
    datasets = all_paper_datasets(seed=0, scale=scale)

    recommendations = []
    for name, dataset in datasets.items():
        metric = PRIMARY_METRIC[name]
        rows = leaderboard(dataset, metric)
        print(format_table(
            ["method", metric, "seconds"],
            [[m, round(v, 4), round(t, 2)] for m, v, t in rows],
            title=f"{name} ({dataset.task_type.value}, "
                  f"{dataset.answers.n_answers} answers)",
        ))
        print()
        recommendations.append((name, rows[0][0]))

    print("winners per dataset:")
    for dataset_name, method in recommendations:
        print(f"  {dataset_name:>10}: {method}")
    print()
    print("No single method wins everywhere — the paper's core claim")
    print("('truth inference is not fully solved').")


if __name__ == "__main__":
    main()
