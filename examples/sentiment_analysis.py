"""Tweet sentiment with a qualification test (D_PosSent-style workload).

Demonstrates the Section 6.3.2 protocol end to end on the platform
simulator: workers first answer 20 golden tasks; their score initialises
each method's worker-quality estimate; we then compare inference with
and without the qualification test at low redundancy (where the paper
finds it helps most).

Run:  python examples/sentiment_analysis.py
"""

import numpy as np

from repro import MethodSpec, TaskType, create
from repro.datasets.schema import Dataset
from repro.metrics import accuracy
from repro.simulation import CrowdPlatform, reliable_worker, spammer

METHODS = ("ZC", "D&S", "LFC", "PM")


def build_platform(seed: int = 3):
    """600 tweets, 30 workers of mixed quality, a few spammers."""
    rng = np.random.default_rng(seed)
    truths = (rng.random(600) < 0.53).astype(np.int64)  # slight T skew
    workers = []
    for _ in range(30):
        if rng.random() < 0.15:
            workers.append(spammer(2))
        else:
            workers.append(reliable_worker(float(rng.uniform(0.6, 0.95)), 2))
    platform = CrowdPlatform(truths, workers, TaskType.DECISION_MAKING,
                             seed=seed)
    return platform, truths


def main() -> None:
    platform, truths = build_platform()

    # Collect only 2 answers per tweet — the regime where a good
    # initialisation actually matters.
    answers = platform.collect(redundancy=2)
    dataset = Dataset(name="sentiment", answers=answers, truth=truths)
    print(dataset)

    # Qualification test: 20 golden tweets per worker.
    records = platform.qualification_test(n_golden=20)
    initial_quality = np.array([r.accuracy for r in records])
    print(f"qualification-test scores: min={initial_quality.min():.2f} "
          f"mean={initial_quality.mean():.2f} "
          f"max={initial_quality.max():.2f}")
    print()

    print(f"{'method':>6}  {'no test':>8}  {'with test':>9}  {'delta':>7}")
    print("-" * 36)
    for name in METHODS:
        spec = MethodSpec(name, seed=0)
        plain = create(spec).fit(answers)
        boosted = create(spec).fit(answers,
                                   initial_quality=initial_quality)
        acc_plain = accuracy(truths, plain.truths)
        acc_boosted = accuracy(truths, boosted.truths)
        delta = acc_boosted - acc_plain
        print(f"{name:>6}  {acc_plain:>8.2%}  {acc_boosted:>9.2%}  "
              f"{delta:>+7.2%}")

    print()
    print("As in the paper's Table 7, the benefit is real but modest —")
    print("and shrinks to nothing once redundancy is high enough for the")
    print("methods to estimate worker quality unsupervised.")


if __name__ == "__main__":
    main()
