"""Image tagging: multiple-choice tasks via the paper's §2 transformation.

"For an image tagging task (multiple-choice), each transformed
decision-making task asks whether or not a tag is contained in an
image."  This example runs that pipeline end to end: ground-truth tag
sets → one decision task per (image, tag) → truth inference → recovered
tag sets, scored with multi-label Jaccard/F1.

Run:  python examples/image_tagging.py
"""

import numpy as np

from repro import ExecutionPolicy, MethodSpec, create
from repro.datasets import (
    build_multichoice_dataset,
    decisions_to_tag_sets,
    tag_set_f1,
    tag_set_jaccard,
)
from repro.simulation import reliable_worker, spammer

TAG_NAMES = ("cat", "dog", "person", "car", "tree")


def main() -> None:
    rng = np.random.default_rng(4)
    n_images, n_tags = 80, len(TAG_NAMES)

    # Ground truth: each image carries 0-3 of the 5 tags.
    tag_sets = [
        sorted(rng.choice(n_tags, size=rng.integers(0, 4),
                          replace=False).tolist())
        for _ in range(n_images)
    ]

    workers = [reliable_worker(float(rng.uniform(0.75, 0.95)), 2)
               for _ in range(10)] + [spammer(2)] * 2
    dataset = build_multichoice_dataset(tag_sets, n_tags, workers,
                                        redundancy=5, seed=0,
                                        name="image_tags")
    print(f"{n_images} images × {n_tags} tags "
          f"-> {dataset.n_tasks} decision tasks, "
          f"{dataset.answers.n_answers} answers")
    print()

    print(f"{'method':>6}  {'tag-set Jaccard':>15}  {'micro-F1':>9}")
    print("-" * 36)
    for name in ("MV", "ZC", "D&S"):
        result = create(MethodSpec(name, seed=0)).fit(dataset.answers)
        recovered = decisions_to_tag_sets(result, n_images, n_tags)
        print(f"{name:>6}  {tag_set_jaccard(tag_sets, recovered):>15.4f}"
              f"  {tag_set_f1(tag_sets, recovered):>9.4f}")

    # The same fit under an ExecutionPolicy: sharded map-reduce EM,
    # identical numbers (the tag grid is one flat decision task space,
    # so it shards like any large workload would).
    policy = ExecutionPolicy(n_shards=4, executor="serial")
    result = create(MethodSpec("D&S", seed=0), policy=policy).fit(
        dataset.answers)
    recovered = decisions_to_tag_sets(result, n_images, n_tags)
    print()
    print("sample recoveries (D&S):")
    for image in range(5):
        want = ", ".join(TAG_NAMES[t] for t in tag_sets[image]) or "(none)"
        got = ", ".join(TAG_NAMES[t] for t in sorted(recovered[image])) \
            or "(none)"
        marker = "ok " if set(tag_sets[image]) == recovered[image] else "DIFF"
        print(f"  image {image}: truth=[{want}]  inferred=[{got}]  {marker}")


if __name__ == "__main__":
    main()
