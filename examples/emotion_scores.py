"""Numeric truth inference on an N_Emotion-style workload.

Reproduces the paper's most counter-intuitive numeric finding: the
plain Mean is essentially unbeatable when worker noise is homogeneous,
while the same sophisticated methods win easily once workers genuinely
differ in precision.  Both regimes are generated side by side.

Run:  python examples/emotion_scores.py
"""

import numpy as np

from repro import MethodSpec, TaskType, create
from repro.datasets.schema import Dataset
from repro.metrics import mae, rmse
from repro.simulation import CrowdPlatform, NumericWorker

METHODS = ("Mean", "Median", "LFC_N", "PM", "CATD")


def build(sigmas, seed=0):
    rng = np.random.default_rng(seed)
    truths = rng.uniform(-100, 100, size=500)
    workers = [NumericWorker(bias=0.0, sigma=float(s)) for s in sigmas]
    platform = CrowdPlatform(truths, workers, TaskType.NUMERIC, seed=seed)
    answers = platform.collect(redundancy=8)
    return Dataset(name="emotion", answers=answers, truth=truths)


def report(title, dataset):
    print(title)
    print(f"{'method':>7}  {'MAE':>7}  {'RMSE':>7}")
    print("-" * 26)
    best = None
    for name in METHODS:
        result = create(MethodSpec(name, seed=0)).fit(dataset.answers)
        err_mae = mae(dataset.truth, result.truths)
        err_rmse = rmse(dataset.truth, result.truths)
        if best is None or err_mae < best[1]:
            best = (name, err_mae)
        print(f"{name:>7}  {err_mae:>7.3f}  {err_rmse:>7.3f}")
    print(f"best: {best[0]}")
    print()


def main() -> None:
    # Regime 1 — homogeneous noise (the N_Emotion situation): every
    # worker has sigma ~ 25, so precision weights are pure noise.
    homogeneous = build(np.full(20, 25.0), seed=1)
    report("homogeneous workers (sigma = 25 for everyone)", homogeneous)

    # Regime 2 — heterogeneous noise: a few precise workers among
    # noisy ones.  Now variance estimation pays off.
    sigmas = np.concatenate([np.full(4, 5.0), np.full(16, 40.0)])
    heterogeneous = build(sigmas, seed=2)
    report("heterogeneous workers (4 precise, 16 noisy)", heterogeneous)

    print("Paper Section 6.3.1 on N_Emotion: 'the baseline method Mean")
    print("performs best ... workers' qualities may not be accurately")
    print("inferred' — which regime you are in decides everything.")


if __name__ == "__main__":
    main()
